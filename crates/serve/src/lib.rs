//! Refinement-as-a-service: a crash-safe multi-tenant job server over
//! the fixref refinement flow.
//!
//! The paper's methodology turns floating-point DSP designs into
//! fixed-point ones through a long, simulation-heavy refinement flow —
//! exactly the kind of work a design team queues, shares and expects
//! to survive a machine reboot. This crate wraps the flow in a small
//! server:
//!
//! - **Jobs are data.** A [`fixref_core::JobSpec`] names a registered
//!   design kind ([`DesignRegistry`]), a scenario set and a flow
//!   configuration; the server reconstructs the design
//!   deterministically, so a served job is bit-comparable to a direct
//!   run of the same spec.
//! - **Admission control, not buffering.** The queue is bounded
//!   globally and per tenant; a submission past either limit is
//!   rejected with a reason ([`Rejection`]) — the server never grows
//!   without bound.
//! - **Crash safety by write-ahead logging.** Every accepted job is
//!   fsynced to the jobs log ([`JobLog`]) before it becomes visible,
//!   progress is checkpointed atomically per job, and terminal records
//!   commit only after the result file is on disk. `kill -9` at any
//!   instant loses no accepted job and duplicates none; a restarted
//!   server resumes in-flight jobs from their checkpoints
//!   bit-identically.
//! - **Isolation and retry.** Worker panics are caught at the job
//!   boundary and retried with deterministic jittered backoff
//!   ([`fixref_sim::RetryPolicy`]); a cancelled running job finishes
//!   as a best-so-far partial result through the same path as budget
//!   exhaustion.
//! - **A line protocol, not a framework.** `submit` / `status` /
//!   `result` / `journal` / `cancel` / `metrics` / `shutdown` as
//!   newline-delimited JSON over `std::net::TcpListener`
//!   ([`protocol`]), with a transport-free dispatcher for tests.
//!
//! Graceful shutdown is the protocol's `shutdown` command followed by
//! [`Server::drain`]; there is no signal handler (std-only, no unsafe),
//! and none is needed — abrupt death is the recovery path's job, and
//! it is exercised, not just designed for.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod job;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod wal;

pub use job::{JobResult, JobState, JobStatus};
pub use registry::DesignRegistry;
pub use server::{Rejection, ServeError, Server, ServerConfig};
pub use wal::{JobLog, WalRecord};
