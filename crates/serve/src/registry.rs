//! The server's design registry: `DesignSpec.kind` → shard builder.
//!
//! Designs are Rust closures and cannot travel over a socket, so a
//! submitted job names a *registered* builder kind and the registry
//! reconstructs the design deterministically from the spec's numeric
//! parameters. The built-in kinds are the paper's two reference
//! designs — the Fig. 1 LMS equalizer (`"lms"`) and the §6.1
//! timing-recovery loop (`"timing"`) — built with the same seeds and
//! stimulus recipes as the benchmark harness, so a served job is
//! bit-comparable to a direct run of the same spec.

use fixref_core::{ShardBuilder, ShardSim};
use fixref_dsp::{
    Awgn, FirChannel, LmsConfig, LmsEqualizer, PamSource, ShapedPamSource, TimingConfig,
    TimingRecovery,
};
use fixref_fixed::DType;
use fixref_sim::{Design, DesignSpec, Scenario, SpecError};

/// Design seed of the LMS equalizer (matches the benchmark harness).
const LMS_DESIGN_SEED: u64 = 0xDA7E_1999;
/// Design seed of the timing-recovery loop (matches the harness).
const TIMING_DESIGN_SEED: u64 = 0x0DEC_7BA5;

/// A factory turning a validated [`DesignSpec`] into a shard builder.
pub type BuilderFactory = dyn Fn(&DesignSpec) -> Result<Box<ShardBuilder>, SpecError> + Send + Sync;

/// Registry of design kinds the server can reconstruct.
pub struct DesignRegistry {
    kinds: Vec<(String, Box<BuilderFactory>)>,
}

impl DesignRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        DesignRegistry { kinds: Vec::new() }
    }

    /// The built-in registry: `"lms"` and `"timing"`.
    pub fn builtin() -> Self {
        let mut reg = Self::empty();
        reg.register("lms", |spec| {
            let config = lms_config_from(spec)?;
            Ok(lms_builder(config))
        });
        reg.register("timing", |spec| {
            let config = timing_config_from(spec)?;
            Ok(timing_builder(config))
        });
        reg
    }

    /// Registers (or replaces) a design kind.
    pub fn register(
        &mut self,
        kind: impl Into<String>,
        factory: impl Fn(&DesignSpec) -> Result<Box<ShardBuilder>, SpecError> + Send + Sync + 'static,
    ) {
        let kind = kind.into();
        self.kinds.retain(|(k, _)| *k != kind);
        self.kinds.push((kind, Box::new(factory)));
    }

    /// The registered kind names, in registration order.
    pub fn kinds(&self) -> Vec<&str> {
        self.kinds.iter().map(|(k, _)| k.as_str()).collect()
    }

    /// Builds the shard builder for `spec`.
    ///
    /// # Errors
    ///
    /// [`SpecError`] for an unregistered kind or invalid parameters.
    pub fn build(&self, spec: &DesignSpec) -> Result<Box<ShardBuilder>, SpecError> {
        let factory = self
            .kinds
            .iter()
            .find(|(k, _)| *k == spec.kind)
            .map(|(_, f)| f)
            .ok_or_else(|| {
                SpecError::new(format!(
                    "unknown design kind {:?} (registered: {})",
                    spec.kind,
                    self.kinds().join(", ")
                ))
            })?;
        factory(spec)
    }
}

impl std::fmt::Debug for DesignRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DesignRegistry")
            .field("kinds", &self.kinds())
            .finish()
    }
}

fn parse_dtype(spec: &DesignSpec) -> Result<Option<DType>, SpecError> {
    match &spec.input_dtype {
        None => Ok(None),
        Some(text) => text
            .parse::<DType>()
            .map(Some)
            .map_err(|e| SpecError::new(format!("input_dtype {text:?}: {e}"))),
    }
}

fn lms_config_from(spec: &DesignSpec) -> Result<LmsConfig, SpecError> {
    let mut config = LmsConfig {
        input_dtype: parse_dtype(spec)?,
        ..LmsConfig::default()
    };
    if let Some(mu) = spec.param("mu") {
        if !(mu.is_finite() && mu > 0.0) {
            return Err(SpecError::new(format!(
                "lms: mu must be positive, got {mu}"
            )));
        }
        config.mu = mu;
    }
    Ok(config)
}

fn timing_config_from(spec: &DesignSpec) -> Result<TimingConfig, SpecError> {
    let mut config = TimingConfig {
        input_dtype: parse_dtype(spec)?,
        ..TimingConfig::default()
    };
    if config.input_dtype.is_some() {
        config.input_range = None;
    }
    if let Some(kp) = spec.param("kp") {
        config.kp = kp;
    }
    if let Some(ki) = spec.param("ki") {
        config.ki = ki;
    }
    if let Some(taps) = spec.param("rx_taps") {
        if taps < 1.0 || taps.fract() != 0.0 {
            return Err(SpecError::new(format!(
                "timing: rx_taps must be a positive integer, got {taps}"
            )));
        }
        config.rx_taps = taps as usize;
    }
    Ok(config)
}

/// BPSK symbols through the scenario's channel (the paper's mild-ISI
/// channel when no taps are given) plus AWGN at the scenario's SNR —
/// the same recipe as the benchmark harness, sample for sample.
fn lms_stimulus(scenario: &Scenario) -> Vec<f64> {
    let mut pam = PamSource::bpsk(scenario.seed as u32 | 1);
    let mut channel = if scenario.channel_taps.is_empty() {
        FirChannel::mild_isi()
    } else {
        FirChannel::new(&scenario.channel_taps)
    };
    let mut noise = Awgn::from_snr_db(scenario.seed, scenario.snr_db, 1.0);
    (0..scenario.samples)
        .map(|_| {
            let s = pam.next_symbol();
            noise.add(channel.push(s)).clamp(-1.5, 1.5)
        })
        .collect()
}

fn lms_builder(config: LmsConfig) -> Box<ShardBuilder> {
    Box::new(move |scenario: &Scenario| {
        let design = Design::with_seed(LMS_DESIGN_SEED);
        let eq = LmsEqualizer::new(&design, &config);
        let stimulus = lms_stimulus(scenario);
        ShardSim {
            design,
            stimulus: Box::new(move |_d: &Design, _iter: usize| {
                eq.init();
                for &x in &stimulus {
                    eq.step(x);
                }
            }),
        }
    })
}

fn timing_builder(config: TimingConfig) -> Box<ShardBuilder> {
    Box::new(move |scenario: &Scenario| {
        let design = Design::with_seed(TIMING_DESIGN_SEED);
        let loopm = TimingRecovery::new(&design, &config);
        let (seed, snr_db, samples) = (scenario.seed, scenario.snr_db, scenario.samples);
        ShardSim {
            design,
            stimulus: Box::new(move |_d: &Design, _iter: usize| {
                loopm.init();
                let mut src = ShapedPamSource::new(seed as u32 | 1, 0.35, 2, 0.3, 100.0);
                let mut noise = Awgn::from_snr_db(seed.wrapping_add(2), snr_db, 1.0);
                for _ in 0..samples {
                    loopm.step(noise.add(src.next_sample()).clamp(-1.9, 1.9));
                }
            }),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixref_sim::ScenarioSet;

    #[test]
    fn builtin_registry_knows_both_reference_designs() {
        let reg = DesignRegistry::builtin();
        assert_eq!(reg.kinds(), ["lms", "timing"]);
        assert!(reg.build(&DesignSpec::new("lms")).is_ok());
        assert!(reg.build(&DesignSpec::new("timing")).is_ok());
        let err = match reg.build(&DesignSpec::new("fft")) {
            Err(e) => e,
            Ok(_) => panic!("unknown kind must be rejected"),
        };
        assert!(err.to_string().contains("fft"), "{err}");
    }

    #[test]
    fn invalid_parameters_are_rejected_structurally() {
        let reg = DesignRegistry::builtin();
        assert!(reg
            .build(&DesignSpec::new("lms").with_param("mu", -1.0))
            .is_err());
        assert!(reg
            .build(&DesignSpec::new("timing").with_param("rx_taps", 2.5))
            .is_err());
        assert!(reg
            .build(&DesignSpec::new("lms").with_input_dtype("<bogus>"))
            .is_err());
    }

    #[test]
    fn same_spec_builds_bit_identical_shards() {
        let reg = DesignRegistry::builtin();
        let spec = DesignSpec::new("lms").with_input_dtype("<7,5,tc,st,rd>");
        let set = ScenarioSet::single(7, 28.0, 200);
        let scenario = &set.as_slice()[0];
        let mut a = reg.build(&spec).expect("builds")(scenario);
        let mut b = reg.build(&spec).expect("builds")(scenario);
        (a.stimulus)(&a.design, 0);
        (b.stimulus)(&b.design, 0);
        assert_eq!(a.design.export_stats(), b.design.export_stats());
    }
}
