//! The `fixref-serve` binary: a refinement job server on a TCP port.
//!
//! ```text
//! fixref-serve --data-dir DIR [--addr HOST:PORT] [--workers N]
//!              [--queue N] [--tenant-queue N] [--retries N]
//! ```
//!
//! On startup the server replays the jobs log in `DIR` and re-queues
//! every job that never reached a terminal record, so restarting after
//! a crash resumes exactly where the log left off. The process exits
//! cleanly when a client sends `{"cmd":"shutdown"}`: admission stops,
//! the queue drains, then the listener closes.

#![forbid(unsafe_code)]

use std::net::TcpListener;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use fixref_serve::protocol::serve_listener;
use fixref_serve::{Server, ServerConfig};
use fixref_sim::RetryPolicy;

struct Args {
    data_dir: String,
    addr: String,
    workers: usize,
    queue: usize,
    tenant_queue: usize,
    retries: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: fixref-serve --data-dir DIR [--addr HOST:PORT] [--workers N] \
         [--queue N] [--tenant-queue N] [--retries N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        data_dir: String::new(),
        addr: "127.0.0.1:7878".into(),
        workers: 2,
        queue: 64,
        tenant_queue: 64,
        retries: 2,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--data-dir" => args.data_dir = value("--data-dir"),
            "--addr" => args.addr = value("--addr"),
            "--workers" => args.workers = parse_num(&value("--workers"), "--workers"),
            "--queue" => args.queue = parse_num(&value("--queue"), "--queue"),
            "--tenant-queue" => {
                args.tenant_queue = parse_num(&value("--tenant-queue"), "--tenant-queue")
            }
            "--retries" => args.retries = parse_num(&value("--retries"), "--retries"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    if args.data_dir.is_empty() {
        eprintln!("--data-dir is required");
        usage();
    }
    args
}

fn parse_num(text: &str, flag: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("bad value {text:?} for {flag}");
        usage()
    })
}

fn main() {
    let args = parse_args();
    let mut config = ServerConfig::new(&args.data_dir);
    config.queue_capacity = args.queue;
    config.tenant_queue_capacity = args.tenant_queue;
    config.retry = RetryPolicy {
        max_attempts: args.retries.max(1),
        ..RetryPolicy::default()
    }
    .with_backoff(25, 400, 0x5EED);
    let server = match Server::open(config) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("fixref-serve: {e}");
            std::process::exit(1);
        }
    };
    let recovered = server.queue_depth();
    if recovered > 0 {
        eprintln!("fixref-serve: recovered {recovered} in-flight job(s) from the jobs log");
    }

    let listener = match TcpListener::bind(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("fixref-serve: bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    let addr = listener
        .local_addr()
        .map_or_else(|_| args.addr.clone(), |a| a.to_string());
    eprintln!(
        "fixref-serve: listening on {addr}, data dir {}",
        args.data_dir
    );

    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..args.workers.max(1))
        .map(|_| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.worker_loop())
        })
        .collect();

    if let Err(e) = serve_listener(&server, &listener, &stop) {
        eprintln!("fixref-serve: listener: {e}");
    }
    eprintln!("fixref-serve: draining...");
    server.drain();
    for w in workers {
        let _ = w.join();
    }
    eprintln!("fixref-serve: done");
}
