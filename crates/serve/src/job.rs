//! Job lifecycle types: states, status snapshots and persisted results.

use fixref_obs::json::{escape, fmt_f64};
use fixref_obs::{Event, Json};
use fixref_sim::{SignalAnnotation, SpecError};

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting for a worker.
    Queued,
    /// A worker is running it.
    Running,
    /// Terminal: the flow finished (see the result's `status` for
    /// complete vs. partial vs. failed).
    Finished,
    /// Terminal: cancelled before a worker picked it up.
    Cancelled,
}

impl JobState {
    /// Lower-case wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Finished => "finished",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job can never run again.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Finished | JobState::Cancelled)
    }
}

/// A point-in-time status snapshot for the status API.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Job id.
    pub job: String,
    /// Owning tenant.
    pub tenant: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Attempts started so far (0 while queued).
    pub attempts: usize,
    /// Terminal flow status (`"complete"` / `"partial"` / `"failed"`),
    /// once finished.
    pub status: Option<String>,
    /// Partial/failure reason, if any.
    pub reason: Option<String>,
}

impl JobStatus {
    /// Renders the snapshot as one JSON object.
    pub fn to_json(&self) -> String {
        let opt = |v: &Option<String>| match v {
            Some(s) => format!(r#""{}""#, escape(s)),
            None => "null".into(),
        };
        format!(
            r#"{{"job":"{}","tenant":"{}","state":"{}","attempts":{},"status":{},"reason":{}}}"#,
            escape(&self.job),
            escape(&self.tenant),
            self.state.name(),
            self.attempts,
            opt(&self.status),
            opt(&self.reason)
        )
    }
}

/// Deterministic one-line rendering of a final signal annotation, used
/// for bit-identity comparison of served vs. direct runs.
pub fn render_annotation(a: &SignalAnnotation) -> String {
    let dtype = a
        .dtype
        .as_ref()
        .map_or("-".to_string(), std::string::ToString::to_string);
    let range = a.range.map_or("-".to_string(), |r| {
        format!("[{},{}]", fmt_f64(r.lo), fmt_f64(r.hi))
    });
    let sigma = a.error_sigma.map_or("-".to_string(), fmt_f64);
    format!("{} dtype={dtype} range={range} sigma={sigma}", a.name)
}

/// The persisted outcome of one finished job (`results/<job>.json`).
///
/// Carries everything the bit-identity contract is judged by: the
/// decided types, the design's final annotations and the flow's full
/// event journal — so a job finished before a crash is comparable
/// after restart without re-running.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Job id.
    pub job: String,
    /// Owning tenant.
    pub tenant: String,
    /// `"complete"`, `"partial"` or `"failed"`.
    pub status: String,
    /// Partial/failure reason, if any.
    pub reason: Option<String>,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: usize,
    /// MSB iterations of the final (successful) attempt.
    pub msb_iterations: usize,
    /// LSB iterations of the final attempt.
    pub lsb_iterations: usize,
    /// Sweep coverage summary, for swept jobs.
    pub coverage: Option<String>,
    /// Decided types by signal name, sorted by name.
    pub types: Vec<(String, String)>,
    /// Final design annotations, rendered via [`render_annotation`].
    pub annotations: Vec<String>,
    /// The flow's event journal.
    pub journal: Vec<Event>,
}

impl JobResult {
    /// Serializes the result as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            r#"{{"job":"{}","tenant":"{}","status":"{}""#,
            escape(&self.job),
            escape(&self.tenant),
            escape(&self.status)
        ));
        match &self.reason {
            Some(r) => out.push_str(&format!(r#","reason":"{}""#, escape(r))),
            None => out.push_str(r#","reason":null"#),
        }
        out.push_str(&format!(
            r#","attempts":{},"msb_iterations":{},"lsb_iterations":{}"#,
            self.attempts, self.msb_iterations, self.lsb_iterations
        ));
        match &self.coverage {
            Some(c) => out.push_str(&format!(r#","coverage":"{}""#, escape(c))),
            None => out.push_str(r#","coverage":null"#),
        }
        let types: Vec<String> = self
            .types
            .iter()
            .map(|(n, t)| format!(r#"["{}","{}"]"#, escape(n), escape(t)))
            .collect();
        out.push_str(&format!(r#","types":[{}]"#, types.join(",")));
        let annotations: Vec<String> = self
            .annotations
            .iter()
            .map(|a| format!(r#""{}""#, escape(a)))
            .collect();
        out.push_str(&format!(r#","annotations":[{}]"#, annotations.join(",")));
        let journal: Vec<String> = self.journal.iter().map(Event::to_json).collect();
        out.push_str(&format!(r#","journal":[{}]}}"#, journal.join(",")));
        out
    }

    /// Decodes a result from its JSON text form.
    ///
    /// # Errors
    ///
    /// [`SpecError`] on malformed JSON or a malformed member.
    pub fn from_json(text: &str) -> Result<JobResult, SpecError> {
        let v = Json::parse(text).map_err(|e| SpecError::new(format!("job result: {e}")))?;
        let field = |name: &str| -> Result<String, SpecError> {
            v.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| SpecError::new(format!("job result: missing {name:?}")))
        };
        let opt = |name: &str| -> Result<Option<String>, SpecError> {
            match v.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(j) => j
                    .as_str()
                    .map(|s| Some(s.to_string()))
                    .ok_or_else(|| SpecError::new(format!("job result: mistyped {name:?}"))),
            }
        };
        let uint = |name: &str| -> Result<usize, SpecError> {
            v.get(name)
                .and_then(Json::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| SpecError::new(format!("job result: missing {name:?}")))
        };
        let arr = |name: &str| -> Result<&[Json], SpecError> {
            v.get(name)
                .and_then(Json::as_arr)
                .ok_or_else(|| SpecError::new(format!("job result: missing {name:?}")))
        };
        let types = arr("types")?
            .iter()
            .map(|pair| {
                let items = pair
                    .as_arr()
                    .filter(|a| a.len() == 2)
                    .ok_or_else(|| SpecError::new("job result: malformed type pair"))?;
                match (items[0].as_str(), items[1].as_str()) {
                    (Some(n), Some(t)) => Ok((n.to_string(), t.to_string())),
                    _ => Err(SpecError::new("job result: malformed type pair")),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        let annotations = arr("annotations")?
            .iter()
            .map(|a| {
                a.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| SpecError::new("job result: malformed annotation"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let journal = arr("journal")?
            .iter()
            .map(|e| {
                Event::from_value(e)
                    .map_err(|err| SpecError::new(format!("job result: journal event: {err}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(JobResult {
            job: field("job")?,
            tenant: field("tenant")?,
            status: field("status")?,
            reason: opt("reason")?,
            attempts: uint("attempts")?,
            msb_iterations: uint("msb_iterations")?,
            lsb_iterations: uint("lsb_iterations")?,
            coverage: opt("coverage")?,
            types,
            annotations,
            journal,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixref_obs::Phase;

    #[test]
    fn job_results_round_trip() {
        let result = JobResult {
            job: "j-3".into(),
            tenant: "acme".into(),
            status: "partial".into(),
            reason: Some("cancelled after 1 simulation(s)".into()),
            attempts: 2,
            msb_iterations: 1,
            lsb_iterations: 0,
            coverage: Some("7 of 8 scenarios".into()),
            types: vec![("x".into(), "<7,5,tc,st,rd>".into())],
            annotations: vec!["x dtype=<7,5,tc,st,rd> range=[-1.5,1.5] sigma=-".into()],
            journal: vec![
                Event::IterationStarted {
                    phase: Phase::Msb,
                    iteration: 1,
                },
                Event::BudgetExhausted {
                    phase: Phase::Msb,
                    simulations: 1,
                    reason: "cancelled after 1 simulation(s)".into(),
                },
            ],
        };
        let back = JobResult::from_json(&result.to_json()).expect("parses");
        assert_eq!(back, result);
    }

    #[test]
    fn state_names_and_terminality() {
        assert_eq!(JobState::Queued.name(), "queued");
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Finished.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
    }
}
