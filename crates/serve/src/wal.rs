//! The write-ahead jobs log.
//!
//! Every job transition the server must survive a crash through is
//! appended here — one JSON object per line, fsynced before the
//! transition takes effect — so a `kill -9` at any instant loses
//! nothing: on restart the log replays into the exact set of accepted,
//! in-flight and finished jobs. A torn final line (the artifact of a
//! crash mid-append) is dropped silently, because the transition it
//! described never committed; a torn line *before* the end is
//! corruption and surfaces as a structured error.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use fixref_core::JobSpec;
use fixref_obs::json::escape;
use fixref_obs::Json;
use fixref_sim::SpecError;

/// One committed job transition.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// The job passed admission and owns queue space from here on.
    Accepted {
        /// Monotonic acceptance sequence (job ids are minted from it).
        seq: u64,
        /// Job id (`"j-<seq>"`).
        job: String,
        /// The full submitted spec — recovery re-runs from this, never
        /// from in-memory state. Boxed: acceptance records dwarf the
        /// other transitions.
        spec: Box<JobSpec>,
    },
    /// A worker picked the job up (attempt is 0-based).
    Started {
        /// Job id.
        job: String,
        /// 0-based attempt number.
        attempt: usize,
    },
    /// The job reached a terminal state and its result is on disk.
    Completed {
        /// Job id.
        job: String,
        /// `"complete"`, `"partial"` or `"failed"`.
        status: String,
    },
    /// The job was cancelled before a worker picked it up.
    Cancelled {
        /// Job id.
        job: String,
    },
}

impl WalRecord {
    fn to_json(&self) -> String {
        match self {
            WalRecord::Accepted { seq, job, spec } => format!(
                r#"{{"wal":"accepted","seq":{seq},"job":"{}","spec":{}}}"#,
                escape(job),
                spec.to_json()
            ),
            WalRecord::Started { job, attempt } => {
                format!(
                    r#"{{"wal":"started","job":"{}","attempt":{attempt}}}"#,
                    escape(job)
                )
            }
            WalRecord::Completed { job, status } => format!(
                r#"{{"wal":"completed","job":"{}","status":"{}"}}"#,
                escape(job),
                escape(status)
            ),
            WalRecord::Cancelled { job } => {
                format!(r#"{{"wal":"cancelled","job":"{}"}}"#, escape(job))
            }
        }
    }

    fn from_value(v: &Json) -> Result<WalRecord, SpecError> {
        let field = |name: &str| -> Result<String, SpecError> {
            v.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| SpecError::new(format!("wal record: missing {name:?}")))
        };
        match field("wal")?.as_str() {
            "accepted" => Ok(WalRecord::Accepted {
                seq: v
                    .get("seq")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| SpecError::new("wal record: missing \"seq\""))?,
                job: field("job")?,
                spec: Box::new(JobSpec::from_value(
                    v.get("spec")
                        .ok_or_else(|| SpecError::new("wal record: missing \"spec\""))?,
                )?),
            }),
            "started" => Ok(WalRecord::Started {
                job: field("job")?,
                attempt: v
                    .get("attempt")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| SpecError::new("wal record: missing \"attempt\""))?
                    as usize,
            }),
            "completed" => Ok(WalRecord::Completed {
                job: field("job")?,
                status: field("status")?,
            }),
            "cancelled" => Ok(WalRecord::Cancelled { job: field("job")? }),
            other => Err(SpecError::new(format!(
                "wal record: unknown kind {other:?}"
            ))),
        }
    }
}

/// Append-only, fsynced jobs log.
#[derive(Debug)]
pub struct JobLog {
    path: PathBuf,
    file: File,
}

impl JobLog {
    /// Opens (creating if absent) the log at `path`.
    ///
    /// # Errors
    ///
    /// I/O errors opening the file.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(JobLog { path, file })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and fsyncs before returning — the transition
    /// is durable once this call succeeds.
    ///
    /// # Errors
    ///
    /// I/O errors writing or syncing; on error the record must be
    /// treated as NOT committed.
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<()> {
        let mut line = record.to_json();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }

    /// Replays the log at `path` into its committed records. A torn
    /// final line is dropped (its transition never committed); returns
    /// how many bytes of tail were dropped that way. A missing file
    /// replays to an empty log.
    ///
    /// # Errors
    ///
    /// [`SpecError`] for corruption anywhere but the final line.
    pub fn replay(path: impl AsRef<Path>) -> Result<(Vec<WalRecord>, usize), SpecError> {
        let path = path.as_ref();
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
            Err(e) => return Err(SpecError::new(format!("{}: {e}", path.display()))),
        };
        let mut records = Vec::new();
        let mut dropped = 0;
        let lines: Vec<&str> = text.split_inclusive('\n').collect();
        for (i, raw) in lines.iter().enumerate() {
            let is_last = i + 1 == lines.len();
            let line = raw.trim_end_matches('\n');
            if line.is_empty() {
                continue;
            }
            let parsed = Json::parse(line)
                .map_err(|e| SpecError::new(format!("wal line {}: {e}", i + 1)))
                .and_then(|v| WalRecord::from_value(&v));
            match parsed {
                Ok(r) => records.push(r),
                // A torn append: the crash hit mid-write, so the
                // transition never committed. Only the final line may
                // be torn.
                Err(_) if is_last && !raw.ends_with('\n') => {
                    dropped = raw.len();
                }
                Err(e) => return Err(e),
            }
        }
        Ok((records, dropped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixref_core::FlowSpec;
    use fixref_sim::{DesignSpec, ScenarioSet};

    fn tmp(name: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!("fixref_wal_{name}.jsonl"));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn spec() -> JobSpec {
        JobSpec::new(
            "acme",
            DesignSpec::new("lms").with_param("mu", 0.0625),
            ScenarioSet::single(7, 28.0, 100),
        )
        .with_flow(FlowSpec {
            cache: true,
            ..FlowSpec::default()
        })
    }

    #[test]
    fn appended_records_replay_in_order() {
        let path = tmp("roundtrip");
        let records = vec![
            WalRecord::Accepted {
                seq: 1,
                job: "j-1".into(),
                spec: Box::new(spec()),
            },
            WalRecord::Started {
                job: "j-1".into(),
                attempt: 0,
            },
            WalRecord::Completed {
                job: "j-1".into(),
                status: "complete".into(),
            },
            WalRecord::Cancelled { job: "j-2".into() },
        ];
        let mut log = JobLog::open(&path).expect("opens");
        for r in &records {
            log.append(r).expect("appends");
        }
        drop(log);
        let (back, dropped) = JobLog::replay(&path).expect("replays");
        assert_eq!(back, records);
        assert_eq!(dropped, 0);

        // Re-opening appends, never truncates.
        let mut log = JobLog::open(&path).expect("re-opens");
        log.append(&WalRecord::Cancelled { job: "j-3".into() })
            .expect("appends");
        let (back, _) = JobLog::replay(&path).expect("replays");
        assert_eq!(back.len(), records.len() + 1);
    }

    #[test]
    fn torn_final_line_is_dropped_but_torn_middle_is_corruption() {
        let path = tmp("torn");
        let mut log = JobLog::open(&path).expect("opens");
        log.append(&WalRecord::Cancelled { job: "j-1".into() })
            .expect("appends");
        drop(log);
        // Simulate a crash mid-append: a half-written record with no
        // trailing newline.
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str(r#"{"wal":"accepted","seq":2,"job":"j-2""#);
        std::fs::write(&path, &text).expect("write");
        let (records, dropped) = JobLog::replay(&path).expect("torn tail tolerated");
        assert_eq!(records.len(), 1);
        assert!(dropped > 0);

        // The same garbage mid-file (newline-terminated, records after
        // it) is corruption, not a torn append.
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push('\n');
        text.push_str(r#"{"wal":"cancelled","job":"j-3"}"#);
        text.push('\n');
        std::fs::write(&path, &text).expect("write");
        assert!(JobLog::replay(&path).is_err());
    }

    #[test]
    fn missing_log_replays_empty() {
        let (records, dropped) = JobLog::replay(tmp("missing")).expect("empty");
        assert!(records.is_empty());
        assert_eq!(dropped, 0);
    }
}
