//! The line protocol: a newline-delimited JSON command API over
//! `std::net::TcpListener`.
//!
//! One request per line, one JSON response per line:
//!
//! | command    | request                                  | response |
//! |------------|------------------------------------------|----------|
//! | `submit`   | `{"cmd":"submit","spec":{...}}`          | `{"ok":true,"job":"j-1"}` |
//! | `status`   | `{"cmd":"status","job":"j-1"}`           | `{"ok":true,"status":{...}}` |
//! | `result`   | `{"cmd":"result","job":"j-1"}`           | `{"ok":true,"result":{...}}` |
//! | `journal`  | `{"cmd":"journal","job":"j-1"}`          | `{"ok":true,"events":[...]}` |
//! | `events`   | `{"cmd":"events"}`                       | server lifecycle journal |
//! | `cancel`   | `{"cmd":"cancel","job":"j-1"}`           | `{"ok":true,"cancelled":bool}` |
//! | `metrics`  | `{"cmd":"metrics"}`                      | `{"ok":true,"metrics":{...}}` |
//! | `shutdown` | `{"cmd":"shutdown"}`                     | `{"ok":true,"draining":true}` |
//!
//! Failures answer `{"ok":false,"error":"..."}` — an admission
//! rejection is a *successful* protocol exchange carrying an error,
//! never a dropped connection. The dispatcher is transport-agnostic
//! (`handle_line` maps a request line to a response line), so tests
//! drive it without sockets and the binary's TCP accept loop stays
//! a thin wrapper.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use fixref_core::JobSpec;
use fixref_obs::json::escape;
use fixref_obs::{Event, Json};

use crate::server::Server;

/// Renders a `{"ok":false,...}` error response.
fn err_line(message: &str) -> String {
    format!(r#"{{"ok":false,"error":"{}"}}"#, escape(message))
}

/// Dispatches one request line against the server, returning the
/// response line (without trailing newline). Never panics on malformed
/// input — every parse failure is an `{"ok":false}` response.
pub fn handle_line(server: &Server, line: &str) -> String {
    let v = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return err_line(&format!("malformed request: {e}")),
    };
    let Some(cmd) = v.get("cmd").and_then(Json::as_str) else {
        return err_line("missing \"cmd\"");
    };
    let job_arg = |v: &Json| -> Result<String, String> {
        v.get("job")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| "missing \"job\"".to_string())
    };
    match cmd {
        "submit" => {
            let Some(spec) = v.get("spec") else {
                return err_line("missing \"spec\"");
            };
            let spec = match JobSpec::from_value(spec) {
                Ok(s) => s,
                Err(e) => return err_line(&e.to_string()),
            };
            match server.submit(spec) {
                Ok(job) => format!(r#"{{"ok":true,"job":"{}"}}"#, escape(&job)),
                Err(rejection) => err_line(&rejection.reason),
            }
        }
        "status" => match job_arg(&v) {
            Ok(job) => match server.status(&job) {
                Some(s) => format!(r#"{{"ok":true,"status":{}}}"#, s.to_json()),
                None => err_line(&format!("unknown job {job:?}")),
            },
            Err(e) => err_line(&e),
        },
        "result" => match job_arg(&v) {
            Ok(job) => match server.result(&job) {
                Some(r) => format!(r#"{{"ok":true,"result":{}}}"#, r.to_json()),
                None => err_line(&format!("no result for job {job:?}")),
            },
            Err(e) => err_line(&e),
        },
        "journal" => match job_arg(&v) {
            Ok(job) => {
                let events: Vec<String> = server.journal(&job).iter().map(Event::to_json).collect();
                format!(r#"{{"ok":true,"events":[{}]}}"#, events.join(","))
            }
            Err(e) => err_line(&e),
        },
        "events" => {
            let events: Vec<String> = server
                .recorder()
                .events()
                .iter()
                .map(Event::to_json)
                .collect();
            format!(r#"{{"ok":true,"events":[{}]}}"#, events.join(","))
        }
        "cancel" => match job_arg(&v) {
            Ok(job) => format!(r#"{{"ok":true,"cancelled":{}}}"#, server.cancel(&job)),
            Err(e) => err_line(&e),
        },
        "metrics" => format!(
            r#"{{"ok":true,"metrics":{}}}"#,
            server.metrics().render_json()
        ),
        "shutdown" => r#"{"ok":true,"draining":true}"#.to_string(),
        other => err_line(&format!("unknown command {other:?}")),
    }
}

/// Serves the line protocol on `listener` until a `shutdown` command
/// arrives (or `stop` is raised externally), then returns so the caller
/// can drain. Each connection is handled on the accept thread — the
/// protocol is request/response, and job execution happens on the
/// server's worker threads, so a slow client never blocks a job.
///
/// # Errors
///
/// I/O errors from the listener itself; per-connection errors just end
/// that connection.
pub fn serve_listener(
    server: &Server,
    listener: &TcpListener,
    stop: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                if handle_connection(server, stream, stop) {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Handles one connection to completion; returns `true` when the
/// client asked for shutdown.
fn handle_connection(server: &Server, stream: TcpStream, stop: &Arc<AtomicBool>) -> bool {
    let _ = stream.set_nonblocking(false);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return false,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(server, &line);
        let is_shutdown = response == r#"{"ok":true,"draining":true}"#;
        if writer
            .write_all(format!("{response}\n").as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if is_shutdown {
            stop.store(true, Ordering::SeqCst);
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use fixref_core::FlowSpec;
    use fixref_sim::{DesignSpec, ScenarioSet};

    fn test_server(name: &str) -> Server {
        let dir = std::env::temp_dir().join(format!("fixref_proto_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        Server::open(ServerConfig::new(dir)).expect("opens")
    }

    fn submit_line() -> String {
        let spec = JobSpec::new(
            "acme",
            DesignSpec::new("lms").with_input_dtype("<7,5,tc,st,rd>"),
            ScenarioSet::single(7, 28.0, 120),
        )
        .with_flow(FlowSpec {
            max_simulations: Some(6),
            ..FlowSpec::default()
        });
        format!(r#"{{"cmd":"submit","spec":{}}}"#, spec.to_json())
    }

    #[test]
    fn submit_status_result_journal_round_trip() {
        let server = test_server("round_trip");
        let response = handle_line(&server, &submit_line());
        assert!(response.contains(r#""ok":true"#), "{response}");
        assert!(response.contains(r#""job":"j-1""#), "{response}");

        let status = handle_line(&server, r#"{"cmd":"status","job":"j-1"}"#);
        assert!(status.contains(r#""state":"queued""#), "{status}");

        server.run_until_idle();
        let status = handle_line(&server, r#"{"cmd":"status","job":"j-1"}"#);
        assert!(status.contains(r#""state":"finished""#), "{status}");
        let result = handle_line(&server, r#"{"cmd":"result","job":"j-1"}"#);
        assert!(result.contains(r#""status":"#), "{result}");
        let journal = handle_line(&server, r#"{"cmd":"journal","job":"j-1"}"#);
        assert!(
            journal.contains(r#""event":"iteration_started""#),
            "{journal}"
        );
        assert!(
            journal.contains(r#""event":"checkpoint_written""#),
            "{journal}"
        );
        let metrics = handle_line(&server, r#"{"cmd":"metrics"}"#);
        assert!(metrics.contains("serve"), "{metrics}");
    }

    #[test]
    fn malformed_and_unknown_requests_answer_structured_errors() {
        let server = test_server("malformed");
        for bad in [
            "not json",
            r#"{"nocmd":1}"#,
            r#"{"cmd":"explode"}"#,
            r#"{"cmd":"status"}"#,
            r#"{"cmd":"submit"}"#,
            r#"{"cmd":"submit","spec":{"tenant":"a"}}"#,
            r#"{"cmd":"status","job":"j-99"}"#,
        ] {
            let response = handle_line(&server, bad);
            assert!(response.contains(r#""ok":false"#), "{bad} -> {response}");
        }
    }

    #[test]
    fn tcp_round_trip_and_shutdown() {
        use std::io::{BufRead as _, BufReader, Write as _};
        let server = std::sync::Arc::new(test_server("tcp"));
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || serve_listener(&server, &listener, &stop))
        };

        let mut stream = TcpStream::connect(addr).expect("connects");
        stream
            .write_all(format!("{}\n", submit_line()).as_bytes())
            .expect("writes");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("reads");
        assert!(line.contains(r#""job":"j-1""#), "{line}");

        stream
            .write_all(b"{\"cmd\":\"shutdown\"}\n")
            .expect("writes");
        line.clear();
        reader.read_line(&mut line).expect("reads");
        assert!(line.contains(r#""draining":true"#), "{line}");
        acceptor.join().expect("joins").expect("listener ok");
        server.drain();
        assert_eq!(server.queue_depth(), 0);
    }
}
