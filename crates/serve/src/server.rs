//! The job server: admission, fair-share scheduling, crash-safe
//! execution and restart recovery.
//!
//! Life of a job: `submit` validates the spec against the design
//! registry and the queue limits, journals an `accepted` record to the
//! write-ahead jobs log (fsynced *before* the job exists anywhere
//! else), and enqueues it under its tenant. Workers pull jobs
//! round-robin across tenants (fair share: a tenant with 50 queued
//! jobs cannot starve a tenant with 1), run the refinement flow with
//! per-job checkpointing into the server's [`CheckpointStore`], and
//! journal a terminal record only after the result file is durably on
//! disk. Worker panics are caught at the job boundary and fed to the
//! retry policy; a retry resumes from the job's last checkpoint, so a
//! successful retry is bit-identical to an undisturbed run.
//!
//! Crash recovery: on [`Server::open`], the WAL replays into the set
//! of accepted jobs; every job without a terminal record is re-queued
//! (resuming from its checkpoint when one exists). Nothing about a
//! job's outcome lives only in memory, so `kill -9` at any instant —
//! mid-checkpoint included, thanks to atomic checkpoint writes —
//! loses no accepted job and duplicates none.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use fixref_core::{
    CheckpointStore, FaultMode, FaultPolicy, FlowError, FlowSpec, FlowStatus, JobSpec,
    RefinePolicy, RefinementFlow, SweepDriver,
};
use fixref_obs::{DefaultRecorder, Event, MetricsReport, Recorder as _};
use fixref_sim::{Design, FaultPlan, RetryPolicy, SpecError};

use crate::job::{render_annotation, JobResult, JobState, JobStatus};
use crate::registry::DesignRegistry;
use crate::wal::{JobLog, WalRecord};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Data directory: holds `jobs.wal`, `checkpoints/` and
    /// `results/`.
    pub data_dir: PathBuf,
    /// Global queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Per-tenant queue capacity (admission fairness: one tenant
    /// cannot occupy the whole queue).
    pub tenant_queue_capacity: usize,
    /// Sweep worker threads per swept job.
    pub sweep_workers: usize,
    /// Job-level retry policy (attempts + deterministic jittered
    /// backoff) applied to panics and flow errors.
    pub retry: RetryPolicy,
    /// Per-tenant simulation-budget caps: jobs of a listed tenant run
    /// with `min(job's own budget, cap)` simulations.
    pub tenant_sim_caps: Vec<(String, u64)>,
    /// Injected faults (tests): shard panics/NaN bursts pass through
    /// to each job's sweep, and
    /// [`FaultPlan::server_crash_after_n_checkpoints`] kills the whole
    /// server abruptly.
    pub fault_plan: FaultPlan,
}

impl ServerConfig {
    /// A default configuration rooted at `data_dir`.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        ServerConfig {
            data_dir: data_dir.into(),
            queue_capacity: 64,
            tenant_queue_capacity: 64,
            sweep_workers: 1,
            retry: RetryPolicy::default(),
            tenant_sim_caps: Vec::new(),
            fault_plan: FaultPlan::default(),
        }
    }
}

/// Why a submission was turned away at the door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// Human-readable reason, also journaled as a `job_rejected`
    /// event.
    pub reason: String,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rejected: {}", self.reason)
    }
}

impl std::error::Error for Rejection {}

/// Errors opening or operating the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serve error: {}", self.message)
    }
}

impl std::error::Error for ServeError {}

impl From<SpecError> for ServeError {
    fn from(e: SpecError) -> Self {
        ServeError {
            message: e.to_string(),
        }
    }
}

struct JobEntry {
    spec: JobSpec,
    state: JobState,
    attempts: usize,
    cancel: fixref_core::CancelToken,
    status: Option<String>,
    reason: Option<String>,
}

struct State {
    log: JobLog,
    next_seq: u64,
    jobs: BTreeMap<String, JobEntry>,
    /// Per-tenant FIFO queues, in first-appearance order.
    queues: Vec<(String, VecDeque<String>)>,
    /// Round-robin cursor over `queues`.
    rr: usize,
    queued_total: usize,
    running: usize,
    draining: bool,
    crashed: bool,
    /// Checkpoints written across all jobs since this server instance
    /// started (drives the injected server crash).
    checkpoints_written: usize,
}

impl State {
    fn enqueue(&mut self, tenant: &str, job: String) {
        match self.queues.iter_mut().find(|(t, _)| t == tenant) {
            Some((_, q)) => q.push_back(job),
            None => {
                self.queues
                    .push((tenant.to_string(), VecDeque::from([job])));
            }
        }
        self.queued_total += 1;
    }

    fn tenant_queued(&self, tenant: &str) -> usize {
        self.queues
            .iter()
            .find(|(t, _)| t == tenant)
            .map_or(0, |(_, q)| q.len())
    }

    /// Next job id, round-robin across tenants.
    fn next_job(&mut self) -> Option<String> {
        if self.queues.is_empty() {
            return None;
        }
        for probe in 0..self.queues.len() {
            let i = (self.rr + probe) % self.queues.len();
            if let Some(job) = self.queues[i].1.pop_front() {
                self.rr = (i + 1) % self.queues.len();
                self.queued_total -= 1;
                return Some(job);
            }
        }
        None
    }

    fn remove_queued(&mut self, job: &str) -> bool {
        for (_, q) in &mut self.queues {
            if let Some(pos) = q.iter().position(|j| j == job) {
                q.remove(pos);
                self.queued_total -= 1;
                return true;
            }
        }
        false
    }
}

/// The refinement job server. See the module docs for the life of a
/// job and the crash-recovery contract.
pub struct Server {
    config: ServerConfig,
    registry: DesignRegistry,
    recorder: Arc<DefaultRecorder>,
    store: CheckpointStore,
    results_dir: PathBuf,
    state: Mutex<State>,
    work: Condvar,
}

enum RunFailure {
    /// The flow (or a worker panic) failed with a cause; retryable.
    Failed(String),
    /// The injected server crash fired after the given checkpoint
    /// count of this run.
    ServerCrash(usize),
}

struct RunOutput {
    status: String,
    reason: Option<String>,
    msb_iterations: usize,
    lsb_iterations: usize,
    coverage: Option<String>,
    types: Vec<(String, String)>,
    annotations: Vec<String>,
    journal: Vec<Event>,
    checkpoints_this_run: usize,
}

impl Server {
    /// Opens the server over `config.data_dir` with the built-in
    /// design registry, replaying the jobs log and re-queueing every
    /// job that never reached a terminal record.
    ///
    /// # Errors
    ///
    /// [`ServeError`] for an unreadable or corrupt jobs log.
    pub fn open(config: ServerConfig) -> Result<Self, ServeError> {
        Self::open_with_registry(config, DesignRegistry::builtin())
    }

    /// [`Server::open`] with a caller-supplied design registry.
    ///
    /// # Errors
    ///
    /// [`ServeError`] for an unreadable or corrupt jobs log.
    pub fn open_with_registry(
        config: ServerConfig,
        registry: DesignRegistry,
    ) -> Result<Self, ServeError> {
        let wal_path = config.data_dir.join("jobs.wal");
        let (records, _torn) = JobLog::replay(&wal_path)?;
        let log = JobLog::open(&wal_path).map_err(|e| ServeError {
            message: format!("open jobs log: {e}"),
        })?;
        let store =
            CheckpointStore::open(config.data_dir.join("checkpoints")).map_err(|e| ServeError {
                message: format!("open checkpoint store: {e}"),
            })?;
        let results_dir = config.data_dir.join("results");
        std::fs::create_dir_all(&results_dir).map_err(|e| ServeError {
            message: format!("create results dir: {e}"),
        })?;

        let recorder = Arc::new(DefaultRecorder::new());
        let mut state = State {
            log,
            next_seq: 1,
            jobs: BTreeMap::new(),
            queues: Vec::new(),
            rr: 0,
            queued_total: 0,
            running: 0,
            draining: false,
            crashed: false,
            checkpoints_written: 0,
        };

        // Replay: acceptance order is recovery order.
        let mut order: Vec<String> = Vec::new();
        for record in records {
            match record {
                WalRecord::Accepted { seq, job, spec } => {
                    state.next_seq = state.next_seq.max(seq + 1);
                    order.push(job.clone());
                    state.jobs.insert(
                        job,
                        JobEntry {
                            spec: *spec,
                            state: JobState::Queued,
                            attempts: 0,
                            cancel: fixref_core::CancelToken::new(),
                            status: None,
                            reason: None,
                        },
                    );
                }
                WalRecord::Started { job, attempt } => {
                    if let Some(e) = state.jobs.get_mut(&job) {
                        e.attempts = e.attempts.max(attempt + 1);
                    }
                }
                WalRecord::Completed { job, status } => {
                    if let Some(e) = state.jobs.get_mut(&job) {
                        e.state = JobState::Finished;
                        e.status = Some(status);
                    }
                }
                WalRecord::Cancelled { job } => {
                    if let Some(e) = state.jobs.get_mut(&job) {
                        e.state = JobState::Cancelled;
                    }
                }
            }
        }
        let server = Server {
            results_dir,
            state: Mutex::new(state),
            work: Condvar::new(),
            registry,
            recorder,
            store,
            config,
        };
        {
            let mut st = server.lock();
            for job in order {
                let (tenant, recover) = match st.jobs.get(&job) {
                    Some(e) if !e.state.is_terminal() => (e.spec.tenant.clone(), true),
                    _ => (String::new(), false),
                };
                if recover {
                    st.enqueue(&tenant, job.clone());
                    server.recorder.inc("serve.recovered", 1);
                    server.recorder.record_event(Event::JobRecovered {
                        job: job.clone(),
                        tenant,
                        from_checkpoint: server.store.contains(&job),
                    });
                }
            }
        }
        Ok(server)
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The server's metrics recorder (lifecycle events + `serve.*`
    /// counters).
    pub fn recorder(&self) -> &Arc<DefaultRecorder> {
        &self.recorder
    }

    /// Renders the current metrics report.
    pub fn metrics(&self) -> MetricsReport {
        MetricsReport::from_recorder("serve", &self.recorder)
    }

    /// Whether the injected server crash has fired: the server refuses
    /// all further work and must be re-opened (fresh [`Server::open`]
    /// over the same data dir) to recover.
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Total queued jobs (all tenants).
    pub fn queue_depth(&self) -> usize {
        self.lock().queued_total
    }

    fn reject(&self, tenant: &str, reason: String) -> Rejection {
        self.recorder.inc("serve.rejected", 1);
        self.recorder.record_event(Event::JobRejected {
            tenant: tenant.to_string(),
            reason: reason.clone(),
        });
        Rejection { reason }
    }

    /// Submits a job. Admission control runs here: unknown design
    /// kinds, full queues and tenant quota violations are rejected
    /// with a reason instead of queued — the queue is bounded and the
    /// server never buffers unbounded work.
    ///
    /// # Errors
    ///
    /// [`Rejection`] naming the admission failure.
    pub fn submit(&self, spec: JobSpec) -> Result<String, Rejection> {
        // Validate the design spec against the registry before taking
        // queue space: a job that can never build is rejected at the
        // door, not failed an hour later.
        if let Err(e) = self.registry.build(&spec.design) {
            return Err(self.reject(&spec.tenant, e.to_string()));
        }
        if let Err(e) = spec.flow.sim_backend() {
            return Err(self.reject(&spec.tenant, e.to_string()));
        }
        let mut st = self.lock();
        if st.crashed {
            return Err(self.reject(&spec.tenant, "server crashed".into()));
        }
        if st.draining {
            return Err(self.reject(&spec.tenant, "server is draining".into()));
        }
        if st.queued_total >= self.config.queue_capacity {
            return Err(self.reject(
                &spec.tenant,
                format!("queue full (capacity {})", self.config.queue_capacity),
            ));
        }
        if st.tenant_queued(&spec.tenant) >= self.config.tenant_queue_capacity {
            return Err(self.reject(
                &spec.tenant,
                format!(
                    "tenant quota exceeded (capacity {})",
                    self.config.tenant_queue_capacity
                ),
            ));
        }
        let seq = st.next_seq;
        let job = format!("j-{seq}");
        // Write-ahead: the job is durable before it is visible.
        if let Err(e) = st.log.append(&WalRecord::Accepted {
            seq,
            job: job.clone(),
            spec: Box::new(spec.clone()),
        }) {
            return Err(self.reject(&spec.tenant, format!("jobs log write failed: {e}")));
        }
        st.next_seq = seq + 1;
        let tenant = spec.tenant.clone();
        st.jobs.insert(
            job.clone(),
            JobEntry {
                spec,
                state: JobState::Queued,
                attempts: 0,
                cancel: fixref_core::CancelToken::new(),
                status: None,
                reason: None,
            },
        );
        st.enqueue(&tenant, job.clone());
        let depth = st.queued_total;
        drop(st);
        self.recorder.inc("serve.accepted", 1);
        self.recorder.observe("serve.queue_depth", depth as f64);
        self.recorder.record_event(Event::JobAccepted {
            job: job.clone(),
            tenant,
            queue_depth: depth,
        });
        self.work.notify_one();
        Ok(job)
    }

    /// Point-in-time status of a job.
    pub fn status(&self, job: &str) -> Option<JobStatus> {
        let st = self.lock();
        let e = st.jobs.get(job)?;
        let mut status = JobStatus {
            job: job.to_string(),
            tenant: e.spec.tenant.clone(),
            state: e.state,
            attempts: e.attempts,
            status: e.status.clone(),
            reason: e.reason.clone(),
        };
        drop(st);
        // A job finished in a previous server life has its reason only
        // in the result file.
        if status.state == JobState::Finished && status.reason.is_none() {
            if let Some(r) = self.result(job) {
                status.status = Some(r.status);
                status.reason = r.reason;
            }
        }
        Some(status)
    }

    /// The persisted result of a finished job.
    pub fn result(&self, job: &str) -> Option<JobResult> {
        let text = std::fs::read_to_string(self.result_path(job)).ok()?;
        JobResult::from_json(&text).ok()
    }

    /// The flow journal of a finished job (empty until then).
    pub fn journal(&self, job: &str) -> Vec<Event> {
        self.result(job).map(|r| r.journal).unwrap_or_default()
    }

    /// Cancels a job. A queued job is removed and journaled as
    /// cancelled; a running job gets its [`fixref_core::CancelToken`]
    /// fired and finishes as `"partial"` through the exact same
    /// best-so-far path as budget exhaustion. Returns `false` for
    /// unknown or already-terminal jobs.
    pub fn cancel(&self, job: &str) -> bool {
        let mut st = self.lock();
        let Some(e) = st.jobs.get(job) else {
            return false;
        };
        match e.state {
            JobState::Queued => {
                if st
                    .log
                    .append(&WalRecord::Cancelled { job: job.into() })
                    .is_err()
                {
                    return false;
                }
                st.remove_queued(job);
                if let Some(e) = st.jobs.get_mut(job) {
                    e.state = JobState::Cancelled;
                }
                drop(st);
                self.recorder.inc("serve.cancelled", 1);
                true
            }
            JobState::Running => {
                e.cancel.cancel();
                drop(st);
                self.recorder.inc("serve.cancelled", 1);
                true
            }
            JobState::Finished | JobState::Cancelled => false,
        }
    }

    /// Stops admission and processes the queue to empty on the calling
    /// thread — the graceful-drain path (the `shutdown` protocol
    /// command and the binary's signal-free exit both land here).
    pub fn drain(&self) {
        self.lock().draining = true;
        self.work.notify_all();
        self.run_until_idle();
    }

    /// Runs queued jobs on the calling thread until the queue is empty
    /// (or the injected server crash fires). Returns the number of
    /// jobs executed.
    pub fn run_until_idle(&self) -> usize {
        let mut ran = 0;
        loop {
            let next = {
                let mut st = self.lock();
                if st.crashed {
                    return ran;
                }
                st.next_job()
            };
            match next {
                Some(job) => {
                    self.execute(&job);
                    ran += 1;
                }
                None => return ran,
            }
        }
    }

    /// Worker loop for background threads: blocks for work, executes
    /// jobs, and returns when the server is draining with an empty
    /// queue (or crashed).
    pub fn worker_loop(&self) {
        loop {
            let next = {
                let mut st = self.lock();
                loop {
                    if st.crashed || (st.draining && st.queued_total == 0) {
                        return;
                    }
                    match st.next_job() {
                        Some(job) => break Some(job),
                        None => {
                            let (guard, _timeout) = self
                                .work
                                .wait_timeout(st, std::time::Duration::from_millis(50))
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            st = guard;
                        }
                    }
                }
            };
            if let Some(job) = next {
                self.execute(&job);
            }
        }
    }

    fn result_path(&self, job: &str) -> PathBuf {
        let safe: String = job
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.results_dir.join(format!("{safe}.json"))
    }

    /// Effective flow spec for a job: the tenant's simulation cap
    /// tightens (never loosens) the job's own budget.
    fn effective_flow(&self, tenant: &str, flow: &FlowSpec) -> FlowSpec {
        let cap = self
            .config
            .tenant_sim_caps
            .iter()
            .find(|(t, _)| t == tenant)
            .map(|&(_, cap)| cap);
        let mut flow = flow.clone();
        flow.max_simulations = match (flow.max_simulations, cap) {
            (Some(own), Some(cap)) => Some(own.min(cap)),
            (None, Some(cap)) => Some(cap),
            (own, None) => own,
        };
        flow
    }

    /// Runs one job to a terminal state (or the injected server
    /// crash), with catch_unwind isolation and checkpoint-resuming
    /// retries.
    fn execute(&self, job: &str) {
        let (spec, cancel, mut attempt) = {
            let mut st = self.lock();
            let Some(e) = st.jobs.get_mut(job) else {
                return;
            };
            if e.state != JobState::Queued {
                return;
            }
            e.state = JobState::Running;
            st.running += 1;
            match st.jobs.get(job) {
                Some(e) => (e.spec.clone(), e.cancel.clone(), e.attempts),
                None => return,
            }
        };
        let flow_spec = self.effective_flow(&spec.tenant, &spec.flow);
        let checkpoint_path = self.store.path_of(job);

        loop {
            // Journal the attempt before running it.
            {
                let mut st = self.lock();
                if st
                    .log
                    .append(&WalRecord::Started {
                        job: job.into(),
                        attempt,
                    })
                    .is_err()
                {
                    // The log is the source of truth; without it the
                    // attempt must not run. Leave the job queued for a
                    // healthier server life.
                    st.running -= 1;
                    if let Some(e) = st.jobs.get_mut(job) {
                        e.state = JobState::Queued;
                    }
                    let tenant = spec.tenant.clone();
                    st.enqueue(&tenant, job.into());
                    return;
                }
                if let Some(e) = st.jobs.get_mut(job) {
                    e.attempts = attempt + 1;
                }
            }
            self.recorder.inc("serve.started", 1);
            self.recorder.record_event(Event::JobStarted {
                job: job.into(),
                tenant: spec.tenant.clone(),
                attempt,
            });

            // Arm the injected server crash: how many more checkpoint
            // writes this server life is allowed before dying.
            let crash_remaining = {
                let st = self.lock();
                self.config
                    .fault_plan
                    .server_crash_checkpoints()
                    .map(|n| n.saturating_sub(st.checkpoints_written))
            };
            if crash_remaining == Some(0) {
                self.crash_now(job);
                return;
            }

            let outcome = catch_unwind(AssertUnwindSafe(|| {
                self.run_once(
                    &spec,
                    &flow_spec,
                    &checkpoint_path,
                    &cancel,
                    crash_remaining,
                )
            }))
            .unwrap_or_else(|payload| {
                let cause = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "worker panicked".into());
                Err(RunFailure::Failed(format!("panicked: {cause}")))
            });

            match outcome {
                Ok(out) => {
                    self.lock().checkpoints_written += out.checkpoints_this_run;
                    self.finish(job, &spec, attempt + 1, out);
                    return;
                }
                Err(RunFailure::ServerCrash(written)) => {
                    self.lock().checkpoints_written += written;
                    self.crash_now(job);
                    return;
                }
                Err(RunFailure::Failed(cause)) => {
                    attempt += 1;
                    if attempt < self.config.retry.max_attempts {
                        let backoff_ms = self.config.retry.backoff_ms(attempt);
                        self.recorder.inc("serve.retried", 1);
                        self.recorder.record_event(Event::JobRetried {
                            job: job.into(),
                            attempt,
                            backoff_ms,
                        });
                        if backoff_ms > 0 {
                            std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
                        }
                        continue;
                    }
                    let out = RunOutput {
                        status: "failed".into(),
                        reason: Some(cause),
                        msb_iterations: 0,
                        lsb_iterations: 0,
                        coverage: None,
                        types: Vec::new(),
                        annotations: Vec::new(),
                        journal: Vec::new(),
                        checkpoints_this_run: 0,
                    };
                    self.finish(job, &spec, attempt, out);
                    return;
                }
            }
        }
    }

    /// Marks the server crashed — the deterministic stand-in for
    /// `kill -9`: no terminal records, no drain, the in-flight job is
    /// simply abandoned where its last fsync left it.
    fn crash_now(&self, _job: &str) {
        let mut st = self.lock();
        st.crashed = true;
        drop(st);
        self.recorder.inc("serve.crash_injected", 1);
        self.work.notify_all();
    }

    fn run_once(
        &self,
        spec: &JobSpec,
        flow_spec: &FlowSpec,
        checkpoint_path: &Path,
        cancel: &fixref_core::CancelToken,
        crash_remaining: Option<usize>,
    ) -> Result<RunOutput, RunFailure> {
        let builder = self
            .registry
            .build(&spec.design)
            .map_err(|e| RunFailure::Failed(e.to_string()))?;
        let first = &spec.scenarios.as_slice()[0];
        let shard = builder(first);
        let design = shard.design;
        let mut stimulus = shard.stimulus;

        // Fresh run or checkpoint resume?
        let resumed = checkpoint_path.exists();
        let (mut flow, start_seq) = if resumed {
            let cp = fixref_core::Checkpoint::read(checkpoint_path)
                .map_err(|e| RunFailure::Failed(format!("checkpoint: {e}")))?;
            let start_seq = cp.next_sequence;
            let flow = RefinementFlow::resume_from_checkpoint(
                design.clone(),
                RefinePolicy::default(),
                &cp,
            )
            .map_err(|e| RunFailure::Failed(format!("checkpoint resume: {e}")))?;
            (flow, start_seq)
        } else {
            let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
            // Knowledge-based hints only seed a fresh flow; a resumed
            // one restores them from the checkpoint.
            for name in &flow_spec.force_saturate {
                let id = design.find(name).ok_or_else(|| {
                    RunFailure::Failed(format!("force_saturate: unknown signal {name:?}"))
                })?;
                flow.force_saturate(id);
            }
            (flow, 0)
        };
        flow.checkpoint_to(checkpoint_path.to_path_buf());
        flow_spec
            .configure(&mut flow)
            .map_err(|e| RunFailure::Failed(e.to_string()))?;
        flow.set_cancel_token(cancel.clone());

        let mut plan = self.config.fault_plan.clone();
        let crash_abort = crash_remaining.map(|remaining| start_seq + remaining - 1);
        if let Some(seq) = crash_abort {
            plan = plan.abort_after_checkpoint(seq);
        }
        flow.set_fault_plan(plan.clone());

        let run = if flow_spec.shards == 0 {
            if flow_spec.cache {
                flow.enable_cache();
            }
            flow.run(move |d: &Design, i: usize| stimulus(d, i))
        } else {
            let sweep_builder = self
                .registry
                .build(&spec.design)
                .map_err(|e| RunFailure::Failed(e.to_string()))?;
            let workers = self
                .config
                .sweep_workers
                .max(1)
                .min(flow_spec.shards.max(1));
            let mut driver = SweepDriver::new(spec.scenarios.clone(), workers, sweep_builder);
            driver.set_fault_policy(FaultPolicy {
                mode: FaultMode::Strict,
                max_attempts: flow_spec.max_attempts,
            });
            driver.inject_faults(plan);
            if flow_spec.cache {
                driver.enable_cache();
            }
            flow.run_swept(&mut driver)
        };

        let journal = flow.journal();
        let last_seq = journal
            .iter()
            .filter_map(|e| match e {
                Event::CheckpointWritten { sequence, .. } => Some(*sequence),
                _ => None,
            })
            .max();
        let checkpoints_this_run = last_seq.map_or(0, |s| (s + 1).saturating_sub(start_seq));

        match run {
            Ok(outcome) => {
                let (status, reason) = match &outcome.status {
                    FlowStatus::Complete => ("complete".to_string(), None),
                    FlowStatus::Partial { reason } => ("partial".to_string(), Some(reason.clone())),
                };
                let mut types: Vec<(String, String)> = outcome
                    .types
                    .iter()
                    .map(|(id, t)| (design.name_of(*id), t.to_string()))
                    .collect();
                types.sort();
                Ok(RunOutput {
                    status,
                    reason,
                    msb_iterations: outcome.msb_iterations,
                    lsb_iterations: outcome.lsb_iterations,
                    coverage: outcome.coverage.as_ref().map(|c| c.summary()),
                    types,
                    annotations: design.annotations().iter().map(render_annotation).collect(),
                    journal,
                    checkpoints_this_run,
                })
            }
            Err(FlowError::Interrupted { checkpoint }) if crash_abort == Some(checkpoint) => {
                Err(RunFailure::ServerCrash(checkpoints_this_run))
            }
            Err(e) => Err(RunFailure::Failed(e.to_string())),
        }
    }

    /// Persists the result (atomically), journals the terminal record,
    /// and retires the job's checkpoint.
    fn finish(&self, job: &str, spec: &JobSpec, attempts: usize, out: RunOutput) {
        let result = JobResult {
            job: job.into(),
            tenant: spec.tenant.clone(),
            status: out.status.clone(),
            reason: out.reason.clone(),
            attempts,
            msb_iterations: out.msb_iterations,
            lsb_iterations: out.lsb_iterations,
            coverage: out.coverage,
            types: out.types,
            annotations: out.annotations,
            journal: out.journal,
        };
        // Result before terminal record: a crash between the two
        // re-runs the job (idempotent), never loses the record of it.
        let path = self.result_path(job);
        let tmp = self.results_dir.join(format!(
            "{}.tmp",
            path.file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("result")
        ));
        let written = std::fs::write(&tmp, result.to_json())
            .and_then(|()| std::fs::rename(&tmp, &path))
            .is_ok();

        let mut st = self.lock();
        if written {
            let _ = st.log.append(&WalRecord::Completed {
                job: job.into(),
                status: out.status.clone(),
            });
        }
        st.running -= 1;
        if let Some(e) = st.jobs.get_mut(job) {
            e.state = JobState::Finished;
            e.status = Some(out.status.clone());
            e.reason = out.reason;
        }
        drop(st);
        let _ = self.store.remove(job);
        self.recorder.inc("serve.completed", 1);
        self.recorder
            .inc(&format!("serve.status.{}", out.status), 1);
        self.recorder.record_event(Event::JobCompleted {
            job: job.into(),
            status: out.status,
            attempts,
        });
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("data_dir", &self.config.data_dir)
            .field("registry", &self.registry)
            .finish_non_exhaustive()
    }
}
