//! Property-based tests of the DSP substrate blocks.

use fixref_dsp::cordic::{rotate, vector};
use fixref_dsp::interp::FarrowCubic;
use fixref_dsp::slicer::pam_slice;
use fixref_dsp::{Biquad, Fir, FirChannel, Lfsr};
use proptest::prelude::*;

proptest! {
    /// FIR filters are linear: F(a·x + b·y) = a·F(x) + b·F(y).
    #[test]
    fn fir_is_linear(
        taps in prop::collection::vec(-2.0f64..2.0, 1..12),
        xs in prop::collection::vec(-3.0f64..3.0, 1..40),
        ys in prop::collection::vec(-3.0f64..3.0, 1..40),
        a in -2.0f64..2.0,
        b in -2.0f64..2.0,
    ) {
        let n = xs.len().min(ys.len());
        let mut fx = Fir::new(&taps);
        let mut fy = Fir::new(&taps);
        let mut fc = Fir::new(&taps);
        for i in 0..n {
            let lhs = fc.push(a * xs[i] + b * ys[i]);
            let rhs = a * fx.push(xs[i]) + b * fy.push(ys[i]);
            prop_assert!((lhs - rhs).abs() < 1e-9, "step {}: {} vs {}", i, lhs, rhs);
        }
    }

    /// FIR output never exceeds the L1 bound used for worst-case analysis.
    #[test]
    fn fir_respects_l1_bound(
        taps in prop::collection::vec(-2.0f64..2.0, 1..12),
        xs in prop::collection::vec(-1.0f64..1.0, 1..60),
    ) {
        let mut f = Fir::new(&taps);
        let bound = f.peak_output(1.0);
        for &x in &xs {
            let y = f.push(x);
            prop_assert!(y.abs() <= bound + 1e-12, "{y} exceeds {bound}");
        }
    }

    /// Stable biquads stay bounded on bounded input.
    #[test]
    fn stable_biquad_is_bibo(
        fc in 0.01f64..0.45,
        q in 0.3f64..5.0,
        xs in prop::collection::vec(-1.0f64..1.0, 10..200),
    ) {
        let mut f = Biquad::lowpass(fc, q);
        prop_assume!(f.is_stable());
        // A crude BIBO bound: |y| <= sum|b| / (1 - max|pole|) * |x|max;
        // use a generous envelope instead of the tight constant.
        for &x in &xs {
            let y = f.push(x);
            prop_assert!(y.abs() < 100.0, "unbounded output {y}");
            prop_assert!(y.is_finite());
        }
    }

    /// The channel model and a plain FIR with the same taps agree.
    #[test]
    fn channel_is_an_fir(
        taps in prop::collection::vec(-1.0f64..1.0, 1..8),
        xs in prop::collection::vec(-1.0f64..1.0, 1..40),
    ) {
        let mut ch = FirChannel::new(&taps);
        let mut fir = Fir::new(&taps);
        for &x in &xs {
            prop_assert!((ch.push(x) - fir.push(x)).abs() < 1e-12);
        }
    }

    /// Farrow interpolation is exact on arbitrary cubics at any mu.
    #[test]
    fn farrow_exact_on_cubics(
        c3 in -1.0f64..1.0,
        c2 in -1.0f64..1.0,
        c1 in -1.0f64..1.0,
        c0 in -1.0f64..1.0,
        mu in 0.0f64..1.0,
    ) {
        let p = |t: f64| ((c3 * t + c2) * t + c1) * t + c0;
        let mut f = FarrowCubic::new();
        for t in [-1.0, 0.0, 1.0, 2.0] {
            f.push(p(t));
        }
        let scale = 1.0 + c3.abs() + c2.abs() + c1.abs() + c0.abs();
        prop_assert!((f.interpolate(mu) - p(mu)).abs() < 1e-10 * scale);
    }

    /// The slicer returns a valid level and is idempotent for every order.
    #[test]
    fn slicer_level_and_idempotence(x in -3.0f64..3.0, pow in 1u32..=4) {
        let levels = 1u32 << pow;
        let s = pam_slice(x, levels);
        prop_assert!(s.abs() <= 1.0 + 1e-12);
        prop_assert_eq!(pam_slice(s, levels), s);
        // The slice is the nearest level (within half a level spacing).
        let spacing = 2.0 / (levels as f64 - 1.0);
        if x.abs() <= 1.0 {
            prop_assert!((x - s).abs() <= spacing / 2.0 + 1e-12);
        }
    }

    /// CORDIC rotation preserves the Euclidean norm and matches sin/cos.
    #[test]
    fn cordic_rotation_properties(
        x in -1.0f64..1.0,
        y in -1.0f64..1.0,
        angle in -1.5f64..1.5,
    ) {
        let (xr, yr) = rotate(x, y, angle, 24);
        let m0 = (x * x + y * y).sqrt();
        let m1 = (xr * xr + yr * yr).sqrt();
        prop_assert!((m0 - m1).abs() < 1e-5, "norm {m0} -> {m1}");
        // Against the rotation matrix.
        let ex = x * angle.cos() - y * angle.sin();
        let ey = x * angle.sin() + y * angle.cos();
        prop_assert!((xr - ex).abs() < 1e-5);
        prop_assert!((yr - ey).abs() < 1e-5);
    }

    /// CORDIC vectoring inverts rotation in the right half-plane.
    #[test]
    fn cordic_vectoring_inverts_rotation(m in 0.1f64..1.0, angle in -1.2f64..1.2) {
        let (x, y) = rotate(m, 0.0, angle, 24);
        let (mag, ang) = vector(x, y, 24);
        prop_assert!((mag - m).abs() < 1e-4);
        prop_assert!((ang - angle).abs() < 1e-4);
    }

    /// LFSR sequences are deterministic per seed and have full period for
    /// PRBS-7.
    #[test]
    fn lfsr_deterministic(seed in 1u32..127) {
        let mut a = Lfsr::prbs7(seed);
        let mut b = Lfsr::prbs7(seed);
        let mut seen = std::collections::HashSet::new();
        let mut window = 0u32;
        for i in 0..127 {
            let bit = a.next_bit();
            prop_assert_eq!(bit, b.next_bit());
            window = ((window << 1) | bit as u32) & 0x7F;
            if i >= 6 {
                seen.insert(window);
            }
        }
        // A maximal-length sequence visits every nonzero 7-bit window.
        prop_assert_eq!(seen.len(), 121);
    }
}
