//! Randomized tests of the DSP substrate blocks, driven by the in-tree
//! deterministic PRNG (seeded sweeps replacing the original proptest
//! harness; same invariants, no external deps).

use fixref_dsp::cordic::{rotate, vector};
use fixref_dsp::interp::FarrowCubic;
use fixref_dsp::slicer::pam_slice;
use fixref_dsp::{Biquad, Fir, FirChannel, Lfsr};
use fixref_fixed::Rng64;

const CASES: usize = 128;

fn pick_vec(rng: &mut Rng64, lo_len: usize, hi_len: usize, lo: f64, hi: f64) -> Vec<f64> {
    let len = lo_len + rng.below((hi_len - lo_len) as u64) as usize;
    (0..len).map(|_| rng.uniform(lo, hi)).collect()
}

/// FIR filters are linear: F(a·x + b·y) = a·F(x) + b·F(y).
#[test]
fn fir_is_linear() {
    let mut rng = Rng64::seed_from_u64(0xD5B0_0001);
    for _ in 0..CASES {
        let taps = pick_vec(&mut rng, 1, 12, -2.0, 2.0);
        let xs = pick_vec(&mut rng, 1, 40, -3.0, 3.0);
        let ys = pick_vec(&mut rng, 1, 40, -3.0, 3.0);
        let a = rng.uniform(-2.0, 2.0);
        let b = rng.uniform(-2.0, 2.0);
        let n = xs.len().min(ys.len());
        let mut fx = Fir::new(&taps);
        let mut fy = Fir::new(&taps);
        let mut fc = Fir::new(&taps);
        for i in 0..n {
            let lhs = fc.push(a * xs[i] + b * ys[i]);
            let rhs = a * fx.push(xs[i]) + b * fy.push(ys[i]);
            assert!((lhs - rhs).abs() < 1e-9, "step {}: {} vs {}", i, lhs, rhs);
        }
    }
}

/// FIR output never exceeds the L1 bound used for worst-case analysis.
#[test]
fn fir_respects_l1_bound() {
    let mut rng = Rng64::seed_from_u64(0xD5B0_0002);
    for _ in 0..CASES {
        let taps = pick_vec(&mut rng, 1, 12, -2.0, 2.0);
        let xs = pick_vec(&mut rng, 1, 60, -1.0, 1.0);
        let mut f = Fir::new(&taps);
        let bound = f.peak_output(1.0);
        for &x in &xs {
            let y = f.push(x);
            assert!(y.abs() <= bound + 1e-12, "{y} exceeds {bound}");
        }
    }
}

/// Stable biquads stay bounded on bounded input.
#[test]
fn stable_biquad_is_bibo() {
    let mut rng = Rng64::seed_from_u64(0xD5B0_0003);
    for _ in 0..CASES {
        let fc = rng.uniform(0.01, 0.45);
        let q = rng.uniform(0.3, 5.0);
        let xs = pick_vec(&mut rng, 10, 200, -1.0, 1.0);
        let mut f = Biquad::lowpass(fc, q);
        if !f.is_stable() {
            continue;
        }
        // A crude BIBO bound: |y| <= sum|b| / (1 - max|pole|) * |x|max;
        // use a generous envelope instead of the tight constant.
        for &x in &xs {
            let y = f.push(x);
            assert!(y.abs() < 100.0, "unbounded output {y}");
            assert!(y.is_finite());
        }
    }
}

/// The channel model and a plain FIR with the same taps agree.
#[test]
fn channel_is_an_fir() {
    let mut rng = Rng64::seed_from_u64(0xD5B0_0004);
    for _ in 0..CASES {
        let taps = pick_vec(&mut rng, 1, 8, -1.0, 1.0);
        let xs = pick_vec(&mut rng, 1, 40, -1.0, 1.0);
        let mut ch = FirChannel::new(&taps);
        let mut fir = Fir::new(&taps);
        for &x in &xs {
            assert!((ch.push(x) - fir.push(x)).abs() < 1e-12);
        }
    }
}

/// Farrow interpolation is exact on arbitrary cubics at any mu.
#[test]
fn farrow_exact_on_cubics() {
    let mut rng = Rng64::seed_from_u64(0xD5B0_0005);
    for _ in 0..CASES {
        let c3 = rng.uniform(-1.0, 1.0);
        let c2 = rng.uniform(-1.0, 1.0);
        let c1 = rng.uniform(-1.0, 1.0);
        let c0 = rng.uniform(-1.0, 1.0);
        let mu = rng.next_f64();
        let p = |t: f64| ((c3 * t + c2) * t + c1) * t + c0;
        let mut f = FarrowCubic::new();
        for t in [-1.0, 0.0, 1.0, 2.0] {
            f.push(p(t));
        }
        let scale = 1.0 + c3.abs() + c2.abs() + c1.abs() + c0.abs();
        assert!((f.interpolate(mu) - p(mu)).abs() < 1e-10 * scale);
    }
}

/// The slicer returns a valid level and is idempotent for every order.
#[test]
fn slicer_level_and_idempotence() {
    let mut rng = Rng64::seed_from_u64(0xD5B0_0006);
    for _ in 0..CASES {
        let x = rng.uniform(-3.0, 3.0);
        let pow = 1 + rng.below(4) as u32;
        let levels = 1u32 << pow;
        let s = pam_slice(x, levels);
        assert!(s.abs() <= 1.0 + 1e-12);
        assert_eq!(pam_slice(s, levels), s);
        // The slice is the nearest level (within half a level spacing).
        let spacing = 2.0 / (levels as f64 - 1.0);
        if x.abs() <= 1.0 {
            assert!((x - s).abs() <= spacing / 2.0 + 1e-12);
        }
    }
}

/// CORDIC rotation preserves the Euclidean norm and matches sin/cos.
#[test]
fn cordic_rotation_properties() {
    let mut rng = Rng64::seed_from_u64(0xD5B0_0007);
    for _ in 0..CASES {
        let x = rng.uniform(-1.0, 1.0);
        let y = rng.uniform(-1.0, 1.0);
        let angle = rng.uniform(-1.5, 1.5);
        let (xr, yr) = rotate(x, y, angle, 24);
        let m0 = (x * x + y * y).sqrt();
        let m1 = (xr * xr + yr * yr).sqrt();
        assert!((m0 - m1).abs() < 1e-5, "norm {m0} -> {m1}");
        // Against the rotation matrix.
        let ex = x * angle.cos() - y * angle.sin();
        let ey = x * angle.sin() + y * angle.cos();
        assert!((xr - ex).abs() < 1e-5);
        assert!((yr - ey).abs() < 1e-5);
    }
}

/// CORDIC vectoring inverts rotation in the right half-plane.
#[test]
fn cordic_vectoring_inverts_rotation() {
    let mut rng = Rng64::seed_from_u64(0xD5B0_0008);
    for _ in 0..CASES {
        let m = rng.uniform(0.1, 1.0);
        let angle = rng.uniform(-1.2, 1.2);
        let (x, y) = rotate(m, 0.0, angle, 24);
        let (mag, ang) = vector(x, y, 24);
        assert!((mag - m).abs() < 1e-4);
        assert!((ang - angle).abs() < 1e-4);
    }
}

/// LFSR sequences are deterministic per seed and have full period for
/// PRBS-7.
#[test]
fn lfsr_deterministic() {
    for seed in 1u32..127 {
        let mut a = Lfsr::prbs7(seed);
        let mut b = Lfsr::prbs7(seed);
        let mut seen = std::collections::HashSet::new();
        let mut window = 0u32;
        for i in 0..127 {
            let bit = a.next_bit();
            assert_eq!(bit, b.next_bit());
            window = ((window << 1) | bit as u32) & 0x7F;
            if i >= 6 {
                seen.insert(window);
            }
        }
        // A maximal-length sequence visits every nonzero 7-bit window.
        assert_eq!(seen.len(), 121);
    }
}
