//! Reusable instrumented building blocks.
//!
//! The example models (`lms`, `timing_loop`, `qam`) write their dataflow
//! out by hand, exactly like the paper's C listings. For composing new
//! designs, this module packages the recurring structures — delay line,
//! FIR with named partial sums, biquad, accumulator — as ready-made
//! instrumented blocks: each declares its signals under a name prefix and
//! exposes a `step` that performs one clock cycle of dataflow.
//!
//! # Example
//!
//! ```
//! use fixref_dsp::blocks::FirBlock;
//! use fixref_sim::Design;
//!
//! let d = Design::new();
//! let fir = FirBlock::new(&d, "mf", &[0.25, 0.5, 0.25]);
//! fir.init();
//! let mut last = 0.0;
//! for x in [1.0, 0.0, 0.0, 0.0] {
//!     last = fir.step(x.into()).flt();
//!     d.tick();
//! }
//! // Impulse response emerges one cycle late (registered delay line).
//! assert_eq!(last, 0.25);
//! ```

use fixref_sim::{Design, Reg, RegArray, Sig, SigArray, SignalId, SignalRef, Value};

/// A registered delay line: `len` taps shifted every clock tick.
#[derive(Debug, Clone)]
pub struct DelayLine {
    taps: RegArray,
}

impl DelayLine {
    /// Declares `"<prefix>[0..len]"` registers.
    ///
    /// # Panics
    ///
    /// Panics if names are taken or `len == 0`.
    pub fn new(design: &Design, prefix: &str, len: usize) -> Self {
        assert!(len > 0, "delay line needs at least one tap");
        DelayLine {
            taps: design.reg_array(prefix, len),
        }
    }

    /// Shifts `input` in (takes effect at the next tick).
    pub fn shift(&self, input: Value) {
        self.taps.at(0).set(input);
        for i in 1..self.taps.len() {
            self.taps.at(i).set(self.taps.at(i - 1).get());
        }
    }

    /// Reads tap `i` (pre-tick value).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn tap(&self, i: usize) -> Value {
        self.taps.at(i).get()
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// Whether the line has no taps (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// Ids of the tap registers.
    pub fn signal_ids(&self) -> Vec<SignalId> {
        self.taps.iter().map(|r| r.id()).collect()
    }
}

/// An instrumented FIR: coefficient signals, a registered delay line and
/// named partial sums — the structure of the paper's equalizer FIR.
#[derive(Debug, Clone)]
pub struct FirBlock {
    coefficients: Vec<f64>,
    c: SigArray,
    d: DelayLine,
    v: SigArray,
}

impl FirBlock {
    /// Declares `"<prefix>_c[i]"`, `"<prefix>_d[i]"`, `"<prefix>_v[i]"`.
    ///
    /// # Panics
    ///
    /// Panics if names are taken or `taps` is empty.
    pub fn new(design: &Design, prefix: &str, taps: &[f64]) -> Self {
        assert!(!taps.is_empty(), "FIR needs at least one tap");
        FirBlock {
            coefficients: taps.to_vec(),
            c: design.sig_array(&format!("{prefix}_c"), taps.len()),
            d: DelayLine::new(design, &format!("{prefix}_d"), taps.len()),
            v: design.sig_array(&format!("{prefix}_v"), taps.len() + 1),
        }
    }

    /// Loads the coefficients (call after every `reset_state`).
    pub fn init(&self) {
        for (i, &coef) in self.coefficients.iter().enumerate() {
            self.c.at(i).set(coef);
        }
    }

    /// One cycle: shifts `input` in and returns the filter output
    /// computed from the pre-tick delay line (one cycle of latency).
    pub fn step(&self, input: Value) -> Value {
        self.d.shift(input);
        self.v.at(0).set(0.0);
        let n = self.d.len();
        for i in 0..n {
            self.v
                .at(i + 1)
                .set(self.v.at(i).get() + self.d.tap(i) * self.c.at(i).get());
        }
        self.v.at(n).get()
    }

    /// Handle to the output partial sum.
    pub fn output(&self) -> &Sig {
        self.v.at(self.d.len())
    }

    /// Ids of every block signal.
    pub fn signal_ids(&self) -> Vec<SignalId> {
        let mut ids: Vec<SignalId> = self.c.iter().map(|s| s.id()).collect();
        ids.extend(self.d.signal_ids());
        ids.extend(self.v.iter().map(|s| s.id()));
        ids
    }
}

/// An instrumented direct-form-I biquad.
#[derive(Debug, Clone)]
pub struct BiquadBlock {
    b: [f64; 3],
    a: [f64; 2],
    x1: Reg,
    x2: Reg,
    y1: Reg,
    y2: Reg,
    y: Sig,
}

impl BiquadBlock {
    /// Declares `"<prefix>_{x1,x2,y1,y2,y}"` from explicit coefficients
    /// (`a0 = 1` implied).
    ///
    /// # Panics
    ///
    /// Panics if names are taken.
    pub fn new(design: &Design, prefix: &str, b: [f64; 3], a: [f64; 2]) -> Self {
        BiquadBlock {
            b,
            a,
            x1: design.reg(&format!("{prefix}_x1")),
            x2: design.reg(&format!("{prefix}_x2")),
            y1: design.reg(&format!("{prefix}_y1")),
            y2: design.reg(&format!("{prefix}_y2")),
            y: design.sig(&format!("{prefix}_y")),
        }
    }

    /// One cycle: consumes `input`, returns the section output.
    pub fn step(&self, input: Value) -> Value {
        self.y.set(
            self.b[0] * input.clone() + self.b[1] * self.x1.get() + self.b[2] * self.x2.get()
                - self.a[0] * self.y1.get()
                - self.a[1] * self.y2.get(),
        );
        self.x2.set(self.x1.get());
        self.x1.set(input);
        self.y2.set(self.y1.get());
        self.y1.set(self.y.get());
        self.y.get()
    }

    /// Handle to the output signal.
    pub fn output(&self) -> &Sig {
        &self.y
    }

    /// Ids of every block signal.
    pub fn signal_ids(&self) -> Vec<SignalId> {
        vec![
            self.x1.id(),
            self.x2.id(),
            self.y1.id(),
            self.y2.id(),
            self.y.id(),
        ]
    }
}

/// An instrumented leaky accumulator `acc ← leak·acc + input` — the
/// canonical rule-b (saturation) candidate when `leak = 1`.
#[derive(Debug, Clone)]
pub struct Accumulator {
    leak: f64,
    acc: Reg,
}

impl Accumulator {
    /// Declares `"<prefix>"` as the accumulator register. `leak = 1.0`
    /// gives a pure integrator (range propagation will explode, as the
    /// refinement flow expects).
    ///
    /// # Panics
    ///
    /// Panics if the name is taken.
    pub fn new(design: &Design, prefix: &str, leak: f64) -> Self {
        Accumulator {
            leak,
            acc: design.reg(prefix),
        }
    }

    /// One cycle: accumulates `input`, returning the pre-tick state.
    pub fn step(&self, input: Value) -> Value {
        self.acc.set(self.leak * self.acc.get() + input);
        self.acc.get()
    }

    /// Handle to the state register.
    pub fn state(&self) -> &Reg {
        &self.acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fir::Fir;
    use crate::iir::Biquad;

    #[test]
    fn delay_line_shifts_per_tick() {
        let d = Design::new();
        let line = DelayLine::new(&d, "dl", 3);
        assert_eq!(line.len(), 3);
        assert!(!line.is_empty());
        for step in 1..=4 {
            line.shift((step as f64).into());
            d.tick();
        }
        assert_eq!(line.tap(0).flt(), 4.0);
        assert_eq!(line.tap(1).flt(), 3.0);
        assert_eq!(line.tap(2).flt(), 2.0);
        assert_eq!(line.signal_ids().len(), 3);
    }

    #[test]
    fn fir_block_matches_golden_with_one_cycle_latency() {
        let taps = [0.3, -0.2, 0.5, 0.1];
        let d = Design::new();
        let blk = FirBlock::new(&d, "f", &taps);
        blk.init();
        let mut golden = Fir::new(&taps);
        let mut prev_golden = 0.0;
        for i in 0..40 {
            let x = ((i as f64) * 0.7).sin();
            let y = blk.step(x.into()).flt();
            assert!((y - prev_golden).abs() < 1e-12, "step {i}");
            prev_golden = golden.push(x);
            d.tick();
        }
        assert_eq!(blk.signal_ids().len(), 4 + 4 + 5);
    }

    #[test]
    fn biquad_block_matches_golden() {
        let proto = Biquad::lowpass(0.1, 0.707);
        let d = Design::new();
        let blk = BiquadBlock::new(&d, "bq", proto.b, proto.a);
        let mut golden = Biquad::lowpass(0.1, 0.707);
        for i in 0..100 {
            let x = ((i as f64) * 0.3).sin();
            let y = blk.step(x.into()).flt();
            let g = golden.push(x);
            assert!((y - g).abs() < 1e-12, "step {i}: {y} vs {g}");
            d.tick();
        }
        assert_eq!(blk.signal_ids().len(), 5);
    }

    #[test]
    fn pure_accumulator_explodes_propagation() {
        let d = Design::new();
        let x = d.sig("x");
        x.range(-1.0, 1.0);
        let acc = Accumulator::new(&d, "acc", 1.0);
        for i in 0..40 {
            x.set(((i % 5) as f64 - 2.0) * 0.3);
            acc.step(x.get());
            d.tick();
        }
        let report = d.report_for(acc.state());
        assert!(
            report.prop.width() > 20.0,
            "integrator propagation must grow: {}",
            report.prop
        );
        // While the leaky version stays bounded.
        let leaky = Accumulator::new(&d, "leaky", 0.5);
        for i in 0..200 {
            x.set(((i % 5) as f64 - 2.0) * 0.3);
            leaky.step(x.get());
            d.tick();
        }
        assert!(d.report_for(leaky.state()).prop.is_bounded());
        assert!(d.report_for(leaky.state()).prop.max_abs() < 4.0);
    }

    #[test]
    fn blocks_compose_into_a_refinable_design() {
        // FIR -> biquad -> accumulator, then run the full flow on it.
        use fixref_core::{RefinePolicy, RefinementFlow};

        let d = Design::new();
        let t: fixref_fixed::DType = "<8,6,tc,st,rd>".parse().expect("valid");
        let x = d.sig_typed("x", t);
        let fir = FirBlock::new(&d, "f", &[0.25, 0.5, 0.25]);
        let proto = Biquad::lowpass(0.1, 0.707);
        let bq = BiquadBlock::new(&d, "bq", proto.b, proto.a);
        let acc = Accumulator::new(&d, "acc", 0.9);

        let mut flow = RefinementFlow::new(d.clone(), RefinePolicy::default());
        let (xc, firc, bqc, accc) = (x.clone(), fir.clone(), bq.clone(), acc.clone());
        let outcome = flow
            .run(move |dd, _| {
                firc.init();
                for i in 0..1200 {
                    xc.set(((i as f64) * 0.17).sin() * 0.9);
                    let a = firc.step(xc.get());
                    let b = bqc.step(a);
                    accc.step(b);
                    dd.tick();
                }
            })
            .expect("flow converges");
        // Every block signal (except the constant-zero v[0]) gets a type.
        assert_eq!(
            outcome.types.len(),
            16,
            "x is locked; all 16 block signals typed"
        );
        assert!(outcome.verify.is_overflow_free());
    }
}
