//! CORDIC rotator — the classic shift-and-add trigonometry engine of
//! fixed-point ASICs (carrier mixers, phase rotators, magnitude/angle
//! converters). Every internal stage is pure add/shift, which is exactly
//! what the refinement flow types well; the `case_study` experiment runs
//! an instrumented rotator through the flow.

/// Number of iterations the golden model uses by default.
pub const DEFAULT_STAGES: usize = 14;

/// The CORDIC gain `K = Π √(1 + 2^-2i)` for `n` stages.
pub fn cordic_gain(n: usize) -> f64 {
    (0..n)
        .map(|i| (1.0 + 0.25f64.powi(i as i32)).sqrt())
        .product()
}

/// The per-stage rotation angles `atan(2^-i)` in radians.
pub fn cordic_angles(n: usize) -> Vec<f64> {
    (0..n).map(|i| (0.5f64.powi(i as i32)).atan()).collect()
}

/// Golden CORDIC in rotation mode: rotates `(x, y)` by `angle` radians
/// using `stages` shift-add iterations, compensating the CORDIC gain.
///
/// `angle` must lie within the CORDIC convergence range
/// (|angle| ≤ ~1.74 rad); larger angles should be pre-rotated by
/// quadrant.
///
/// # Example
///
/// ```
/// use fixref_dsp::cordic::rotate;
///
/// let (c, s) = rotate(1.0, 0.0, std::f64::consts::FRAC_PI_3, 16);
/// assert!((c - 0.5).abs() < 1e-4);
/// assert!((s - 3f64.sqrt() / 2.0).abs() < 1e-4);
/// ```
pub fn rotate(x: f64, y: f64, angle: f64, stages: usize) -> (f64, f64) {
    let angles = cordic_angles(stages);
    let mut x = x;
    let mut y = y;
    let mut z = angle;
    for (i, &a) in angles.iter().enumerate() {
        let p = 0.5f64.powi(i as i32);
        if z >= 0.0 {
            let xn = x - y * p;
            let yn = y + x * p;
            x = xn;
            y = yn;
            z -= a;
        } else {
            let xn = x + y * p;
            let yn = y - x * p;
            x = xn;
            y = yn;
            z += a;
        }
    }
    let g = cordic_gain(stages);
    (x / g, y / g)
}

/// Golden CORDIC in vectoring mode: returns `(magnitude, angle)` of
/// `(x, y)` with `x > 0` (right half-plane).
///
/// # Example
///
/// ```
/// use fixref_dsp::cordic::vector;
///
/// let (m, a) = vector(1.0, 1.0, 16);
/// assert!((m - 2f64.sqrt()).abs() < 1e-4);
/// assert!((a - std::f64::consts::FRAC_PI_4).abs() < 1e-4);
/// ```
pub fn vector(x: f64, y: f64, stages: usize) -> (f64, f64) {
    let angles = cordic_angles(stages);
    let mut x = x;
    let mut y = y;
    let mut z = 0.0;
    for (i, &a) in angles.iter().enumerate() {
        let p = 0.5f64.powi(i as i32);
        if y > 0.0 {
            let xn = x + y * p;
            let yn = y - x * p;
            x = xn;
            y = yn;
            z += a;
        } else {
            let xn = x - y * p;
            let yn = y + x * p;
            x = xn;
            y = yn;
            z -= a;
        }
    }
    (x / cordic_gain(stages), z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_3, FRAC_PI_4, FRAC_PI_6, PI};

    #[test]
    fn gain_converges_to_the_classic_constant() {
        // K -> 1.6467602...
        let g = cordic_gain(30);
        assert!((g - 1.646760258121).abs() < 1e-9, "gain {g}");
        assert!(cordic_gain(1) < g);
    }

    #[test]
    fn angles_are_atan_powers_of_two() {
        let a = cordic_angles(4);
        assert!((a[0] - FRAC_PI_4).abs() < 1e-15);
        assert!((a[1] - 0.5f64.atan()).abs() < 1e-15);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn rotation_matches_sin_cos_over_the_range() {
        for k in -20..=20 {
            let angle = k as f64 * PI / 48.0; // within convergence
            let (c, s) = rotate(1.0, 0.0, angle, 20);
            assert!((c - angle.cos()).abs() < 1e-5, "cos({angle})");
            assert!((s - angle.sin()).abs() < 1e-5, "sin({angle})");
        }
    }

    #[test]
    fn rotation_preserves_magnitude() {
        let (x0, y0) = (0.6f64, -0.35f64);
        let m0 = (x0 * x0 + y0 * y0).sqrt();
        for angle in [-1.2, -FRAC_PI_6, 0.0, FRAC_PI_3, 1.5] {
            let (x, y) = rotate(x0, y0, angle, 18);
            let m = (x * x + y * y).sqrt();
            assert!((m - m0).abs() < 1e-4, "magnitude at {angle}");
        }
    }

    #[test]
    fn accuracy_improves_with_stages() {
        let angle = 0.7;
        let err = |n: usize| {
            let (c, _) = rotate(1.0, 0.0, angle, n);
            (c - angle.cos()).abs()
        };
        assert!(err(6) > err(10));
        assert!(err(10) > err(16));
        assert!(err(16) < 1e-4);
    }

    #[test]
    fn vectoring_recovers_polar_form() {
        for (x, y) in [(1.0, 0.5), (0.3, -0.8), (2.0, 0.0), (0.5, 0.5)] {
            let (m, a) = vector(x, y, 20);
            assert!(
                (m - (x * x + y * y).sqrt()).abs() < 1e-5,
                "mag of ({x},{y})"
            );
            assert!((a - (y / x).atan()).abs() < 1e-5, "angle of ({x},{y})");
        }
    }

    #[test]
    fn rotate_then_vector_roundtrip() {
        let (x, y) = rotate(0.9, 0.0, 0.6, 20);
        let (m, a) = vector(x, y, 20);
        assert!((m - 0.9).abs() < 1e-4);
        assert!((a - 0.6).abs() < 1e-4);
    }
}
