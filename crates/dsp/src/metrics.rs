//! Quality metrics: mean-square error and bit-error counting.

/// A running mean-square-error accumulator.
///
/// # Example
///
/// ```
/// use fixref_dsp::Mse;
///
/// let mut m = Mse::new();
/// m.record(1.0, 0.9);
/// m.record(-1.0, -1.1);
/// assert!((m.mse() - 0.01).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Mse {
    sum_sq: f64,
    count: u64,
}

impl Mse {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Mse::default()
    }

    /// Records one (reference, actual) pair.
    pub fn record(&mut self, reference: f64, actual: f64) {
        let e = reference - actual;
        self.sum_sq += e * e;
        self.count += 1;
    }

    /// Number of recorded pairs.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The mean square error (0 when empty).
    pub fn mse(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_sq / self.count as f64
        }
    }

    /// Root-mean-square error.
    pub fn rmse(&self) -> f64 {
        self.mse().sqrt()
    }
}

/// Counts symbol decisions against a reference stream, tolerating an
/// unknown constant pipeline delay (searched over a window).
///
/// # Example
///
/// ```
/// use fixref_dsp::BerCounter;
///
/// let sent = [1.0, -1.0, 1.0, 1.0, -1.0, -1.0, 1.0, -1.0];
/// // Receiver sees the same stream delayed by 2, one error at the end.
/// let mut rx: Vec<f64> = vec![0.0, 0.0];
/// rx.extend_from_slice(&sent[..6]);
/// rx[7] = -rx[7];
/// let c = BerCounter::align(&sent, &rx, 4);
/// assert_eq!(c.delay(), 2);
/// assert_eq!(c.errors(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BerCounter {
    errors: u64,
    compared: u64,
    delay: usize,
}

impl BerCounter {
    /// Aligns `received` against `sent` by searching delays
    /// `0..=max_delay` for the fewest mismatches, then counts errors at
    /// the best alignment. Comparison is by sign (2-PAM decisions).
    ///
    /// # Panics
    ///
    /// Panics if the streams are too short to overlap at `max_delay`.
    pub fn align(sent: &[f64], received: &[f64], max_delay: usize) -> Self {
        assert!(
            received.len() > max_delay,
            "received stream shorter than the delay search window"
        );
        let mut best = (u64::MAX, 0usize, 0u64);
        for delay in 0..=max_delay {
            let n = sent.len().min(received.len() - delay);
            let mut errors = 0;
            for i in 0..n {
                let s = sent[i] > 0.0;
                let r = received[i + delay] > 0.0;
                if s != r {
                    errors += 1;
                }
            }
            if errors < best.0 {
                best = (errors, delay, n as u64);
            }
        }
        BerCounter {
            errors: best.0,
            compared: best.2,
            delay: best.1,
        }
    }

    /// Number of symbol errors at the best alignment.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Number of symbols compared.
    pub fn compared(&self) -> u64 {
        self.compared
    }

    /// The detected pipeline delay.
    pub fn delay(&self) -> usize {
        self.delay
    }

    /// The error ratio.
    pub fn ber(&self) -> f64 {
        if self.compared == 0 {
            0.0
        } else {
            self.errors as f64 / self.compared as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_basics() {
        let mut m = Mse::new();
        assert_eq!(m.mse(), 0.0);
        m.record(2.0, 1.0);
        m.record(0.0, 2.0);
        assert_eq!(m.count(), 2);
        assert!((m.mse() - 2.5).abs() < 1e-12);
        assert!((m.rmse() - 2.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn ber_perfect_alignment() {
        let sent: Vec<f64> = (0..50)
            .map(|i| if i % 3 == 0 { 1.0 } else { -1.0 })
            .collect();
        let c = BerCounter::align(&sent, &sent, 8);
        assert_eq!(c.errors(), 0);
        assert_eq!(c.delay(), 0);
        assert_eq!(c.ber(), 0.0);
    }

    #[test]
    fn ber_finds_delay_and_counts() {
        let sent: Vec<f64> = (0..100)
            .map(|i| if (i * 7) % 5 < 2 { 1.0 } else { -1.0 })
            .collect();
        let mut rx = vec![1.0; 5];
        rx.extend_from_slice(&sent);
        // Flip three decisions.
        for k in [10usize, 40, 70] {
            rx[5 + k] = -rx[5 + k];
        }
        let c = BerCounter::align(&sent, &rx, 10);
        assert_eq!(c.delay(), 5);
        assert_eq!(c.errors(), 3);
        assert!((c.ber() - 3.0 / c.compared() as f64).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shorter than the delay search window")]
    fn ber_validates_lengths() {
        let _ = BerCounter::align(&[1.0], &[1.0], 4);
    }
}
