//! Gardner timing-error detector.
//!
//! The "Timing error detector" block of Fig. 5: a decision-independent
//! TED operating at 2 samples/symbol. With strobes `y[k]` on symbol
//! centers and `y[k-1/2]` midway,
//! `e = y[k-1/2] · (y[k] − y[k-1])`: positive when sampling late,
//! negative when early, zero-mean on time.

/// A Gardner TED over symbol-rate strobes.
///
/// Feed the interpolated midway sample with [`GardnerTed::push_half`] and
/// the on-symbol sample with [`GardnerTed::push_symbol`], which returns
/// the error.
///
/// # Example
///
/// ```
/// use fixref_dsp::GardnerTed;
///
/// let mut ted = GardnerTed::new();
/// ted.push_symbol(1.0);
/// ted.push_half(0.0);          // perfect zero crossing midway
/// let e = ted.push_symbol(-1.0);
/// assert_eq!(e, 0.0);          // on-time: no error
/// ```
#[derive(Debug, Clone, Default)]
pub struct GardnerTed {
    prev_symbol: f64,
    half: f64,
}

impl GardnerTed {
    /// Creates a TED with zeroed state.
    pub fn new() -> Self {
        GardnerTed::default()
    }

    /// Records the mid-symbol (half-strobe) sample.
    pub fn push_half(&mut self, y_half: f64) {
        self.half = y_half;
    }

    /// Records the on-symbol sample and returns the timing error
    /// `e = y_half · (y_now − y_prev)` (positive = sampling late, so a
    /// positive loop gain advances the strobe).
    pub fn push_symbol(&mut self, y_now: f64) -> f64 {
        let e = self.half * (y_now - self.prev_symbol);
        self.prev_symbol = y_now;
        e
    }

    /// Clears the state.
    pub fn reset(&mut self) {
        *self = GardnerTed::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the TED with a sinusoid-shaped alternating pattern sampled
    /// with a controlled timing offset and returns the mean error.
    fn mean_error(offset: f64) -> f64 {
        // Alternating ±1 symbols produce a clean 0.5-cycle/symbol tone:
        // y(t) = cos(pi t). Symbol strobes at t = k + offset, halves at
        // t = k - 0.5 + offset.
        let mut ted = GardnerTed::new();
        let mut acc = 0.0;
        let mut n = 0;
        for k in 1..200 {
            let t_sym = k as f64 + offset;
            let t_half = k as f64 - 0.5 + offset;
            ted.push_half((std::f64::consts::PI * t_half).cos());
            let e = ted.push_symbol((std::f64::consts::PI * t_sym).cos());
            if k > 2 {
                acc += e;
                n += 1;
            }
        }
        acc / n as f64
    }

    #[test]
    fn zero_error_when_on_time() {
        assert!(mean_error(0.0).abs() < 1e-9);
    }

    #[test]
    fn error_sign_tracks_offset_direction() {
        // Gardner S-curve: e ∝ sin(2π·offset); positive for late sampling.
        let late = mean_error(0.1);
        let early = mean_error(-0.1);
        assert!(late > 0.01, "late error {late}");
        assert!(early < -0.01, "early error {early}");
        assert!((late + early).abs() < 1e-6, "S-curve asymmetric");
    }

    #[test]
    fn s_curve_is_monotonic_near_lock() {
        let e1 = mean_error(0.05);
        let e2 = mean_error(0.15);
        let e3 = mean_error(0.25);
        assert!(0.0 < e1 && e1 < e2 && e2 <= e3 + 1e-9, "{e1} {e2} {e3}");
    }

    #[test]
    fn reset_clears_memory() {
        let mut ted = GardnerTed::new();
        ted.push_half(0.7);
        ted.push_symbol(1.0);
        ted.reset();
        ted.push_half(0.0);
        assert_eq!(ted.push_symbol(5.0), 0.0);
    }
}
