//! Channel models: static ISI (FIR) and additive white Gaussian noise.

use fixref_fixed::Rng64;

/// A static multipath / intersymbol-interference channel: convolution with
/// a fixed impulse response.
///
/// # Example
///
/// ```
/// use fixref_dsp::FirChannel;
///
/// let mut ch = FirChannel::new(&[1.0, 0.3]);
/// assert_eq!(ch.push(1.0), 1.0);
/// assert_eq!(ch.push(0.0), 0.3);
/// assert_eq!(ch.push(0.0), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct FirChannel {
    taps: Vec<f64>,
    state: Vec<f64>,
}

impl FirChannel {
    /// Creates a channel with the given impulse response.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is empty.
    pub fn new(taps: &[f64]) -> Self {
        assert!(!taps.is_empty(), "channel needs at least one tap");
        FirChannel {
            taps: taps.to_vec(),
            state: vec![0.0; taps.len()],
        }
    }

    /// The canonical mild-ISI channel used by the equalizer workloads:
    /// `[0.1, 1.0, -0.05]` — a precursor and postcursor echo around the
    /// main tap, chosen so the adapted feedback coefficient `b` settles
    /// within the ±0.2 band the paper pins with `b.range(-0.2, 0.2)`,
    /// and peak input amplitude `Σ|h| = 1.15 < 1.5` (matching the
    /// paper's `x.range(-1.5, 1.5)`).
    pub fn mild_isi() -> Self {
        FirChannel::new(&[0.1, 1.0, -0.05])
    }

    /// Pushes one input sample, returning the channel output.
    pub fn push(&mut self, x: f64) -> f64 {
        self.state.rotate_right(1);
        self.state[0] = x;
        self.taps.iter().zip(&self.state).map(|(t, s)| t * s).sum()
    }

    /// Worst-case output magnitude for inputs bounded by `amp`.
    pub fn peak_output(&self, amp: f64) -> f64 {
        amp * self.taps.iter().map(|t| t.abs()).sum::<f64>()
    }

    /// Resets the delay line.
    pub fn reset(&mut self) {
        self.state.iter_mut().for_each(|s| *s = 0.0);
    }
}

/// Additive white Gaussian noise (Box–Muller over a seeded PRNG).
///
/// # Example
///
/// ```
/// use fixref_dsp::Awgn;
///
/// let mut n = Awgn::new(42, 0.1);
/// let x = n.add(1.0);
/// assert!((x - 1.0).abs() < 1.0); // almost surely
/// ```
#[derive(Debug, Clone)]
pub struct Awgn {
    rng: Rng64,
    sigma: f64,
    spare: Option<f64>,
}

impl Awgn {
    /// Creates a noise source with standard deviation `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite.
    pub fn new(seed: u64, sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "invalid sigma {sigma}");
        Awgn {
            rng: Rng64::seed_from_u64(seed),
            sigma,
            spare: None,
        }
    }

    /// Creates a noise source from a target SNR in dB for a signal of the
    /// given power.
    ///
    /// # Panics
    ///
    /// Panics if `signal_power` is not positive.
    pub fn from_snr_db(seed: u64, snr_db: f64, signal_power: f64) -> Self {
        assert!(signal_power > 0.0, "signal power must be positive");
        let noise_power = signal_power / 10f64.powf(snr_db / 10.0);
        Awgn::new(seed, noise_power.sqrt())
    }

    /// Draws one N(0, σ²) sample.
    pub fn sample(&mut self) -> f64 {
        if let Some(s) = self.spare.take() {
            return s * self.sigma;
        }
        // Box–Muller.
        let u1: f64 = self.rng.uniform(f64::MIN_POSITIVE, 1.0);
        let u2: f64 = self.rng.uniform(0.0, 1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos() * self.sigma
    }

    /// Adds noise to a sample.
    pub fn add(&mut self, x: f64) -> f64 {
        x + self.sample()
    }

    /// The configured standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_is_linear_convolution() {
        let mut ch = FirChannel::new(&[0.5, -0.25, 0.125]);
        // Impulse response comes back verbatim.
        let out: Vec<f64> = [1.0, 0.0, 0.0, 0.0].iter().map(|&x| ch.push(x)).collect();
        assert_eq!(out, vec![0.5, -0.25, 0.125, 0.0]);
        // Superposition.
        ch.reset();
        let a: Vec<f64> = [1.0, 2.0, -1.0].iter().map(|&x| ch.push(x)).collect();
        ch.reset();
        let b: Vec<f64> = [0.5, -1.0, 2.0].iter().map(|&x| ch.push(x)).collect();
        ch.reset();
        let ab: Vec<f64> = [1.5, 1.0, 1.0].iter().map(|&x| ch.push(x)).collect();
        for i in 0..3 {
            assert!((ab[i] - a[i] - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn mild_isi_peak_within_paper_input_range() {
        let ch = FirChannel::mild_isi();
        assert!(ch.peak_output(1.0) <= 1.5);
        assert!((ch.peak_output(1.0) - 1.15).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_channel_rejected() {
        let _ = FirChannel::new(&[]);
    }

    #[test]
    fn awgn_statistics() {
        let mut n = Awgn::new(7, 0.25);
        let count = 40000;
        let samples: Vec<f64> = (0..count).map(|_| n.sample()).collect();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / count as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.25).abs() < 0.01, "std {}", var.sqrt());
    }

    #[test]
    fn awgn_deterministic_per_seed() {
        let mut a = Awgn::new(3, 1.0);
        let mut b = Awgn::new(3, 1.0);
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn snr_construction() {
        let mut n = Awgn::from_snr_db(5, 20.0, 1.0);
        // 20 dB below unit power: sigma = 0.1.
        assert!((n.sigma() - 0.1).abs() < 1e-12);
        let x = n.add(0.0);
        assert!(x.abs() < 1.0);
    }

    #[test]
    fn zero_sigma_is_transparent() {
        let mut n = Awgn::new(1, 0.0);
        assert_eq!(n.add(0.75), 0.75);
        assert_eq!(n.sample(), 0.0);
    }
}
