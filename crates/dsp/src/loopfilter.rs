//! Proportional-integral loop filter.
//!
//! The "Loop filter" block of Fig. 5: `out = Kp·e + Ki·Σe`. The
//! integrator is the classic MSB-explosion candidate for range
//! propagation, and the motivation for saturation-mode types.

/// A first-order PI loop filter.
///
/// # Example
///
/// ```
/// use fixref_dsp::PiFilter;
///
/// let mut lf = PiFilter::new(0.1, 0.01);
/// let y = lf.push(1.0);
/// assert!((y - 0.11).abs() < 1e-12); // Kp*e + Ki*e
/// ```
#[derive(Debug, Clone)]
pub struct PiFilter {
    kp: f64,
    ki: f64,
    integrator: f64,
    clamp: Option<(f64, f64)>,
}

impl PiFilter {
    /// Creates a PI filter with proportional gain `kp` and integral gain
    /// `ki`.
    ///
    /// # Panics
    ///
    /// Panics if either gain is negative or non-finite.
    pub fn new(kp: f64, ki: f64) -> Self {
        assert!(kp >= 0.0 && kp.is_finite(), "invalid kp {kp}");
        assert!(ki >= 0.0 && ki.is_finite(), "invalid ki {ki}");
        PiFilter {
            kp,
            ki,
            integrator: 0.0,
            clamp: None,
        }
    }

    /// Adds an integrator clamp (anti-windup) — the floating-point
    /// equivalent of a saturating fixed-point type on the integrator.
    pub fn with_clamp(mut self, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "clamp bounds reversed");
        self.clamp = Some((lo, hi));
        self
    }

    /// Pushes one error sample, returning the control output.
    pub fn push(&mut self, e: f64) -> f64 {
        self.integrator += self.ki * e;
        if let Some((lo, hi)) = self.clamp {
            self.integrator = self.integrator.clamp(lo, hi);
        }
        self.kp * e + self.integrator
    }

    /// The integrator state.
    pub fn integrator(&self) -> f64 {
        self.integrator
    }

    /// Resets the integrator.
    pub fn reset(&mut self) {
        self.integrator = 0.0;
    }

    /// The proportional gain.
    pub fn kp(&self) -> f64 {
        self.kp
    }

    /// The integral gain.
    pub fn ki(&self) -> f64 {
        self.ki
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_plus_integral() {
        let mut lf = PiFilter::new(0.5, 0.1);
        assert!((lf.push(1.0) - 0.6).abs() < 1e-12);
        assert!((lf.push(1.0) - 0.7).abs() < 1e-12);
        assert!((lf.integrator() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn integrator_accumulates_dc() {
        let mut lf = PiFilter::new(0.0, 0.01);
        for _ in 0..100 {
            lf.push(0.5);
        }
        assert!((lf.integrator() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn clamp_bounds_integrator() {
        let mut lf = PiFilter::new(0.0, 1.0).with_clamp(-0.25, 0.25);
        for _ in 0..100 {
            lf.push(1.0);
        }
        assert_eq!(lf.integrator(), 0.25);
        for _ in 0..100 {
            lf.push(-1.0);
        }
        assert_eq!(lf.integrator(), -0.25);
    }

    #[test]
    fn reset_and_getters() {
        let mut lf = PiFilter::new(0.3, 0.05);
        lf.push(2.0);
        lf.reset();
        assert_eq!(lf.integrator(), 0.0);
        assert_eq!(lf.kp(), 0.3);
        assert_eq!(lf.ki(), 0.05);
    }

    #[test]
    #[should_panic(expected = "invalid kp")]
    fn gains_validated() {
        let _ = PiFilter::new(-0.1, 0.0);
    }
}
