//! Golden floating-point FIR filter and tap designers.

/// A direct-form FIR filter over `f64`.
///
/// # Example
///
/// ```
/// use fixref_dsp::Fir;
///
/// let mut f = Fir::new(&[0.25, 0.5, 0.25]);
/// let y: Vec<f64> = [1.0, 0.0, 0.0, 0.0].iter().map(|&x| f.push(x)).collect();
/// assert_eq!(y, vec![0.25, 0.5, 0.25, 0.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Fir {
    taps: Vec<f64>,
    state: Vec<f64>,
}

impl Fir {
    /// Creates a filter with the given taps.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is empty.
    pub fn new(taps: &[f64]) -> Self {
        assert!(!taps.is_empty(), "FIR needs at least one tap");
        Fir {
            taps: taps.to_vec(),
            state: vec![0.0; taps.len()],
        }
    }

    /// Pushes one sample and returns the filter output.
    pub fn push(&mut self, x: f64) -> f64 {
        self.state.rotate_right(1);
        self.state[0] = x;
        self.taps.iter().zip(&self.state).map(|(t, s)| t * s).sum()
    }

    /// The filter taps.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// Whether the filter has no taps (never true for a constructed
    /// filter).
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// Clears the delay line.
    pub fn reset(&mut self) {
        self.state.iter_mut().for_each(|s| *s = 0.0);
    }

    /// Worst-case output magnitude for inputs bounded by `amp`
    /// (the L1 norm bound used by worst-case range analysis).
    pub fn peak_output(&self, amp: f64) -> f64 {
        amp * self.taps.iter().map(|t| t.abs()).sum::<f64>()
    }

    /// DC gain (sum of taps).
    pub fn dc_gain(&self) -> f64 {
        self.taps.iter().sum()
    }
}

/// Designs a Hamming-windowed-sinc lowpass with cutoff `fc` (normalized to
/// the sample rate, `0 < fc < 0.5`) and `n` taps.
///
/// # Panics
///
/// Panics if `fc` is outside `(0, 0.5)` or `n == 0`.
pub fn lowpass(fc: f64, n: usize) -> Vec<f64> {
    assert!(fc > 0.0 && fc < 0.5, "cutoff {fc} outside (0, 0.5)");
    assert!(n > 0, "need at least one tap");
    let mid = (n as f64 - 1.0) / 2.0;
    let mut taps: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 - mid;
            let sinc = if t.abs() < 1e-12 {
                2.0 * fc
            } else {
                (2.0 * std::f64::consts::PI * fc * t).sin() / (std::f64::consts::PI * t)
            };
            let w = 0.54
                - 0.46 * (2.0 * std::f64::consts::PI * i as f64 / (n as f64 - 1.0).max(1.0)).cos();
            sinc * w
        })
        .collect();
    // Normalize DC gain to 1.
    let g: f64 = taps.iter().sum();
    taps.iter_mut().for_each(|t| *t /= g);
    taps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impulse_and_reset() {
        let mut f = Fir::new(&[1.0, -2.0, 3.0]);
        assert_eq!(f.push(1.0), 1.0);
        assert_eq!(f.push(0.0), -2.0);
        f.reset();
        assert_eq!(f.push(0.0), 0.0);
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
    }

    #[test]
    fn gain_and_peak() {
        let f = Fir::new(&[0.5, -0.25, 0.75]);
        assert!((f.dc_gain() - 1.0).abs() < 1e-12);
        assert!((f.peak_output(2.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_rejected() {
        let _ = Fir::new(&[]);
    }

    #[test]
    fn lowpass_design_attenuates_high_frequency() {
        let taps = lowpass(0.1, 31);
        assert!((taps.iter().sum::<f64>() - 1.0).abs() < 1e-9, "unity DC");
        let mut f = Fir::new(&taps);
        // Drive with a high-frequency tone (0.4 cycles/sample) and a DC
        // component; measure steady-state outputs.
        let mut hf_energy = 0.0;
        let mut dc_out = 0.0;
        for i in 0..400 {
            let hf = (2.0 * std::f64::consts::PI * 0.4 * i as f64).sin();
            let y = f.push(hf + 1.0);
            if i > 100 {
                dc_out += y;
                hf_energy += (y - dc_out / (i - 100) as f64).powi(2);
            }
        }
        let mean = dc_out / 299.0;
        assert!((mean - 1.0).abs() < 0.02, "DC passed: {mean}");
        assert!(hf_energy / 299.0 < 0.01, "HF leaked: {}", hf_energy / 299.0);
    }

    #[test]
    fn lowpass_is_symmetric_linear_phase() {
        let taps = lowpass(0.2, 21);
        for i in 0..taps.len() / 2 {
            assert!(
                (taps[i] - taps[taps.len() - 1 - i]).abs() < 1e-12,
                "tap {i} asymmetric"
            );
        }
    }

    #[test]
    #[should_panic(expected = "outside (0, 0.5)")]
    fn lowpass_cutoff_validated() {
        let _ = lowpass(0.6, 11);
    }
}
