//! Numerically-controlled oscillator (phase accumulator).
//!
//! The "NCO" block of Fig. 5: a mod-1 phase accumulator decremented each
//! sample by the nominal step (1/sps) plus the loop-filter correction.
//! Underflow marks a symbol strobe; the residual phase, scaled by the
//! step, is the fractional interval `mu` handed to the interpolator.
//! The wrap discontinuity makes its error statistics the divergent case
//! of the paper's complex example (the `D` signal inside the NCO).

/// A decrementing mod-1 NCO producing strobes and fractional intervals.
///
/// # Example
///
/// ```
/// use fixref_dsp::Nco;
///
/// let mut nco = Nco::new(0.5); // 2 samples per symbol
/// let mut strobes = 0;
/// for _ in 0..100 {
///     if nco.step(0.0).is_some() {
///         strobes += 1;
///     }
/// }
/// assert_eq!(strobes, 50);
/// ```
#[derive(Debug, Clone)]
pub struct Nco {
    phase: f64,
    nominal: f64,
}

impl Nco {
    /// Creates an NCO with the given nominal step per sample
    /// (`1 / samples-per-symbol`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < nominal < 1`.
    pub fn new(nominal: f64) -> Self {
        assert!(
            nominal > 0.0 && nominal < 1.0,
            "nominal step {nominal} outside (0, 1)"
        );
        Nco {
            phase: 1.0 - f64::EPSILON,
            nominal,
        }
    }

    /// Advances one sample with loop correction `ctl`. Returns
    /// `Some(mu)` when the accumulator underflows (symbol strobe), with
    /// `mu ∈ [0, 1)` the fractional interpolation interval.
    pub fn step(&mut self, ctl: f64) -> Option<f64> {
        let step = (self.nominal + ctl).clamp(1e-6, 1.0 - 1e-6);
        self.phase -= step;
        if self.phase < 0.0 {
            let mu = (self.phase + step) / step;
            self.phase += 1.0;
            Some(mu.clamp(0.0, 1.0 - f64::EPSILON))
        } else {
            None
        }
    }

    /// The current phase in `[0, 1)`.
    pub fn phase(&self) -> f64 {
        self.phase
    }

    /// Resets the phase to just below 1 (immediately pre-strobe).
    pub fn reset(&mut self) {
        self.phase = 1.0 - f64::EPSILON;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strobe_rate_matches_nominal() {
        let mut nco = Nco::new(0.25); // 4 samples per symbol
        let strobes = (0..1000).filter(|_| nco.step(0.0).is_some()).count();
        assert_eq!(strobes, 250);
    }

    #[test]
    fn phase_stays_in_unit_interval() {
        let mut nco = Nco::new(0.5);
        for i in 0..1000 {
            let ctl = 0.05 * ((i as f64) * 0.3).sin();
            let _ = nco.step(ctl);
            assert!((0.0..1.0).contains(&nco.phase()), "phase {}", nco.phase());
        }
    }

    #[test]
    fn mu_is_fractional_and_consistent() {
        let mut nco = Nco::new(0.5);
        for _ in 0..200 {
            if let Some(mu) = nco.step(0.0) {
                assert!((0.0..1.0).contains(&mu), "mu {mu}");
            }
        }
    }

    #[test]
    fn positive_control_speeds_up_strobes() {
        let count = |ctl: f64| {
            let mut nco = Nco::new(0.5);
            (0..1000).filter(|_| nco.step(ctl).is_some()).count()
        };
        assert!(count(0.05) > count(0.0));
        assert!(count(-0.05) < count(0.0));
    }

    #[test]
    #[should_panic(expected = "outside (0, 1)")]
    fn nominal_validated() {
        let _ = Nco::new(1.5);
    }
}
