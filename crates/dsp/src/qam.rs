//! Complex-baseband QAM receiver blocks — the paper's production context
//! ("a cable modem ... signal processor"). The centerpiece is a complex
//! adaptive feed-forward equalizer (FFE): every complex signal expands to
//! a real/imaginary pair, every complex multiply to four real multiplies,
//! so the refinement flow faces a realistically sized dataflow with
//! adaptive (exploding) feedback on every coefficient.

use fixref_fixed::DType;
use fixref_sim::{Design, RegArray, Sig, SigArray, SignalId, SignalRef};

use crate::channel::Awgn;
use crate::slicer::pam_slice;
use crate::source::Lfsr;

/// A QPSK/QAM symbol source with unit-amplitude outer levels; symbols are
/// `(i, q)` pairs.
///
/// # Example
///
/// ```
/// use fixref_dsp::qam::QamSource;
///
/// let mut src = QamSource::qpsk(5);
/// let (i, q) = src.next_symbol();
/// assert!(i.abs() == 1.0 && q.abs() == 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct QamSource {
    lfsr: Lfsr,
    levels: u32,
}

impl QamSource {
    /// A QPSK source (±1 ± j).
    ///
    /// # Panics
    ///
    /// Panics if `seed` is zero.
    pub fn qpsk(seed: u32) -> Self {
        QamSource {
            lfsr: Lfsr::prbs15(seed),
            levels: 2,
        }
    }

    /// A square 16-QAM source (levels ±1/3, ±1 per axis).
    ///
    /// # Panics
    ///
    /// Panics if `seed` is zero.
    pub fn qam16(seed: u32) -> Self {
        QamSource {
            lfsr: Lfsr::prbs15(seed),
            levels: 4,
        }
    }

    fn axis(&mut self) -> f64 {
        let bits = self.levels.trailing_zeros();
        let mut v = 0u32;
        for _ in 0..bits {
            v = (v << 1) | self.lfsr.next_bit() as u32;
        }
        let m = self.levels as f64;
        (2.0 * v as f64 - (m - 1.0)) / (m - 1.0)
    }

    /// The next `(i, q)` symbol.
    pub fn next_symbol(&mut self) -> (f64, f64) {
        (self.axis(), self.axis())
    }

    /// PAM order per axis (2 for QPSK, 4 for 16-QAM).
    pub fn levels(&self) -> u32 {
        self.levels
    }
}

/// A static complex ISI channel (complex FIR) with AWGN per axis.
#[derive(Debug, Clone)]
pub struct ComplexChannel {
    taps: Vec<(f64, f64)>,
    state: Vec<(f64, f64)>,
    noise_i: Awgn,
    noise_q: Awgn,
}

impl ComplexChannel {
    /// Creates a channel from complex taps and a per-axis noise σ.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is empty or `sigma` is invalid.
    pub fn new(taps: &[(f64, f64)], seed: u64, sigma: f64) -> Self {
        assert!(!taps.is_empty(), "channel needs at least one tap");
        ComplexChannel {
            taps: taps.to_vec(),
            state: vec![(0.0, 0.0); taps.len()],
            noise_i: Awgn::new(seed, sigma),
            noise_q: Awgn::new(seed.wrapping_add(1), sigma),
        }
    }

    /// The canonical mild complex-ISI channel used by the case study:
    /// a unit main tap with small complex pre/postcursors.
    pub fn mild(seed: u64, sigma: f64) -> Self {
        ComplexChannel::new(&[(0.08, -0.04), (1.0, 0.0), (-0.07, 0.05)], seed, sigma)
    }

    /// Pushes one complex symbol, returning the received `(i, q)` sample.
    pub fn push(&mut self, s: (f64, f64)) -> (f64, f64) {
        self.state.rotate_right(1);
        self.state[0] = s;
        let mut i = 0.0;
        let mut q = 0.0;
        for ((tr, ti), (xr, xi)) in self.taps.iter().zip(&self.state) {
            i += tr * xr - ti * xi;
            q += tr * xi + ti * xr;
        }
        (self.noise_i.add(i), self.noise_q.add(q))
    }

    /// Worst-case output magnitude per axis for unit symbols.
    pub fn peak_output(&self) -> f64 {
        self.taps
            .iter()
            .map(|(r, i)| r.abs() + i.abs())
            .sum::<f64>()
    }
}

/// Configuration of the complex FFE models.
#[derive(Debug, Clone)]
pub struct FfeConfig {
    /// Number of complex taps.
    pub taps: usize,
    /// LMS step size.
    pub mu: f64,
    /// PAM order per axis for the decision slicer.
    pub levels: u32,
    /// Optional fixed-point type for the received `(i, q)` inputs.
    pub input_dtype: Option<DType>,
    /// Explicit input range annotation.
    pub input_range: Option<(f64, f64)>,
}

impl Default for FfeConfig {
    fn default() -> Self {
        FfeConfig {
            taps: 5,
            mu: 1.0 / 64.0,
            levels: 2,
            input_dtype: None,
            input_range: Some((-1.6, 1.6)),
        }
    }
}

/// Golden floating-point complex LMS FFE.
#[derive(Debug, Clone)]
pub struct QamFfeGolden {
    c: Vec<(f64, f64)>,
    d: Vec<(f64, f64)>,
    mu: f64,
    levels: u32,
}

impl QamFfeGolden {
    /// Creates the golden model with the center tap initialized to 1.
    pub fn new(config: &FfeConfig) -> Self {
        let mut g = QamFfeGolden {
            c: vec![(0.0, 0.0); config.taps],
            d: vec![(0.0, 0.0); config.taps],
            mu: config.mu,
            levels: config.levels,
        };
        g.reset();
        g
    }

    /// Resets state and re-seeds the center tap.
    pub fn reset(&mut self) {
        self.c.iter_mut().for_each(|c| *c = (0.0, 0.0));
        self.d.iter_mut().for_each(|d| *d = (0.0, 0.0));
        let center = self.c.len() / 2;
        self.c[center] = (1.0, 0.0);
    }

    /// One symbol step: returns `(out, decision)` complex pairs.
    ///
    /// The FIR consumes the delay line *before* this sample is shifted in
    /// (one symbol of pipeline latency), mirroring the register semantics
    /// of the instrumented model.
    pub fn step(&mut self, x: (f64, f64)) -> ((f64, f64), (f64, f64)) {
        let mut or_ = 0.0;
        let mut oi = 0.0;
        for ((cr, ci), (xr, xi)) in self.c.iter().zip(&self.d) {
            or_ += cr * xr - ci * xi;
            oi += cr * xi + ci * xr;
        }
        let dec = (pam_slice(or_, self.levels), pam_slice(oi, self.levels));
        let (er, ei) = (dec.0 - or_, dec.1 - oi);
        for (k, (cr, ci)) in self.c.iter_mut().enumerate() {
            let (xr, xi) = self.d[k];
            // c += mu * e * conj(x)
            *cr += self.mu * (er * xr + ei * xi);
            *ci += self.mu * (ei * xr - er * xi);
        }
        self.d.rotate_right(1);
        self.d[0] = x;
        ((or_, oi), dec)
    }

    /// The complex coefficients.
    pub fn coefficients(&self) -> &[(f64, f64)] {
        &self.c
    }
}

/// The instrumented complex FFE over a [`Design`]: `6·taps + 8`
/// monitored signals (38 at the default 5 taps).
#[derive(Debug, Clone)]
pub struct QamFfe {
    design: Design,
    config: FfeConfig,
    xr: Sig,
    xi: Sig,
    dr: RegArray,
    di: RegArray,
    cr: RegArray,
    ci: RegArray,
    vr: SigArray,
    vi: SigArray,
    er: Sig,
    ei: Sig,
    yr: Sig,
    yi: Sig,
}

impl QamFfe {
    /// Declares the equalizer's signals in `design`.
    ///
    /// # Panics
    ///
    /// Panics if names are taken or `config.taps == 0`.
    pub fn new(design: &Design, config: &FfeConfig) -> Self {
        assert!(config.taps > 0, "FFE needs at least one tap");
        let (xr, xi) = match &config.input_dtype {
            Some(t) => (
                design.sig_typed("xr", t.clone()),
                design.sig_typed("xi", t.clone()),
            ),
            None => (design.sig("xr"), design.sig("xi")),
        };
        if let Some((lo, hi)) = config.input_range {
            xr.range(lo, hi);
            xi.range(lo, hi);
        }
        let n = config.taps;
        QamFfe {
            design: design.clone(),
            config: config.clone(),
            xr,
            xi,
            dr: design.reg_array("dr", n),
            di: design.reg_array("di", n),
            cr: design.reg_array("cr", n),
            ci: design.reg_array("ci", n),
            vr: design.sig_array("vr", n + 1),
            vi: design.sig_array("vi", n + 1),
            er: design.sig("er"),
            ei: design.sig("ei"),
            yr: design.sig("yr"),
            yi: design.sig("yi"),
        }
    }

    /// Seeds the center tap (call after every `reset_state`).
    pub fn init(&self) {
        self.cr.at(self.config.taps / 2).set(1.0);
        self.design.tick();
    }

    /// One symbol step; returns `(out, decision)` floating-path pairs.
    pub fn step(&self, x: (f64, f64)) -> ((f64, f64), (f64, f64)) {
        let n = self.config.taps;
        let mu = self.config.mu;
        self.xr.set(x.0);
        self.xi.set(x.1);

        self.dr.at(0).set(self.xr.get());
        self.di.at(0).set(self.xi.get());
        for k in 1..n {
            self.dr.at(k).set(self.dr.at(k - 1).get());
            self.di.at(k).set(self.di.at(k - 1).get());
        }

        // Complex FIR as real partial sums (pre-tick delay line).
        self.vr.at(0).set(0.0);
        self.vi.at(0).set(0.0);
        for k in 0..n {
            let (cr, ci) = (self.cr.at(k).get(), self.ci.at(k).get());
            let (xr, xi) = (self.dr.at(k).get(), self.di.at(k).get());
            self.vr
                .at(k + 1)
                .set(self.vr.at(k).get() + cr.clone() * xr.clone() - ci.clone() * xi.clone());
            self.vi
                .at(k + 1)
                .set(self.vi.at(k).get() + cr * xi + ci * xr);
        }

        // Per-axis slicers (nearest level for the configured order).
        let levels = self.config.levels;
        self.yr
            .set(crate::slicer::pam_slice_value(self.vr.at(n).get(), levels));
        self.yi
            .set(crate::slicer::pam_slice_value(self.vi.at(n).get(), levels));

        // Error and LMS update c_k += mu * e * conj(x_k).
        self.er.set(self.yr.get() - self.vr.at(n).get());
        self.ei.set(self.yi.get() - self.vi.at(n).get());
        for k in 0..n {
            let (xr, xi) = (self.dr.at(k).get(), self.di.at(k).get());
            self.cr.at(k).set(
                self.cr.at(k).get()
                    + mu * (self.er.get() * xr.clone() + self.ei.get() * xi.clone()),
            );
            self.ci
                .at(k)
                .set(self.ci.at(k).get() + mu * (self.ei.get() * xr - self.er.get() * xi));
        }

        self.design.tick();
        (
            (self.vr.at(n).get().flt(), self.vi.at(n).get().flt()),
            (self.yr.get().flt(), self.yi.get().flt()),
        )
    }

    /// The owning design.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Handles to the input pair.
    pub fn inputs(&self) -> (&Sig, &Sig) {
        (&self.xr, &self.xi)
    }

    /// Handles to the equalized output pair (`vr[n]`, `vi[n]`).
    pub fn outputs(&self) -> (&Sig, &Sig) {
        (self.vr.at(self.config.taps), self.vi.at(self.config.taps))
    }

    /// Ids of every monitored signal.
    pub fn signal_ids(&self) -> Vec<SignalId> {
        let mut ids = vec![self.xr.id(), self.xi.id()];
        for arr in [&self.dr, &self.di, &self.cr, &self.ci] {
            ids.extend(arr.iter().map(|r| r.id()));
        }
        for arr in [&self.vr, &self.vi] {
            ids.extend(arr.iter().map(|s| s.id()));
        }
        ids.extend([self.er.id(), self.ei.id(), self.yr.id(), self.yi.id()]);
        ids
    }
}

/// The standard case-study stimulus: QPSK through the mild complex
/// channel at the given SNR, clamped to the input annotation.
pub fn qam_stimulus(seed: u64, snr_db: f64, len: usize) -> Vec<(f64, f64)> {
    let sigma = 10f64.powf(-snr_db / 20.0);
    let mut src = QamSource::qpsk(seed as u32 | 1);
    let mut ch = ComplexChannel::mild(seed, sigma);
    (0..len)
        .map(|_| {
            let (i, q) = ch.push(src.next_symbol());
            (i.clamp(-1.6, 1.6), q.clamp(-1.6, 1.6))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qpsk_symbols_are_corners() {
        let mut s = QamSource::qpsk(3);
        for _ in 0..100 {
            let (i, q) = s.next_symbol();
            assert!(i.abs() == 1.0 && q.abs() == 1.0);
        }
        assert_eq!(s.levels(), 2);
    }

    #[test]
    fn qam16_symbols_live_on_the_grid() {
        let mut s = QamSource::qam16(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let (i, q) = s.next_symbol();
            seen.insert(((i * 3.0).round() as i64, (q * 3.0).round() as i64));
        }
        assert_eq!(seen.len(), 16, "all 16 constellation points");
    }

    #[test]
    fn complex_channel_is_complex_convolution() {
        let mut ch = ComplexChannel::new(&[(0.0, 1.0)], 1, 0.0); // multiply by j
        let (i, q) = ch.push((1.0, 0.0));
        assert!((i - 0.0).abs() < 1e-12 && (q - 1.0).abs() < 1e-12);
        let (i, q) = ch.push((0.0, 1.0)); // j * j = -1
        assert!((i + 1.0).abs() < 1e-12 && (q - 0.0).abs() < 1e-12);
    }

    #[test]
    fn mild_channel_peak_within_input_annotation() {
        let ch = ComplexChannel::mild(1, 0.0);
        assert!(ch.peak_output() <= 1.6, "peak {}", ch.peak_output());
    }

    #[test]
    fn golden_ffe_opens_the_eye() {
        let mut g = QamFfeGolden::new(&FfeConfig::default());
        let xs = qam_stimulus(5, 26.0, 4000);
        let mut tail_err = 0.0;
        let mut count = 0;
        for (i, &x) in xs.iter().enumerate() {
            let ((or_, oi), (dr, di)) = g.step(x);
            if i > 2500 {
                tail_err += (or_ - dr).hypot(oi - di);
                count += 1;
            }
        }
        let mean = tail_err / count as f64;
        assert!(mean < 0.25, "residual error {mean}");
        // The center tap stays dominant.
        let c = g.coefficients();
        let center = c[c.len() / 2];
        assert!(center.0 > 0.8, "center tap {center:?}");
    }

    #[test]
    fn instrumented_matches_golden_when_floating() {
        let d = Design::new();
        let ffe = QamFfe::new(&d, &FfeConfig::default());
        ffe.init();
        let mut g = QamFfeGolden::new(&FfeConfig::default());
        for &x in &qam_stimulus(7, 26.0, 400) {
            let (go, gd) = g.step(x);
            let (io, id) = ffe.step(x);
            assert!((go.0 - io.0).abs() < 1e-12, "{go:?} vs {io:?}");
            assert!((go.1 - io.1).abs() < 1e-12);
            assert_eq!(gd, id);
        }
    }

    #[test]
    fn signal_count_is_six_taps_plus_eight() {
        let d = Design::new();
        let ffe = QamFfe::new(&d, &FfeConfig::default());
        assert_eq!(ffe.signal_ids().len(), 6 * 5 + 8);
        assert_eq!(d.num_signals(), 38);
    }

    #[test]
    fn coefficients_explode_range_propagation() {
        let d = Design::new();
        let ffe = QamFfe::new(&d, &FfeConfig::default());
        ffe.init();
        for &x in &qam_stimulus(9, 26.0, 1500) {
            ffe.step(x);
        }
        // Every adaptive coefficient is multiplicative feedback: its
        // propagated range must blow up while its observed range stays
        // small — the paper's explosion signature at scale.
        let mut exploded = 0;
        for k in 0..5 {
            for name in [format!("cr[{k}]"), format!("ci[{k}]")] {
                let r = d.report_by_id(d.find(&name).expect("declared"));
                if r.prop.is_exploded() || r.prop.max_abs() > 1e7 {
                    exploded += 1;
                }
                assert!(r.stat.interval().expect("observed").max_abs() < 2.0);
            }
        }
        assert!(exploded >= 8, "only {exploded}/10 coefficients exploded");
    }
}

#[cfg(test)]
mod qam16_tests {
    use super::*;

    /// 16-QAM decision-directed convergence from a center-tap start at
    /// high SNR: the residual error must shrink well below the level
    /// spacing (2/3).
    #[test]
    fn qam16_ffe_converges_at_high_snr() {
        let d = Design::new();
        let config = FfeConfig {
            levels: 4,
            mu: 1.0 / 128.0,
            ..FfeConfig::default()
        };
        let ffe = QamFfe::new(&d, &config);
        ffe.init();
        let sigma = 10f64.powf(-30.0 / 20.0) / 3.0;
        let mut src = QamSource::qam16(11);
        let mut ch = ComplexChannel::mild(11, sigma);
        let mut tail = 0.0;
        let mut count = 0;
        for i in 0..6000 {
            let x = ch.push(src.next_symbol());
            let ((or_, oi), (dr, di)) = ffe.step((x.0.clamp(-1.6, 1.6), x.1.clamp(-1.6, 1.6)));
            if i > 4000 {
                tail += (or_ - dr).hypot(oi - di);
                count += 1;
            }
        }
        let mean = tail / count as f64;
        assert!(mean < 0.15, "16-QAM residual {mean}");
    }

    /// The 16-QAM slicer's decision tree records in the signal-flow graph
    /// (three nested selects per axis).
    #[test]
    fn qam16_slicer_records_decision_tree() {
        let d = Design::new();
        let config = FfeConfig {
            levels: 4,
            ..FfeConfig::default()
        };
        let ffe = QamFfe::new(&d, &config);
        ffe.init();
        d.record_graph(true);
        let mut src = QamSource::qam16(13);
        let mut ch = ComplexChannel::mild(13, 0.01);
        for _ in 0..16 {
            let x = ch.push(src.next_symbol());
            ffe.step(x);
        }
        let g = d.graph();
        let yr = d.find("yr").expect("declared");
        let selects = g
            .iter()
            .filter(|(_, n)| matches!(n.op, fixref_sim::Op::Select))
            .count();
        assert!(selects >= 6, "two axes x three selects, got {selects}");
        assert!(!g.defs(yr).is_empty());
    }
}
