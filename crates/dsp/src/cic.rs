//! CIC (cascaded integrator-comb) decimator — Hogenauer's classic
//! multiplier-free filter, and the textbook showcase of two's-complement
//! **wrap-around** arithmetic: the integrators overflow constantly, yet
//! the output is exact as long as every stage carries
//! `B_in + N·log2(R·M)` bits, because modular arithmetic cancels the
//! wraps through the combs.
//!
//! That property is a closed-form ground truth for this workspace's wrap
//! quantizer: the instrumented model with Hogenauer-width wrap types must
//! match the unbounded golden model bit for bit (see the tests). It is
//! also an honest *limitation* demo for the refinement methodology —
//! statistic/propagated ranges cannot discover that wrap is safe here;
//! the designer's knowledge (this module's [`hogenauer_width`]) beats
//! both estimators.

use fixref_fixed::{DType, OverflowMode, RoundingMode, Signedness};
use fixref_sim::{Design, Reg, RegArray, Sig, SignalId, SignalRef};

/// The register width every CIC stage needs for exact wrap arithmetic:
/// `b_in + ceil(N · log2(R · M))`.
///
/// # Panics
///
/// Panics if any parameter is zero.
pub fn hogenauer_width(b_in: u32, stages: u32, decimation: u32, delay: u32) -> u32 {
    assert!(
        b_in > 0 && stages > 0 && decimation > 0 && delay > 0,
        "CIC parameters must be positive"
    );
    b_in + (stages as f64 * ((decimation * delay) as f64).log2()).ceil() as u32
}

/// Golden (unbounded `f64`) CIC decimator with `N` stages, decimation `R`
/// and differential delay `M`.
///
/// # Example
///
/// ```
/// use fixref_dsp::cic::CicGolden;
///
/// let mut cic = CicGolden::new(3, 8, 1);
/// let mut last = 0.0;
/// for _ in 0..200 {
///     if let Some(y) = cic.push(1.0) {
///         last = y;
///     }
/// }
/// // DC gain is (R*M)^N = 512.
/// assert_eq!(last, 512.0);
/// ```
#[derive(Debug, Clone)]
pub struct CicGolden {
    integrators: Vec<f64>,
    combs: Vec<Vec<f64>>,
    decimation: u32,
    phase: u32,
}

impl CicGolden {
    /// Creates the golden model.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(stages: u32, decimation: u32, delay: u32) -> Self {
        assert!(
            stages > 0 && decimation > 0 && delay > 0,
            "CIC parameters must be positive"
        );
        CicGolden {
            integrators: vec![0.0; stages as usize],
            combs: vec![vec![0.0; delay as usize]; stages as usize],
            decimation,
            phase: 0,
        }
    }

    /// Pushes one high-rate sample; returns the decimated output on every
    /// `R`-th call.
    pub fn push(&mut self, x: f64) -> Option<f64> {
        let mut v = x;
        for acc in &mut self.integrators {
            *acc += v;
            v = *acc;
        }
        self.phase += 1;
        if self.phase < self.decimation {
            return None;
        }
        self.phase = 0;
        for line in &mut self.combs {
            let delayed = line[line.len() - 1];
            line.rotate_right(1);
            line[0] = v;
            v -= delayed;
        }
        Some(v)
    }

    /// The filter's DC gain `(R·M)^N`.
    pub fn dc_gain(&self) -> f64 {
        ((self.decimation as usize * self.combs[0].len()) as f64)
            .powi(self.integrators.len() as i32)
    }
}

/// The instrumented CIC with Hogenauer-width wrap types on every stage.
///
/// Inputs are taken on the grid `2^-frac` with `b_in` total bits; every
/// internal register carries [`hogenauer_width`] bits at the same LSB, in
/// [`OverflowMode::Wrap`] — overflowing by design.
#[derive(Debug, Clone)]
pub struct CicDecimator {
    design: Design,
    stages: u32,
    decimation: u32,
    phase_ctr: u32,
    x: Sig,
    integ: RegArray,
    comb_delay: Vec<RegArray>,
    comb_out: Vec<Sig>,
    y: Reg,
}

impl CicDecimator {
    /// Declares the CIC's signals with Hogenauer-width wrap types.
    ///
    /// # Panics
    ///
    /// Panics if names are taken, parameters are zero, or the Hogenauer
    /// width exceeds 63 bits.
    pub fn new(
        design: &Design,
        stages: u32,
        decimation: u32,
        delay: u32,
        b_in: u32,
        frac: i32,
    ) -> Self {
        let w = hogenauer_width(b_in, stages, decimation, delay);
        let wide = DType::new(
            "cic_wide",
            w as i32,
            frac,
            Signedness::TwosComplement,
            OverflowMode::Wrap,
            RoundingMode::Floor,
        )
        .expect("Hogenauer width within 63 bits");
        let t_in = DType::new(
            "cic_in",
            b_in as i32,
            frac,
            Signedness::TwosComplement,
            OverflowMode::Saturate,
            RoundingMode::Round,
        )
        .expect("valid input type");

        let comb_delay = (0..stages)
            .map(|s| design.reg_array_typed(&format!("cic_cd{s}"), delay as usize, wide.clone()))
            .collect();
        let comb_out = (0..stages)
            .map(|s| design.sig_typed(&format!("cic_co{s}"), wide.clone()))
            .collect();
        CicDecimator {
            design: design.clone(),
            stages,
            decimation,
            phase_ctr: 0,
            x: design.sig_typed("cic_x", t_in),
            integ: design.reg_array_typed("cic_i", stages as usize, wide.clone()),
            comb_delay,
            comb_out,
            y: design.reg_typed("cic_y", wide),
        }
    }

    /// Pushes one high-rate sample (one clock tick); returns the
    /// fixed-path output on every `R`-th call.
    pub fn push(&mut self, x: f64) -> Option<f64> {
        self.x.set(x);
        // Integrator cascade: each reads its own pre-tick state.
        let mut v = self.x.get();
        for s in 0..self.stages as usize {
            self.integ.at(s).set(self.integ.at(s).get() + v.clone());
            v = self.integ.at(s).get() + v;
        }
        // NOTE: in hardware the cascade is pipelined; this behavioral
        // model computes the post-update value combinationally so the
        // output matches the golden model cycle-for-cycle.

        self.phase_ctr += 1;
        let strobe = self.phase_ctr == self.decimation;
        if strobe {
            self.phase_ctr = 0;
            for s in 0..self.stages as usize {
                let line = &self.comb_delay[s];
                let m = line.len();
                let delayed = line.at(m - 1).get();
                for k in (1..m).rev() {
                    line.at(k).set(line.at(k - 1).get());
                }
                line.at(0).set(v.clone());
                self.comb_out[s].set(v - delayed);
                v = self.comb_out[s].get();
            }
            self.y.set(v);
        }
        self.design.tick();
        if strobe {
            Some(self.design.peek(self.y.id()).1)
        } else {
            None
        }
    }

    /// The output register handle.
    pub fn output(&self) -> &Reg {
        &self.y
    }

    /// Ids of every CIC signal.
    pub fn signal_ids(&self) -> Vec<SignalId> {
        let mut ids = vec![self.x.id()];
        ids.extend(self.integ.iter().map(|r| r.id()));
        for line in &self.comb_delay {
            ids.extend(line.iter().map(|r| r.id()));
        }
        ids.extend(self.comb_out.iter().map(|s| s.id()));
        ids.push(self.y.id());
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_formula() {
        // Hogenauer's worked example: N=4, R=25, M=1, Bin=16 -> 35 bits.
        assert_eq!(hogenauer_width(16, 4, 25, 1), 35);
        assert_eq!(hogenauer_width(8, 3, 8, 1), 17);
        assert_eq!(hogenauer_width(8, 1, 2, 2), 10);
    }

    #[test]
    fn golden_dc_gain_and_decimation() {
        let mut cic = CicGolden::new(2, 4, 1);
        assert_eq!(cic.dc_gain(), 16.0);
        let mut outputs = Vec::new();
        for _ in 0..64 {
            if let Some(y) = cic.push(0.5) {
                outputs.push(y);
            }
        }
        assert_eq!(outputs.len(), 16); // one output per 4 inputs
        assert_eq!(*outputs.last().expect("non-empty"), 0.5 * 16.0);
    }

    #[test]
    fn golden_impulse_responses_sum_to_gain_across_phases() {
        // A decimator's single impulse response only collects every R-th
        // filter coefficient; summing over all R input phases recovers
        // the full DC gain (the polyphase identity).
        let r = 4u32;
        let mut total = 0.0;
        for phase in 0..r {
            let mut cic = CicGolden::new(3, r, 1);
            for i in 0..200 {
                let x = if i == phase { 1.0 } else { 0.0 };
                if let Some(y) = cic.push(x) {
                    total += y;
                }
            }
        }
        assert_eq!(total, CicGolden::new(3, r, 1).dc_gain());
    }

    /// The headline Hogenauer property: with wrap types at exactly the
    /// formula width, the instrumented fixed path matches the unbounded
    /// golden model exactly, even though the integrators overflow.
    #[test]
    fn wrap_arithmetic_is_exact_at_hogenauer_width() {
        let (stages, r, m, b_in, frac) = (3u32, 8u32, 1u32, 8u32, 6i32);
        let d = Design::new();
        let mut fixed = CicDecimator::new(&d, stages, r, m, b_in, frac);
        let mut golden = CicGolden::new(stages, r, m);

        let mut wrapped = 0u64;
        let q = 0.015625; // 2^-6: inputs on the type grid
        for i in 0..4000u32 {
            // Worst-case-ish stimulus: near-full-scale alternating bursts.
            let x = q * (((i.wrapping_mul(2654435761).wrapping_add(i) >> 7) % 128) as f64 - 64.0);
            let gf = golden.push(x);
            let ff = fixed.push(x);
            assert_eq!(gf.is_some(), ff.is_some(), "strobe alignment at {i}");
            if let (Some(g), Some(f)) = (gf, ff) {
                assert_eq!(f, g, "output diverged at sample {i}");
            }
            wrapped = d
                .reports()
                .iter()
                .filter(|rep| rep.name.starts_with("cic_i"))
                .map(|rep| rep.overflows)
                .sum();
        }
        assert!(
            wrapped > 100,
            "integrators must actually wrap to prove the point (got {wrapped})"
        );
    }

    /// One bit below the Hogenauer width, the same stimulus corrupts the
    /// output — the formula is tight.
    #[test]
    fn one_bit_short_corrupts_output() {
        let (stages, r, m, b_in, frac) = (3u32, 8u32, 1u32, 8u32, 6i32);
        let w = hogenauer_width(b_in, stages, r, m);
        let d = Design::new();
        // Rebuild the decimator but narrow every wide register by hand.
        let mut fixed = CicDecimator::new(&d, stages, r, m, b_in, frac);
        let narrow = DType::new(
            "narrow",
            w as i32 - 1,
            frac,
            Signedness::TwosComplement,
            OverflowMode::Wrap,
            RoundingMode::Floor,
        )
        .expect("valid");
        for id in fixed.signal_ids() {
            if d.name_of(id) != "cic_x" {
                d.set_dtype(id, Some(narrow.clone()));
            }
        }
        let mut golden = CicGolden::new(stages, r, m);
        // Worst case for range: sustained full-scale DC, which drives the
        // output to gain * max|x| — exactly what the formula's last bit
        // covers.
        let x = (127.0) * 0.015625;
        let mut mismatches = 0;
        for _ in 0..4000u32 {
            let gf = golden.push(x);
            let ff = fixed.push(x);
            if let (Some(g), Some(f)) = (gf, ff) {
                if f != g {
                    mismatches += 1;
                }
            }
        }
        assert!(mismatches > 0, "narrowed CIC should corrupt some outputs");
    }

    /// The same worst-case DC that breaks W−1 is exact at W: the formula
    /// is tight from both sides.
    #[test]
    fn full_scale_dc_exact_at_formula_width() {
        let d = Design::new();
        let mut fixed = CicDecimator::new(&d, 3, 8, 1, 8, 6);
        let mut golden = CicGolden::new(3, 8, 1);
        let x = 127.0 * 0.015625;
        for i in 0..2000u32 {
            let gf = golden.push(x);
            let ff = fixed.push(x);
            if let (Some(g), Some(f)) = (gf, ff) {
                assert_eq!(f, g, "sample {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_parameters_rejected() {
        let _ = hogenauer_width(8, 0, 4, 1);
    }
}
