//! The complex example (paper Fig. 5): a timing-recovery loop for PAM
//! signals — "in → Interpolator → out", steered by "Timing error detector
//! → Loop filter → NCO".
//!
//! The receiver runs at 2 samples per symbol. A root-raised-cosine-ish
//! receive filter (lowpass matched filter) conditions the input, a cubic
//! Farrow interpolator resamples at the NCO-controlled instants, a Gardner
//! TED measures the timing error on symbol strobes, and a PI loop filter
//! drives the NCO's phase decrement. The NCO phase register wraps mod 1 —
//! the divergent-error feedback signal of the paper's complex example
//! (its `D` signal "of which the error calculation was unstable").
//!
//! The instrumented model declares 61 monitored signals, matching the
//! count the paper reports for this design.

use fixref_fixed::DType;
use fixref_sim::{Design, Reg, RegArray, Sig, SigArray, SignalId, SignalRef, Value};

use crate::fir::lowpass;
use crate::interp::FarrowCubic;
use crate::loopfilter::PiFilter;
use crate::nco::Nco;
use crate::slicer::pam_slice;
use crate::ted::GardnerTed;

/// Configuration shared by the golden and instrumented loop models.
#[derive(Debug, Clone)]
pub struct TimingConfig {
    /// Proportional gain of the loop filter.
    pub kp: f64,
    /// Integral gain of the loop filter.
    pub ki: f64,
    /// Receive-filter tap count (lowpass matched filter).
    pub rx_taps: usize,
    /// Optional fixed-point type for the input signal.
    pub input_dtype: Option<DType>,
    /// Explicit input range annotation.
    pub input_range: Option<(f64, f64)>,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            kp: 0.05,
            ki: 0.002,
            rx_taps: 10,
            input_dtype: None,
            input_range: Some((-1.6, 1.6)),
        }
    }
}

/// One processed sample's outputs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimingStep {
    /// Symbol strobe fired this sample.
    pub strobe: bool,
    /// Interpolated symbol-instant sample (valid on strobe).
    pub symbol_sample: f64,
    /// Slicer decision (valid on strobe).
    pub decision: f64,
    /// Fractional interval handed to the interpolator (valid on strobe).
    pub mu: f64,
}

/// Golden floating-point timing-recovery loop.
#[derive(Debug, Clone)]
pub struct TimingGolden {
    rx: crate::fir::Fir,
    interp: FarrowCubic,
    prev_interp: FarrowCubic,
    ted: GardnerTed,
    lf: PiFilter,
    nco: Nco,
    ctl: f64,
    half_pending: f64,
}

impl TimingGolden {
    /// Creates the golden model.
    pub fn new(config: &TimingConfig) -> Self {
        TimingGolden {
            rx: crate::fir::Fir::new(&lowpass(0.42, config.rx_taps)),
            interp: FarrowCubic::new(),
            prev_interp: FarrowCubic::new(),
            ted: GardnerTed::new(),
            lf: PiFilter::new(config.kp, config.ki).with_clamp(-0.2, 0.2),
            nco: Nco::new(0.5),
            ctl: 0.0,
            half_pending: 0.0,
        }
    }

    /// Processes one input sample.
    pub fn step(&mut self, x: f64) -> TimingStep {
        let filtered = self.rx.push(x);
        self.prev_interp = self.interp.clone();
        self.interp.push(filtered);
        match self.nco.step(self.ctl) {
            Some(mu) => {
                let y_sym = self.interp.interpolate(mu);
                // Midway sample: same mu, delay line one sample older.
                let y_half = self.prev_interp.interpolate(mu);
                self.ted.push_half(y_half);
                let e = self.ted.push_symbol(y_sym);
                self.ctl = self.lf.push(e);
                self.half_pending = y_half;
                TimingStep {
                    strobe: true,
                    symbol_sample: y_sym,
                    decision: pam_slice(y_sym, 2),
                    mu,
                }
            }
            None => TimingStep::default(),
        }
    }

    /// The loop filter's current control output.
    pub fn control(&self) -> f64 {
        self.ctl
    }
}

/// The instrumented Fig. 5 loop over a [`Design`] — 61 monitored signals.
#[derive(Debug, Clone)]
pub struct TimingRecovery {
    design: Design,
    config: TimingConfig,
    rx_coeff: Vec<f64>,
    // Front-end receive filter.
    x: Sig,
    mfc: SigArray,
    mfd: RegArray,
    mfv: SigArray,
    mf: Sig,
    // Interpolator.
    xd: RegArray,
    fc: SigArray,
    h: SigArray,
    g: SigArray,
    mu: Sig,
    mum1: Sig,
    out: Sig,
    yhalf: Sig,
    // TED.
    ysym: Reg,
    yprev: Reg,
    yh: Reg,
    terr: Sig,
    // Loop filter.
    lp: Sig,
    li: Reg,
    lferr: Sig,
    // NCO.
    phase: Reg,
    step_s: Sig,
    ctr: Sig,
    // Output.
    y: Sig,
    serr: Sig,
}

impl TimingRecovery {
    /// Declares the loop's signals in `design`.
    ///
    /// # Panics
    ///
    /// Panics if the signal names are already taken.
    pub fn new(design: &Design, config: &TimingConfig) -> Self {
        let x = match &config.input_dtype {
            Some(t) => design.sig_typed("in", t.clone()),
            None => design.sig("in"),
        };
        if let Some((lo, hi)) = config.input_range {
            x.range(lo, hi);
        }
        let n = config.rx_taps;
        TimingRecovery {
            design: design.clone(),
            config: config.clone(),
            rx_coeff: lowpass(0.42, n),
            x,
            mfc: design.sig_array("mfc", n),
            mfd: design.reg_array("mfd", n),
            mfv: design.sig_array("mfv", n + 1),
            mf: design.sig("mf"),
            xd: design.reg_array("xd", 4),
            fc: design.sig_array("fc", 4),
            h: design.sig_array("h", 2),
            g: design.sig_array("g", 2),
            mu: design.sig("mu"),
            mum1: design.sig("mum1"),
            out: design.sig("out"),
            yhalf: design.sig("yhalf"),
            ysym: design.reg("ysym"),
            yprev: design.reg("yprev"),
            yh: design.reg("yh"),
            terr: design.sig("terr"),
            lp: design.sig("lp"),
            li: design.reg("li"),
            lferr: design.sig("lferr"),
            phase: design.reg("phase"),
            step_s: design.sig("step"),
            ctr: design.sig("ctr"),
            y: design.sig("y"),
            serr: design.sig("serr"),
        }
    }

    /// Loads constants (filter coefficients) and presets the NCO phase.
    /// Must be called after every `reset_state` of the design.
    pub fn init(&self) {
        for (i, &c) in self.rx_coeff.iter().enumerate() {
            self.mfc.at(i).set(c);
        }
        self.phase.set(1.0 - 1e-12);
        self.design.tick();
    }

    /// Processes one input sample (one clock tick).
    pub fn step(&self, input: f64) -> TimingStep {
        let d = &self.design;
        self.x.set(input);

        // Receive filter: delay line + partial sums.
        let n = self.mfd.len();
        self.mfd.at(0).set(self.x.get());
        for i in 1..n {
            self.mfd.at(i).set(self.mfd.at(i - 1).get());
        }
        self.mfv.at(0).set(0.0);
        for i in 1..=n {
            self.mfv.at(i).set(
                self.mfv.at(i - 1).get() + self.mfd.at(i - 1).get() * self.mfc.at(i - 1).get(),
            );
        }

        self.mf.set(self.mfv.at(n).get());

        // Interpolator delay line.
        self.xd.at(0).set(self.mf.get());
        for i in 1..4 {
            self.xd.at(i).set(self.xd.at(i - 1).get());
        }

        // NCO phase decrement; strobe on underflow (fixed-path decision).
        self.step_s
            .set(0.5 + self.lferr.get().max((-0.2).into()).min(0.2.into()));
        let ph_new = self.phase.get() - self.step_s.get();
        let strobe = ph_new.is_negative();
        self.ctr.set(if strobe { 1.0 } else { 0.0 });
        if strobe {
            self.phase.set(ph_new.clone() + 1.0);
            // mu = residual / step ≈ 2 * residual at a nominal step of 0.5
            // (hardware divider avoided, as in the real designs); clamped
            // because the approximation can slightly exceed [0, 1) when
            // the step deviates from 0.5.
            self.mu.set(
                ((ph_new + self.step_s.get()) * 2.0)
                    .min((1.0 - 1e-9).into())
                    .max(0.0.into()),
            );
            self.mum1.set(self.mu.get() - 1.0);
        } else {
            self.phase.set(ph_new);
        }

        let mut result = TimingStep::default();
        if strobe {
            // Farrow coefficients from the (pre-tick) interpolator line.
            let x0 = self.xd.at(0).get();
            let x1 = self.xd.at(1).get();
            let x2 = self.xd.at(2).get();
            let x3 = self.xd.at(3).get();
            self.fc.at(0).set(x2.clone());
            self.fc
                .at(1)
                .set(-(x3.clone() / 3.0) - x2.clone() / 2.0 + x1.clone() - x0.clone() / 6.0);
            self.fc
                .at(2)
                .set(x3.clone() / 2.0 - x2.clone() + x1.clone() / 2.0);
            self.fc
                .at(3)
                .set(-(x3 / 6.0) + x2 / 2.0 - x1 / 2.0 + x0 / 6.0);

            // Horner chains: symbol instant at mu, half instant at mu - 1.
            self.h
                .at(0)
                .set(self.fc.at(3).get() * self.mu.get() + self.fc.at(2).get());
            self.h
                .at(1)
                .set(self.h.at(0).get() * self.mu.get() + self.fc.at(1).get());
            self.out
                .set(self.h.at(1).get() * self.mu.get() + self.fc.at(0).get());

            self.g
                .at(0)
                .set(self.fc.at(3).get() * self.mum1.get() + self.fc.at(2).get());
            self.g
                .at(1)
                .set(self.g.at(0).get() * self.mum1.get() + self.fc.at(1).get());
            self.yhalf
                .set(self.g.at(1).get() * self.mum1.get() + self.fc.at(0).get());

            // Gardner TED on the strobes.
            self.yh.set(self.yhalf.get());
            self.yprev.set(self.ysym.get());
            self.ysym.set(self.out.get());
            // Gardner convention e = y_half * (y_now - y_prev): ysym is a
            // register, so its pre-tick read is the previous symbol.
            self.terr
                .set(self.yhalf.get() * (self.out.get() - self.ysym.get()));

            // PI loop filter. The integrator is deliberately unclamped
            // here: it is the classic accumulator whose range propagation
            // explodes, so the refinement flow must decide saturation for
            // it (the control path's `step` clamp keeps the loop dynamics
            // identical as long as |lferr| < 0.2, which holds in lock).
            self.lp.set(self.terr.get() * self.config.kp);
            self.li
                .set(self.li.get() + self.terr.get() * self.config.ki);
            self.lferr.set(self.lp.get() + self.li.get());

            // Slicer and slicer error.
            let y_val = self
                .out
                .get()
                .select_positive(Value::from(1.0), Value::from(-1.0));
            self.y.set(y_val);
            self.serr.set(self.out.get() - self.y.get());

            result = TimingStep {
                strobe: true,
                symbol_sample: self.out.get().flt(),
                decision: self.y.get().flt(),
                mu: self.mu.get().flt(),
            };
        }

        d.tick();
        result
    }

    /// The owning design.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Handle to the NCO phase register — the divergent feedback signal.
    pub fn phase(&self) -> &Reg {
        &self.phase
    }

    /// Handle to the interpolator output (the `out` of Fig. 5).
    pub fn out(&self) -> &Sig {
        &self.out
    }

    /// Handle to the decision output.
    pub fn y(&self) -> &Sig {
        &self.y
    }

    /// Handle to the loop filter output (`lferr` in Fig. 5).
    pub fn lferr(&self) -> &Sig {
        &self.lferr
    }

    /// Handle to the loop-filter integrator (a knowledge-based saturation
    /// candidate).
    pub fn integrator(&self) -> &Reg {
        &self.li
    }

    /// Ids of every monitored signal of the loop.
    pub fn signal_ids(&self) -> Vec<SignalId> {
        let mut ids = vec![self.x.id()];
        ids.extend(self.mfc.iter().map(|s| s.id()));
        ids.extend(self.mfd.iter().map(|r| r.id()));
        ids.extend(self.mfv.iter().map(|s| s.id()));
        ids.push(self.mf.id());
        ids.extend(self.xd.iter().map(|r| r.id()));
        ids.extend(self.fc.iter().map(|s| s.id()));
        ids.extend(self.h.iter().map(|s| s.id()));
        ids.extend(self.g.iter().map(|s| s.id()));
        ids.extend([
            self.mu.id(),
            self.mum1.id(),
            self.out.id(),
            self.yhalf.id(),
            self.ysym.id(),
            self.yprev.id(),
            self.yh.id(),
            self.terr.id(),
            self.lp.id(),
            self.li.id(),
            self.lferr.id(),
            self.phase.id(),
            self.step_s.id(),
            self.ctr.id(),
            self.y.id(),
            self.serr.id(),
        ]);
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ShapedPamSource;

    #[test]
    fn golden_loop_acquires_timing() {
        let mut src = ShapedPamSource::new(21, 0.35, 2, 0.3, 0.0);
        let mut rx = TimingGolden::new(&TimingConfig::default());
        let mut decisions = Vec::new();
        let mut mus = Vec::new();
        for _ in 0..6000 {
            let s = rx.step(src.next_sample());
            if s.strobe {
                decisions.push((s.symbol_sample, s.decision));
                mus.push(s.mu);
            }
        }
        assert!(decisions.len() > 2500, "strobes: {}", decisions.len());
        // After acquisition the eye is open: |symbol_sample| near 1.
        let tail = &decisions[decisions.len() - 500..];
        let mean_eye: f64 = tail.iter().map(|(s, _)| s.abs()).sum::<f64>() / tail.len() as f64;
        assert!(mean_eye > 0.8, "eye {mean_eye}");
        // mu settles: circular standard deviation (mu wraps at 1) small.
        let mu_tail = &mus[mus.len() - 500..];
        let (s_sum, c_sum) = mu_tail.iter().fold((0.0f64, 0.0f64), |(s, c), m| {
            let a = 2.0 * std::f64::consts::PI * m;
            (s + a.sin(), c + a.cos())
        });
        let r = (s_sum * s_sum + c_sum * c_sum).sqrt() / mu_tail.len() as f64;
        let circ_std = (-2.0 * r.ln()).sqrt() / (2.0 * std::f64::consts::PI);
        assert!(circ_std < 0.1, "mu circular jitter {circ_std}");
    }

    #[test]
    fn golden_loop_tracks_clock_offset() {
        // 200 ppm clock offset: the integrator must pick it up.
        let mut src = ShapedPamSource::new(23, 0.35, 2, 0.1, 200.0);
        let mut rx = TimingGolden::new(&TimingConfig::default());
        let mut eye_tail = Vec::new();
        for i in 0..12000 {
            let s = rx.step(src.next_sample());
            if s.strobe && i > 9000 {
                eye_tail.push(s.symbol_sample.abs());
            }
        }
        let mean_eye: f64 = eye_tail.iter().sum::<f64>() / eye_tail.len() as f64;
        assert!(mean_eye > 0.75, "eye under clock offset {mean_eye}");
    }

    #[test]
    fn instrumented_declares_61_signals() {
        let d = Design::new();
        let rx = TimingRecovery::new(&d, &TimingConfig::default());
        assert_eq!(rx.signal_ids().len(), 61, "paper reports 61 signals");
        assert_eq!(d.num_signals(), 61);
    }

    #[test]
    fn instrumented_loop_acquires_like_golden() {
        let d = Design::new();
        let rx = TimingRecovery::new(&d, &TimingConfig::default());
        rx.init();
        let mut src = ShapedPamSource::new(21, 0.35, 2, 0.3, 0.0);
        let mut eye_tail = Vec::new();
        for i in 0..6000 {
            let s = rx.step(src.next_sample());
            if s.strobe && i > 4500 {
                eye_tail.push(s.symbol_sample.abs());
            }
        }
        assert!(!eye_tail.is_empty());
        let mean_eye: f64 = eye_tail.iter().sum::<f64>() / eye_tail.len() as f64;
        assert!(mean_eye > 0.8, "instrumented eye {mean_eye}");
        // Strobe rate is half the sample rate.
        let strobes = d.report_for(rx.y()).writes;
        assert!((2600..=3400).contains(&strobes), "strobes {strobes}");
    }

    #[test]
    fn phase_stays_in_unit_interval_and_decisions_are_binary() {
        let d = Design::new();
        let rx = TimingRecovery::new(&d, &TimingConfig::default());
        rx.init();
        let mut src = ShapedPamSource::new(29, 0.35, 2, 0.2, 0.0);
        for _ in 0..2000 {
            let s = rx.step(src.next_sample());
            let (ph, _) = d.peek(rx.phase().id());
            assert!((0.0..=1.0 + 1e-9).contains(&ph), "phase {ph}");
            if s.strobe {
                assert!(s.decision == 1.0 || s.decision == -1.0);
                assert!((0.0..1.0).contains(&s.mu), "mu {}", s.mu);
            }
        }
    }
}
