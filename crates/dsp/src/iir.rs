//! Golden floating-point biquad IIR section.
//!
//! Recursive filters are the classic source of fixed-point trouble (limit
//! cycles, pole sensitivity); the `iir_refinement` example runs this block
//! through the refinement flow.

/// A direct-form-I biquad: `y = b0·x + b1·x1 + b2·x2 − a1·y1 − a2·y2`.
///
/// # Example
///
/// ```
/// use fixref_dsp::Biquad;
///
/// let mut f = Biquad::lowpass(0.1, 0.707);
/// let step: Vec<f64> = (0..200).map(|_| f.push(1.0)).collect();
/// assert!((step.last().copied().expect("non-empty") - 1.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Biquad {
    /// Numerator coefficients.
    pub b: [f64; 3],
    /// Denominator coefficients (a0 normalized to 1).
    pub a: [f64; 2],
    x: [f64; 2],
    y: [f64; 2],
}

impl Biquad {
    /// Creates a biquad from explicit coefficients (a0 = 1 implied).
    pub fn new(b: [f64; 3], a: [f64; 2]) -> Self {
        Biquad {
            b,
            a,
            x: [0.0; 2],
            y: [0.0; 2],
        }
    }

    /// RBJ-cookbook lowpass with normalized cutoff `fc` (fraction of the
    /// sample rate) and quality factor `q`.
    ///
    /// # Panics
    ///
    /// Panics if `fc` is outside `(0, 0.5)` or `q` is not positive.
    pub fn lowpass(fc: f64, q: f64) -> Self {
        assert!(fc > 0.0 && fc < 0.5, "cutoff {fc} outside (0, 0.5)");
        assert!(q > 0.0, "q must be positive");
        let w0 = 2.0 * std::f64::consts::PI * fc;
        let alpha = w0.sin() / (2.0 * q);
        let cosw = w0.cos();
        let a0 = 1.0 + alpha;
        Biquad::new(
            [
                (1.0 - cosw) / 2.0 / a0,
                (1.0 - cosw) / a0,
                (1.0 - cosw) / 2.0 / a0,
            ],
            [-2.0 * cosw / a0, (1.0 - alpha) / a0],
        )
    }

    /// Pushes one sample.
    pub fn push(&mut self, xin: f64) -> f64 {
        let y = self.b[0] * xin + self.b[1] * self.x[0] + self.b[2] * self.x[1]
            - self.a[0] * self.y[0]
            - self.a[1] * self.y[1];
        self.x = [xin, self.x[0]];
        self.y = [y, self.y[0]];
        y
    }

    /// Clears the state.
    pub fn reset(&mut self) {
        self.x = [0.0; 2];
        self.y = [0.0; 2];
    }

    /// Whether the poles are inside the unit circle.
    pub fn is_stable(&self) -> bool {
        // Jury criterion for z^2 + a1 z + a2.
        let (a1, a2) = (self.a[0], self.a[1]);
        a2 < 1.0 && a2 > -1.0 && a1.abs() < 1.0 + a2
    }

    /// DC gain.
    pub fn dc_gain(&self) -> f64 {
        (self.b[0] + self.b[1] + self.b[2]) / (1.0 + self.a[0] + self.a[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowpass_is_stable_with_unity_dc() {
        let f = Biquad::lowpass(0.1, 0.707);
        assert!(f.is_stable());
        assert!((f.dc_gain() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unstable_coefficients_detected() {
        let f = Biquad::new([1.0, 0.0, 0.0], [0.0, 1.01]);
        assert!(!f.is_stable());
        let g = Biquad::new([1.0, 0.0, 0.0], [-2.05, 1.05]);
        assert!(!g.is_stable());
    }

    #[test]
    fn step_response_settles_to_dc_gain() {
        let mut f = Biquad::lowpass(0.05, 1.0);
        let mut last = 0.0;
        for _ in 0..500 {
            last = f.push(1.0);
        }
        assert!((last - f.dc_gain()).abs() < 1e-6);
    }

    #[test]
    fn attenuates_above_cutoff() {
        let mut f = Biquad::lowpass(0.05, 0.707);
        let mut in_e = 0.0;
        let mut out_e = 0.0;
        for i in 0..2000 {
            let x = (2.0 * std::f64::consts::PI * 0.3 * i as f64).sin();
            let y = f.push(x);
            if i > 200 {
                in_e += x * x;
                out_e += y * y;
            }
        }
        assert!(out_e / in_e < 1e-3, "attenuation {}", out_e / in_e);
    }

    #[test]
    fn reset_clears_state() {
        let mut f = Biquad::lowpass(0.1, 0.707);
        for _ in 0..10 {
            f.push(1.0);
        }
        f.reset();
        let y = f.push(0.0);
        assert_eq!(y, 0.0);
    }

    #[test]
    #[should_panic(expected = "q must be positive")]
    fn q_validated() {
        let _ = Biquad::lowpass(0.1, 0.0);
    }
}
