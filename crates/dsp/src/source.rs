//! Stimulus sources: PRBS, PAM symbols and pulse-shaped PAM waveforms.

/// A Fibonacci linear-feedback shift register producing a maximal-length
/// pseudo-random binary sequence (PRBS).
///
/// The default is PRBS-15 (`x^15 + x^14 + 1`), a classic test sequence for
/// digital transmission equipment.
///
/// # Example
///
/// ```
/// use fixref_dsp::Lfsr;
///
/// let mut lfsr = Lfsr::prbs15(1);
/// let bits: Vec<bool> = (0..8).map(|_| lfsr.next_bit()).collect();
/// assert_eq!(bits.len(), 8);
/// // Deterministic per seed.
/// let mut again = Lfsr::prbs15(1);
/// assert!(bits.iter().all(|&b| b == again.next_bit()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    state: u32,
    taps: u32,
    len: u32,
}

impl Lfsr {
    /// A PRBS-15 generator (`x^15 + x^14 + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `seed` is zero (the LFSR would lock up).
    pub fn prbs15(seed: u32) -> Self {
        Lfsr::new(seed, (1 << 14) | (1 << 13), 15)
    }

    /// A PRBS-7 generator (`x^7 + x^6 + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `seed` is zero.
    pub fn prbs7(seed: u32) -> Self {
        Lfsr::new(seed, (1 << 6) | (1 << 5), 7)
    }

    /// A generator with explicit tap mask and register length.
    ///
    /// # Panics
    ///
    /// Panics if `seed` is zero after masking to `len` bits, or `len` is
    /// not in `2..=31`.
    pub fn new(seed: u32, taps: u32, len: u32) -> Self {
        assert!((2..=31).contains(&len), "unsupported LFSR length {len}");
        let state = seed & ((1 << len) - 1);
        assert!(state != 0, "LFSR seed must be nonzero");
        Lfsr { state, taps, len }
    }

    /// Produces the next bit.
    pub fn next_bit(&mut self) -> bool {
        let fb = (self.state & self.taps).count_ones() & 1;
        self.state = ((self.state << 1) | fb) & ((1 << self.len) - 1);
        fb == 1
    }

    /// The sequence period of a maximal-length configuration: `2^len - 1`.
    pub fn period(&self) -> u64 {
        (1u64 << self.len) - 1
    }
}

/// A PRBS-driven M-PAM symbol source with unit outer levels
/// (2-PAM: ±1; 4-PAM: ±1/3, ±1).
///
/// # Example
///
/// ```
/// use fixref_dsp::PamSource;
///
/// let mut src = PamSource::bpsk(7);
/// let s = src.next_symbol();
/// assert!(s == 1.0 || s == -1.0);
/// ```
#[derive(Debug, Clone)]
pub struct PamSource {
    lfsr: Lfsr,
    levels: u32,
}

impl PamSource {
    /// A 2-PAM (±1) source.
    ///
    /// # Panics
    ///
    /// Panics if `seed` is zero.
    pub fn bpsk(seed: u32) -> Self {
        PamSource {
            lfsr: Lfsr::prbs15(seed),
            levels: 2,
        }
    }

    /// An M-PAM source; `levels` must be a power of two in `2..=16`.
    ///
    /// # Panics
    ///
    /// Panics on invalid `levels` or zero `seed`.
    pub fn new(seed: u32, levels: u32) -> Self {
        assert!(
            levels.is_power_of_two() && (2..=16).contains(&levels),
            "unsupported PAM order {levels}"
        );
        PamSource {
            lfsr: Lfsr::prbs15(seed),
            levels,
        }
    }

    /// Produces the next symbol in `[-1, 1]`.
    pub fn next_symbol(&mut self) -> f64 {
        let bits = self.levels.trailing_zeros();
        let mut v = 0u32;
        for _ in 0..bits {
            v = (v << 1) | self.lfsr.next_bit() as u32;
        }
        // Gray-free linear mapping to levels -(M-1), ..., (M-1), scaled.
        let m = self.levels as f64;
        (2.0 * v as f64 - (m - 1.0)) / (m - 1.0)
    }
}

/// The raised-cosine pulse `g(t)` with roll-off `beta`, unit symbol time.
///
/// Handles both removable singularities (`t = 0` and
/// `t = ±1/(2·beta)`).
pub fn raised_cosine(t: f64, beta: f64) -> f64 {
    let sinc = |x: f64| {
        if x.abs() < 1e-12 {
            1.0
        } else {
            (std::f64::consts::PI * x).sin() / (std::f64::consts::PI * x)
        }
    };
    if beta > 0.0 {
        let denom = 1.0 - (2.0 * beta * t) * (2.0 * beta * t);
        if denom.abs() < 1e-9 {
            // limit at t = ±1/(2 beta)
            return std::f64::consts::FRAC_PI_4 * sinc(1.0 / (2.0 * beta));
        }
        sinc(t) * (std::f64::consts::PI * beta * t).cos() / denom
    } else {
        sinc(t)
    }
}

/// A pulse-shaped PAM waveform source: PRBS symbols through a
/// raised-cosine pulse, sampled at `sps` samples per symbol with a static
/// timing offset `tau` (fractions of a symbol) and an optional small
/// clock-frequency offset `ppm`.
///
/// This is the synthetic stand-in for the paper's cable-modem front-end
/// input: the timing-recovery loop of Fig. 5 must estimate and track
/// `tau`.
///
/// # Example
///
/// ```
/// use fixref_dsp::ShapedPamSource;
///
/// let mut src = ShapedPamSource::new(3, 0.35, 2, 0.25, 0.0);
/// let samples: Vec<f64> = (0..64).map(|_| src.next_sample()).collect();
/// assert!(samples.iter().all(|s| s.abs() < 1.8));
/// ```
#[derive(Debug, Clone)]
pub struct ShapedPamSource {
    source: PamSource,
    symbols: Vec<f64>,
    beta: f64,
    sps: u32,
    tau: f64,
    ppm: f64,
    sample_index: u64,
    span: i64,
}

impl ShapedPamSource {
    /// Creates a source with roll-off `beta`, `sps` samples per symbol,
    /// timing offset `tau` (in symbols) and clock offset `ppm` (parts per
    /// million of the symbol rate).
    ///
    /// # Panics
    ///
    /// Panics if `beta` is outside `[0, 1]`, `sps == 0`, or `seed == 0`.
    pub fn new(seed: u32, beta: f64, sps: u32, tau: f64, ppm: f64) -> Self {
        assert!((0.0..=1.0).contains(&beta), "roll-off {beta} outside [0,1]");
        assert!(sps >= 1, "need at least one sample per symbol");
        ShapedPamSource {
            source: PamSource::bpsk(seed),
            symbols: Vec::new(),
            beta,
            sps,
            tau,
            ppm,
            sample_index: 0,
            span: 8,
        }
    }

    /// The transmitted symbol at index `k` (generating it on demand).
    pub fn symbol(&mut self, k: usize) -> f64 {
        while self.symbols.len() <= k {
            let s = self.source.next_symbol();
            self.symbols.push(s);
        }
        self.symbols[k]
    }

    /// Produces the next received sample
    /// `x(n) = Σ_k a_k · g(n/sps − k − τ − ppm·drift)`.
    pub fn next_sample(&mut self) -> f64 {
        let n = self.sample_index as f64;
        self.sample_index += 1;
        let drift = self.ppm * 1e-6 * n / self.sps as f64;
        let t = n / self.sps as f64 - self.tau - drift;
        let center = t.floor() as i64;
        let mut acc = 0.0;
        for k in (center - self.span)..=(center + self.span) {
            if k < 0 {
                continue;
            }
            let a = self.symbol(k as usize);
            acc += a * raised_cosine(t - k as f64, self.beta);
        }
        acc
    }

    /// Samples per symbol.
    pub fn sps(&self) -> u32 {
        self.sps
    }

    /// The static timing offset.
    pub fn tau(&self) -> f64 {
        self.tau
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr_is_maximal_length() {
        let mut l = Lfsr::prbs7(1);
        let mut seen = std::collections::HashSet::new();
        let mut state_bits = Vec::new();
        for _ in 0..l.period() {
            state_bits.push(l.next_bit());
            seen.insert(l.state);
        }
        // All 127 nonzero states visited exactly once.
        assert_eq!(seen.len(), 127);
        assert_eq!(l.period(), 127);
    }

    #[test]
    fn lfsr_balanced_ones_zeros() {
        let mut l = Lfsr::prbs15(0x1234);
        let n = l.period();
        let ones: u64 = (0..n).map(|_| l.next_bit() as u64).sum();
        // A maximal-length sequence has exactly 2^(len-1) ones.
        assert_eq!(ones, 1 << 14);
    }

    #[test]
    #[should_panic(expected = "seed must be nonzero")]
    fn lfsr_zero_seed_rejected() {
        let _ = Lfsr::prbs15(0);
    }

    #[test]
    #[should_panic(expected = "unsupported LFSR length")]
    fn lfsr_bad_length_rejected() {
        let _ = Lfsr::new(1, 0b11, 1);
    }

    #[test]
    fn bpsk_levels_and_balance() {
        let mut s = PamSource::bpsk(99);
        let n = 10000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = s.next_symbol();
            assert!(v == 1.0 || v == -1.0);
            sum += v;
        }
        assert!(sum.abs() / (n as f64) < 0.05, "imbalanced: {sum}");
    }

    #[test]
    fn pam4_levels() {
        let mut s = PamSource::new(5, 4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let v = s.next_symbol();
            seen.insert((v * 3.0).round() as i64);
        }
        assert_eq!(seen, [-3i64, -1, 1, 3].into_iter().collect());
    }

    #[test]
    #[should_panic(expected = "unsupported PAM order")]
    fn pam_order_validated() {
        let _ = PamSource::new(1, 3);
    }

    #[test]
    fn raised_cosine_properties() {
        // Nyquist criterion: zero at nonzero integers, 1 at 0.
        assert!((raised_cosine(0.0, 0.35) - 1.0).abs() < 1e-12);
        for k in 1..6 {
            assert!(raised_cosine(k as f64, 0.35).abs() < 1e-9, "g({k}) != 0");
        }
        // Singularity point t = 1/(2 beta) is finite and continuous.
        let beta = 0.5;
        let ts = 1.0 / (2.0 * beta);
        let at = raised_cosine(ts, beta);
        let near = raised_cosine(ts + 1e-7, beta);
        assert!(at.is_finite());
        assert!((at - near).abs() < 1e-4);
        // beta = 0 degenerates to sinc.
        assert!((raised_cosine(0.5, 0.0) - 2.0 / std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn shaped_source_hits_symbols_at_zero_offset() {
        // With tau = 0 and sps = 2, even samples sit exactly on symbol
        // centers where the RC pulse is ISI-free.
        let mut src = ShapedPamSource::new(11, 0.35, 2, 0.0, 0.0);
        let samples: Vec<f64> = (0..200).map(|_| src.next_sample()).collect();
        for (k, chunk) in samples.chunks(2).enumerate().skip(8) {
            let a = src.symbol(k);
            assert!(
                (chunk[0] - a).abs() < 1e-6,
                "sample {k}: {} vs symbol {a}",
                chunk[0]
            );
        }
    }

    #[test]
    fn shaped_source_bounded_amplitude() {
        let mut src = ShapedPamSource::new(13, 0.35, 2, 0.3, 50.0);
        for _ in 0..2000 {
            let s = src.next_sample();
            assert!(s.abs() < 1.8, "excursion {s}");
        }
    }

    #[test]
    fn timing_offset_shifts_waveform() {
        let take = |tau: f64| {
            let mut s = ShapedPamSource::new(17, 0.35, 2, tau, 0.0);
            (0..100).map(|_| s.next_sample()).collect::<Vec<_>>()
        };
        let a = take(0.0);
        let b = take(0.5);
        // A half-symbol offset at 2 samples/symbol shifts by one sample.
        for i in 20..80 {
            assert!((a[i] - b[i + 1]).abs() < 1e-9);
        }
    }
}
