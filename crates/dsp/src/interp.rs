//! Cubic Farrow interpolator.
//!
//! The interpolator of the Fig. 5 timing-recovery loop: given samples on
//! the fixed receive clock and the NCO's fractional interval `mu`, it
//! reconstructs the signal value `mu` of a sample period past the
//! second-newest sample, using the 4-point cubic Lagrange polynomial in
//! Farrow (Horner-in-`mu`) form.

/// A 4-tap cubic Lagrange interpolator in Farrow structure.
///
/// # Example
///
/// ```
/// use fixref_dsp::FarrowCubic;
///
/// let mut f = FarrowCubic::new();
/// // Feed a straight line; interpolation must be exact for cubics.
/// for x in [0.0, 1.0, 2.0, 3.0] {
///     f.push(x);
/// }
/// // Delay line holds [3,2,1,0]; basepoint is x[n-2] = 1, mu=0.5 -> 1.5.
/// assert!((f.interpolate(0.5) - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FarrowCubic {
    /// Delay line, newest first: `x[n], x[n-1], x[n-2], x[n-3]`.
    d: [f64; 4],
}

impl FarrowCubic {
    /// Creates an interpolator with a zeroed delay line.
    pub fn new() -> Self {
        FarrowCubic::default()
    }

    /// Shifts one sample into the delay line.
    pub fn push(&mut self, x: f64) {
        self.d = [x, self.d[0], self.d[1], self.d[2]];
    }

    /// The current delay line, newest first.
    pub fn state(&self) -> [f64; 4] {
        self.d
    }

    /// The Farrow polynomial coefficients `(c0, c1, c2, c3)` of the
    /// current delay line: `y(mu) = ((c3·mu + c2)·mu + c1)·mu + c0`,
    /// with basepoint `x[n-2]` (so `y(0) = x[n-2]`, `y(1) = x[n-1]`).
    pub fn coefficients(&self) -> (f64, f64, f64, f64) {
        let [x0, x1, x2, x3] = self.d; // x0 newest
                                       // Cubic Lagrange on points at t = -1 (x3), 0 (x2), 1 (x1), 2 (x0),
                                       // evaluated at t = mu in [0, 1).
        let c0 = x2;
        let c1 = -x3 / 3.0 - x2 / 2.0 + x1 - x0 / 6.0;
        let c2 = x3 / 2.0 - x2 + x1 / 2.0;
        let c3 = -x3 / 6.0 + x2 / 2.0 - x1 / 2.0 + x0 / 6.0;
        (c0, c1, c2, c3)
    }

    /// Evaluates the interpolant at fractional interval `mu ∈ [0, 1)`.
    pub fn interpolate(&self, mu: f64) -> f64 {
        let (c0, c1, c2, c3) = self.coefficients();
        ((c3 * mu + c2) * mu + c1) * mu + c0
    }

    /// Clears the delay line.
    pub fn reset(&mut self) {
        self.d = [0.0; 4];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded(samples: [f64; 4]) -> FarrowCubic {
        let mut f = FarrowCubic::new();
        for &s in &samples {
            f.push(s);
        }
        f
    }

    #[test]
    fn reproduces_sample_points() {
        let f = loaded([0.3, -0.7, 1.2, 0.4]); // newest last pushed = 0.4
                                               // state: [0.4, 1.2, -0.7, 0.3]; y(0) = x[n-2] = -0.7, y(1) = 1.2.
        assert!((f.interpolate(0.0) - (-0.7)).abs() < 1e-12);
        assert!((f.interpolate(1.0) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn exact_on_cubics() {
        // Any cubic polynomial is reconstructed exactly.
        let p = |t: f64| 0.3 * t * t * t - 1.1 * t * t + 0.7 * t - 0.25;
        let mut f = FarrowCubic::new();
        for t in [-1.0, 0.0, 1.0, 2.0] {
            f.push(p(t)); // pushed oldest-time first
        }
        // After pushes the newest (d[0]) is p(2), d[3] = p(-1): matches the
        // coefficient convention.
        for mu in [0.0, 0.1, 0.25, 0.5, 0.75, 0.99] {
            assert!(
                (f.interpolate(mu) - p(mu)).abs() < 1e-12,
                "mu={mu}: {} vs {}",
                f.interpolate(mu),
                p(mu)
            );
        }
    }

    #[test]
    fn sine_interpolation_error_small() {
        // On a well-oversampled sine, cubic interpolation error is tiny.
        let omega = 2.0 * std::f64::consts::PI * 0.05;
        let mut f = FarrowCubic::new();
        let mut worst = 0.0f64;
        for n in 0..200 {
            f.push((omega * n as f64).sin());
            if n >= 4 {
                for mu in [0.25, 0.5, 0.75] {
                    let t = (n as f64 - 2.0) + mu;
                    let err = (f.interpolate(mu) - (omega * t).sin()).abs();
                    worst = worst.max(err);
                }
            }
        }
        assert!(worst < 1e-3, "worst interpolation error {worst}");
    }

    #[test]
    fn reset_zeroes() {
        let mut f = loaded([1.0, 2.0, 3.0, 4.0]);
        f.reset();
        assert_eq!(f.state(), [0.0; 4]);
        assert_eq!(f.interpolate(0.5), 0.0);
    }
}
