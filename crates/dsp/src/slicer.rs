//! Decision slicers.

/// Slices a sample to the nearest M-PAM level (unit outer levels, as
/// produced by [`crate::PamSource`]).
///
/// For 2-PAM this is the paper's `y = w > 0 ? 1 : -1` slicer, with the
/// tie at exactly zero resolved to −1 (matching `w > 0`).
///
/// # Panics
///
/// Panics unless `levels` is a power of two in `2..=16`.
///
/// # Example
///
/// ```
/// use fixref_dsp::pam_slice;
///
/// assert_eq!(pam_slice(0.3, 2), 1.0);
/// assert_eq!(pam_slice(-0.01, 2), -1.0);
/// assert_eq!(pam_slice(0.3, 4), 1.0 / 3.0);
/// ```
pub fn pam_slice(x: f64, levels: u32) -> f64 {
    assert!(
        levels.is_power_of_two() && (2..=16).contains(&levels),
        "unsupported PAM order {levels}"
    );
    if levels == 2 {
        return if x > 0.0 { 1.0 } else { -1.0 };
    }
    let m = levels as f64;
    // Levels are (2i - (M-1)) / (M-1), i = 0..M-1. Exact midpoints break
    // downward, consistent with the strict `w > 0` of the 2-PAM slicer
    // (and with the fixed-steered select tree of `pam_slice_value`).
    let i = ((x * (m - 1.0) + (m - 1.0)) / 2.0 - 0.5)
        .ceil()
        .clamp(0.0, m - 1.0);
    (2.0 * i - (m - 1.0)) / (m - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bpsk_matches_paper_semantics() {
        assert_eq!(pam_slice(1e-9, 2), 1.0);
        assert_eq!(pam_slice(0.0, 2), -1.0); // w > 0 is strict
        assert_eq!(pam_slice(-5.0, 2), -1.0);
        assert_eq!(pam_slice(5.0, 2), 1.0);
    }

    #[test]
    fn pam4_nearest_level() {
        let lv = [-1.0, -1.0 / 3.0, 1.0 / 3.0, 1.0];
        for &l in &lv {
            assert!((pam_slice(l + 0.1, 4) - l).abs() < 1e-12 || (l + 0.1) > l + 1.0 / 3.0 / 2.0);
            assert_eq!(pam_slice(l, 4), l);
        }
        assert_eq!(pam_slice(0.4, 4), 1.0 / 3.0);
        assert_eq!(pam_slice(0.8, 4), 1.0);
        assert_eq!(pam_slice(-0.9, 4), -1.0);
    }

    #[test]
    fn slicer_is_idempotent() {
        for levels in [2u32, 4, 8, 16] {
            for i in -20..=20 {
                let x = i as f64 / 10.0;
                let s = pam_slice(x, levels);
                assert_eq!(pam_slice(s, levels), s, "levels {levels} x {x}");
            }
        }
    }

    #[test]
    fn outputs_clamped_to_outer_levels() {
        assert_eq!(pam_slice(100.0, 8), 1.0);
        assert_eq!(pam_slice(-100.0, 8), -1.0);
    }

    #[test]
    #[should_panic(expected = "unsupported PAM order")]
    fn order_validated() {
        let _ = pam_slice(0.0, 3);
    }
}

use fixref_sim::Value;

/// Slices a dual-path [`Value`] to the nearest M-PAM level using a chain
/// of fixed-path-steered selections, so both simulation paths take the
/// same decision and the signal-flow graph records the full decision tree
/// (for 2-PAM this is the paper's `w > 0 ? 1 : -1` slicer).
///
/// # Panics
///
/// Panics unless `levels` is a power of two in `2..=16`.
///
/// # Example
///
/// ```
/// use fixref_dsp::slicer::pam_slice_value;
/// use fixref_sim::Value;
///
/// let y = pam_slice_value(Value::from(0.4), 4);
/// assert!((y.fix() - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn pam_slice_value(v: Value, levels: u32) -> Value {
    assert!(
        levels.is_power_of_two() && (2..=16).contains(&levels),
        "unsupported PAM order {levels}"
    );
    let m = levels as f64;
    let lvls: Vec<f64> = (0..levels)
        .map(|i| (2.0 * i as f64 - (m - 1.0)) / (m - 1.0))
        .collect();
    slice_rec(&v, &lvls)
}

/// Binary decision tree over a sorted level slice.
fn slice_rec(v: &Value, lvls: &[f64]) -> Value {
    if lvls.len() == 1 {
        return Value::from(lvls[0]);
    }
    let mid = lvls.len() / 2;
    // Threshold midway between the two groups' adjacent levels.
    let threshold = (lvls[mid - 1] + lvls[mid]) / 2.0;
    let upper = slice_rec(v, &lvls[mid..]);
    let lower = slice_rec(v, &lvls[..mid]);
    (v.clone() - threshold).select_positive(upper, lower)
}

#[cfg(test)]
mod value_tests {
    use super::*;
    use fixref_fixed::Interval;

    #[test]
    fn value_slicer_matches_scalar_slicer() {
        for levels in [2u32, 4, 8, 16] {
            for i in -25..=25 {
                let x = i as f64 / 10.0;
                let v = Value::with_paths(x, x, Interval::point(x));
                let sliced = pam_slice_value(v, levels);
                assert_eq!(sliced.fix(), pam_slice(x, levels), "levels {levels} x {x}");
                assert_eq!(sliced.flt(), sliced.fix(), "paths agree on decisions");
            }
        }
    }

    #[test]
    fn value_slicer_steered_by_fixed_path() {
        // Float says +0.4 (level 1/3), fixed says -0.4 (level -1/3): both
        // paths must take the fixed decision.
        let v = Value::with_paths(0.4, -0.4, Interval::new(-1.0, 1.0));
        let sliced = pam_slice_value(v, 4);
        assert!((sliced.fix() + 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(sliced.flt(), sliced.fix());
    }

    #[test]
    fn value_slicer_interval_covers_all_levels() {
        let v = Value::with_paths(0.0, 0.0, Interval::new(-2.0, 2.0));
        let sliced = pam_slice_value(v, 4);
        assert!(sliced.interval().contains(-1.0));
        assert!(sliced.interval().contains(1.0));
    }
}
