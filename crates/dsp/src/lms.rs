//! The paper's motivational example (Fig. 1): a simplified symbol-spaced
//! adaptive LMS equalizer.
//!
//! The behavioral description, transliterated from the paper's C listing:
//!
//! ```text
//! d[0] = get(x);                       // input into the delay line
//! for i in (1..N).rev()  d[i] = d[i-1];
//! v[0] = 0;
//! for i in 1..=N         v[i] = v[i-1] + d[i-1] * c[i-1];   // FIR
//! w = v[N] - b * s;                    // feedback correction
//! y = w > 0 ? 1 : -1;                  // slicer (binary PAM)
//! b = b + mu * s * (w - y);            // LMS adaptation (single coeff)
//! s = y;
//! ```
//!
//! OCR reconstruction notes: the FIR coefficients are
//! `[-0.11, 1.2, -0.11]` (the third value is cut off in the OCR; chosen
//! symmetric) and the adaptation line's `+` is eaten by the OCR (as in
//! `d = c d;` for `c + d`); `mu` is folded into the step size.
//!
//! [`LmsGolden`] is the plain `f64` reference; [`LmsEqualizer`] is the
//! instrumented model over a [`Design`], used by the Table 1 / Table 2
//! reproductions.

use fixref_fixed::DType;
use fixref_sim::{Design, Reg, RegArray, Sig, SigArray, SignalId, SignalRef, Value};

use crate::channel::{Awgn, FirChannel};
use crate::source::PamSource;

/// Configuration of the equalizer models.
#[derive(Debug, Clone)]
pub struct LmsConfig {
    /// FIR coefficient values (the paper's `coef[]`).
    pub coefficients: Vec<f64>,
    /// LMS step size for the feedback coefficient.
    pub mu: f64,
    /// Optional fixed-point type for the input signal `x` (the paper's
    /// `T_input`, later `<7,5,tc>`).
    pub input_dtype: Option<DType>,
    /// Explicit input range annotation (the paper's
    /// `x.range(-1.5, 1.5)`).
    pub input_range: Option<(f64, f64)>,
}

impl Default for LmsConfig {
    /// The paper's setup: `coef = [-0.11, 1.2, -0.11]`, hardware-friendly
    /// `mu = 1/16`, floating-point input with `x.range(-1.5, 1.5)`.
    fn default() -> Self {
        LmsConfig {
            coefficients: vec![-0.11, 1.2, -0.11],
            mu: 1.0 / 16.0,
            input_dtype: None,
            input_range: Some((-1.5, 1.5)),
        }
    }
}

/// Golden floating-point implementation of the Fig. 1 equalizer.
#[derive(Debug, Clone)]
pub struct LmsGolden {
    coefficients: Vec<f64>,
    mu: f64,
    d: Vec<f64>,
    b: f64,
    s: f64,
}

impl LmsGolden {
    /// Creates the golden model.
    pub fn new(config: &LmsConfig) -> Self {
        LmsGolden {
            coefficients: config.coefficients.clone(),
            mu: config.mu,
            d: vec![0.0; config.coefficients.len()],
            b: 0.0,
            s: 0.0,
        }
    }

    /// One symbol step: returns `(w, y)` — the slicer input and decision.
    ///
    /// The FIR consumes the delay line *before* this sample is shifted in
    /// (one symbol of pipeline latency), mirroring the register semantics
    /// of the instrumented model.
    pub fn step(&mut self, x: f64) -> (f64, f64) {
        let v: f64 = self
            .d
            .iter()
            .zip(&self.coefficients)
            .map(|(d, c)| d * c)
            .sum();
        self.d.rotate_right(1);
        self.d[0] = x;
        let w = v - self.b * self.s;
        let y = if w > 0.0 { 1.0 } else { -1.0 };
        self.b += self.mu * self.s * (w - y);
        self.s = y;
        (w, y)
    }

    /// The adaptive feedback coefficient.
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Resets all state.
    pub fn reset(&mut self) {
        self.d.iter_mut().for_each(|d| *d = 0.0);
        self.b = 0.0;
        self.s = 0.0;
    }
}

/// The instrumented Fig. 1 equalizer over a [`Design`].
///
/// Signal names match the paper's Table 1: `c[i]`, `x`, `d[i]`, `v[i]`,
/// `w`, `b`, `y` (plus the decision register `s`).
///
/// # Example
///
/// ```
/// use fixref_dsp::{LmsConfig, LmsEqualizer};
/// use fixref_sim::Design;
///
/// let d = Design::new();
/// let eq = LmsEqualizer::new(&d, &LmsConfig::default());
/// eq.init();
/// let (w, y) = eq.step(0.8);
/// assert!(y == 1.0 || y == -1.0);
/// assert!(w.abs() < 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct LmsEqualizer {
    design: Design,
    coefficients: Vec<f64>,
    mu: f64,
    n: usize,
    x: Sig,
    c: SigArray,
    d: RegArray,
    v: SigArray,
    w: Sig,
    y: Sig,
    b: Reg,
    s: Reg,
}

impl LmsEqualizer {
    /// Declares the equalizer's signals in `design`.
    ///
    /// # Panics
    ///
    /// Panics if the signal names are already taken in the design or the
    /// coefficient list is empty.
    pub fn new(design: &Design, config: &LmsConfig) -> Self {
        let n = config.coefficients.len();
        assert!(n > 0, "equalizer needs at least one coefficient");
        let x = match &config.input_dtype {
            Some(t) => design.sig_typed("x", t.clone()),
            None => design.sig("x"),
        };
        if let Some((lo, hi)) = config.input_range {
            x.range(lo, hi);
        }
        // Every assignment in `step` executes unconditionally each cycle
        // and the slicer decision goes through `select_positive`, so the
        // incremental engine may re-simulate dirty cones partially.
        design.declare_static_schedule();
        LmsEqualizer {
            design: design.clone(),
            coefficients: config.coefficients.clone(),
            mu: config.mu,
            n,
            x,
            c: design.sig_array("c", n),
            d: design.reg_array("d", n),
            v: design.sig_array("v", n + 1),
            w: design.sig("w"),
            y: design.sig("y"),
            b: design.reg("b"),
            s: design.reg("s"),
        }
    }

    /// Loads the constant coefficients (the paper's initialization loop).
    /// Must be called after every `reset_state` of the design.
    pub fn init(&self) {
        for (i, &coef) in self.coefficients.iter().enumerate() {
            self.c.at(i).set(coef);
        }
    }

    /// One symbol step (one clock tick): feeds `input`, returns the
    /// floating-path `(w, y)` pair.
    pub fn step(&self, input: f64) -> (f64, f64) {
        let design = &self.design;
        self.x.set(input);

        // Delay line shift: registers all read pre-tick values.
        self.d.at(0).set(self.x.get());
        for i in 1..self.n {
            self.d.at(i).set(self.d.at(i - 1).get());
        }

        // FIR partial sums (uses the pre-tick delay line, i.e. d before
        // this symbol was shifted in — one symbol latency, as in RTL).
        self.v.at(0).set(0.0);
        for i in 1..=self.n {
            self.v
                .at(i)
                .set(self.v.at(i - 1).get() + self.d.at(i - 1).get() * self.c.at(i - 1).get());
        }

        // Feedback correction and slicer.
        let w_val = self.v.at(self.n).get() - self.b.get() * self.s.get();
        self.w.set(w_val);
        let y_val = self
            .w
            .get()
            .select_positive(Value::from(1.0), Value::from(-1.0));
        self.y.set(y_val);

        // LMS adaptation of the single feedback coefficient.
        self.b
            .set(self.b.get() + self.mu * self.s.get() * (self.w.get() - self.y.get()));
        self.s.set(self.y.get());

        design.tick();
        (self.w.get().flt(), self.y.get().flt())
    }

    /// The owning design.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Handle to the input signal `x`.
    pub fn x(&self) -> &Sig {
        &self.x
    }

    /// Handle to the slicer input `w` (the SQNR observation point).
    pub fn w(&self) -> &Sig {
        &self.w
    }

    /// Handle to the decision output `y`.
    pub fn y(&self) -> &Sig {
        &self.y
    }

    /// Handle to the adaptive coefficient `b`.
    pub fn b(&self) -> &Reg {
        &self.b
    }

    /// Ids of every equalizer signal, in Table 1 order.
    pub fn signal_ids(&self) -> Vec<SignalId> {
        let mut ids: Vec<SignalId> = self.c.iter().map(|s| s.id()).collect();
        ids.push(self.x.id());
        ids.extend(self.d.iter().map(|r| r.id()));
        ids.extend(self.v.iter().skip(1).map(|s| s.id()));
        ids.push(self.w.id());
        ids.push(self.b.id());
        ids.push(self.y.id());
        ids.push(self.s.id());
        ids
    }
}

/// The standard stimulus for the equalizer experiments: PRBS 2-PAM through
/// the mild ISI channel plus AWGN at the given SNR. Returns the input
/// sample sequence (peak magnitude ≤ 1.5, matching `x.range`).
pub fn equalizer_stimulus(seed: u64, snr_db: f64, len: usize) -> Vec<f64> {
    let mut pam = PamSource::bpsk(seed as u32 | 1);
    let mut channel = FirChannel::mild_isi();
    let mut noise = Awgn::from_snr_db(seed, snr_db, 1.0);
    (0..len)
        .map(|_| {
            let s = pam.next_symbol();
            let x = noise.add(channel.push(s));
            x.clamp(-1.5, 1.5)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_slicer_decisions_are_binary_and_b_stays_small() {
        let mut g = LmsGolden::new(&LmsConfig::default());
        let xs = equalizer_stimulus(1, 25.0, 2000);
        for &x in &xs {
            let (w, y) = g.step(x);
            assert!(y == 1.0 || y == -1.0);
            assert!(w.abs() < 3.0);
        }
        assert!(g.b().abs() < 0.35, "b diverged: {}", g.b());
        g.reset();
        assert_eq!(g.b(), 0.0);
    }

    #[test]
    fn golden_equalizer_opens_the_eye() {
        // After adaptation, w should cluster near ±1: the mean distance of
        // w from the decision must be clearly below the no-equalizer ISI.
        let mut g = LmsGolden::new(&LmsConfig::default());
        let xs = equalizer_stimulus(2, 30.0, 4000);
        let mut err = 0.0;
        let mut count = 0;
        for (i, &x) in xs.iter().enumerate() {
            let (w, y) = g.step(x);
            if i > 2000 {
                err += (w - y).abs();
                count += 1;
            }
        }
        let mean_err = err / count as f64;
        assert!(mean_err < 0.35, "slicer error {mean_err}");
    }

    #[test]
    fn instrumented_matches_golden_when_floating() {
        // With no types anywhere, the instrumented model must match the
        // golden model bit for bit (both are f64 paths).
        let d = Design::new();
        let eq = LmsEqualizer::new(&d, &LmsConfig::default());
        eq.init();
        let mut g = LmsGolden::new(&LmsConfig::default());
        let xs = equalizer_stimulus(3, 25.0, 500);
        for &x in &xs {
            let (wg, yg) = g.step(x);
            let (wi, yi) = eq.step(x);
            assert_eq!(wg, wi);
            assert_eq!(yg, yi);
        }
    }

    #[test]
    fn instrumented_counts_match_run_length() {
        let d = Design::new();
        let eq = LmsEqualizer::new(&d, &LmsConfig::default());
        eq.init();
        for &x in &equalizer_stimulus(4, 25.0, 100) {
            eq.step(x);
        }
        let rep = d.report_for(eq.w());
        assert_eq!(rep.writes, 100);
        let rep_y = d.report_for(eq.y());
        assert_eq!(rep_y.writes, 100);
        assert_eq!(rep_y.finest_lsb, Some(0)); // ±1 decisions
    }

    #[test]
    fn signal_inventory_matches_paper_table() {
        let d = Design::new();
        let eq = LmsEqualizer::new(&d, &LmsConfig::default());
        let ids = eq.signal_ids();
        // c0..c2, x, d0..d2, v1..v3, w, b, y, s = 14 signals.
        assert_eq!(ids.len(), 14);
        let names: Vec<String> = ids.iter().map(|&i| d.name_of(i)).collect();
        for expected in [
            "c[0]", "c[1]", "c[2]", "x", "d[0]", "d[1]", "d[2]", "v[1]", "v[2]", "v[3]", "w", "b",
            "y", "s",
        ] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
    }

    #[test]
    fn feedback_explodes_range_propagation() {
        // The paper's Table 1 iteration 1: w and b suffer range explosion.
        let d = Design::new();
        let eq = LmsEqualizer::new(&d, &LmsConfig::default());
        eq.init();
        for &x in &equalizer_stimulus(5, 25.0, 2000) {
            eq.step(x);
        }
        let b_rep = d.report_for(eq.b());
        let w_rep = d.report_for(eq.w());
        let explosion = |p: fixref_fixed::Interval| p.is_exploded() || p.max_abs() > 1e7;
        assert!(explosion(b_rep.prop), "b prop: {}", b_rep.prop);
        assert!(explosion(w_rep.prop), "w prop: {}", w_rep.prop);
        // While the simulated (statistic) ranges stay small.
        assert!(b_rep.stat.max().abs() < 1.0);
        assert!(w_rep.stat.interval().expect("seen values").max_abs() < 4.0);
    }

    #[test]
    fn stimulus_respects_input_range() {
        let xs = equalizer_stimulus(6, 15.0, 5000);
        assert!(xs.iter().all(|x| x.abs() <= 1.5));
        // And actually exercises a good part of it.
        let max = xs.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        assert!(max > 1.0, "stimulus too tame: {max}");
    }
}
