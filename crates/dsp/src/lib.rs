//! DSP substrate: the workloads of the DATE'99 fixed-point refinement
//! evaluation, built from scratch.
//!
//! Two families of components live here:
//!
//! * **Golden `f64` blocks** — plain floating-point implementations of
//!   every block (FIR, biquad, LMS, Farrow interpolator, Gardner TED, PI
//!   loop filter, NCO) used as references and as the un-instrumented
//!   baseline in the benchmarks;
//! * **Instrumented models** — the same systems described through
//!   [`fixref_sim::Design`] signals, exactly as the paper's C++ listings:
//!   [`lms::LmsEqualizer`] is the motivational example of Fig. 1
//!   (symbol-spaced adaptive LMS equalizer with a single adaptive feedback
//!   coefficient) and [`timing_loop::TimingRecovery`] is the complex
//!   example of Fig. 5 (PAM timing-recovery loop: interpolator → timing
//!   error detector → loop filter → NCO).
//!
//! Stimulus generation ([`source`], [`channel`]) is synthetic — PRBS-driven
//! 2-PAM through an ISI channel plus AWGN — replacing the paper's
//! proprietary cable-modem field data while exercising the same code
//! paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod channel;
pub mod cic;
pub mod cordic;
pub mod fir;
pub mod iir;
pub mod interp;
pub mod lms;
pub mod loopfilter;
pub mod metrics;
pub mod nco;
pub mod qam;
pub mod slicer;
pub mod source;
pub mod ted;
pub mod timing_loop;

pub use blocks::{Accumulator, BiquadBlock, DelayLine, FirBlock};
pub use channel::{Awgn, FirChannel};
pub use cic::{hogenauer_width, CicDecimator, CicGolden};
pub use fir::Fir;
pub use iir::Biquad;
pub use interp::FarrowCubic;
pub use lms::{LmsConfig, LmsEqualizer, LmsGolden};
pub use loopfilter::PiFilter;
pub use metrics::{BerCounter, Mse};
pub use nco::Nco;
pub use qam::{ComplexChannel, FfeConfig, QamFfe, QamFfeGolden, QamSource};
pub use slicer::pam_slice;
pub use source::{Lfsr, PamSource, ShapedPamSource};
pub use ted::GardnerTed;
pub use timing_loop::{TimingConfig, TimingGolden, TimingRecovery};
