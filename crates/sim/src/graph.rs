//! Signal-flow-graph extraction.
//!
//! While [`Design::record_graph`](crate::Design::record_graph) is enabled,
//! every executed assignment contributes its expression tree to a [`Graph`]
//! whose leaves are signal reads and constants. The graph is the input to
//! the fully *analytical* range estimation (paper §4.1: "constructing a
//! signal flowgraph out of the source code and analyzing the data flow
//! using the same range propagation mechanism") and to the VHDL back-end.
//!
//! A signal assigned from several program points (or along several control
//! paths) gets several *definitions*; analyses treat the signal's range as
//! the union over its definitions. Because the graph is recorded from the
//! *executed* description, full structural coverage requires the simulation
//! to execute every assignment at least once — the same "complete coverage
//! of a code execution" requirement the paper attaches to its analytical
//! method.

use std::collections::HashMap;
use std::fmt;

use fixref_fixed::DType;

use crate::design::SignalId;
use crate::value::{Expr, ExprNode, ExprOp};

/// Index of a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A dataflow operator in the signal-flow graph.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A literal constant.
    Const(f64),
    /// A read of a signal's value (register output or wire).
    Read(SignalId),
    /// Addition of the two operands.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
    /// Intermediate quantization to the carried type.
    Cast(DType),
    /// Fixed-path-steered two-way selection: operands are
    /// `[condition, then, else]`.
    Select,
}

impl Op {
    /// Number of operands the operator expects (`Const`/`Read` are leaves).
    pub fn arity(&self) -> usize {
        match self {
            Op::Const(_) | Op::Read(_) => 0,
            Op::Neg | Op::Abs | Op::Cast(_) => 1,
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Min | Op::Max => 2,
            Op::Select => 3,
        }
    }
}

/// One node of the signal-flow graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The operator.
    pub op: Op,
    /// Operand nodes, `op.arity()` of them.
    pub args: Vec<NodeId>,
}

/// A recorded signal-flow graph: nodes plus, per signal, the set of
/// definition roots observed during simulation.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    defs: HashMap<SignalId, Vec<NodeId>>,
    /// Structural-hash intern table so repeated loop bodies do not grow the
    /// graph: key is (op-discriminant rendering, args).
    intern: HashMap<(String, Vec<NodeId>), NodeId>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Iterates over `(id, node)` pairs in creation (topological) order:
    /// operands always precede their users.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// The recorded definition roots of a signal (empty slice if the signal
    /// was never assigned while recording).
    pub fn defs(&self, signal: SignalId) -> &[NodeId] {
        self.defs.get(&signal).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Signals that have at least one recorded definition.
    pub fn defined_signals(&self) -> impl Iterator<Item = SignalId> + '_ {
        self.defs.keys().copied()
    }

    /// Adds a node (interned: structurally identical nodes share an id).
    pub fn add(&mut self, op: Op, args: Vec<NodeId>) -> NodeId {
        assert_eq!(op.arity(), args.len(), "arity mismatch for {op:?}");
        let key = (format!("{op:?}"), args.clone());
        if let Some(&id) = self.intern.get(&key) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { op, args });
        self.intern.insert(key, id);
        id
    }

    /// Records `root` as one definition of `signal` (deduplicated).
    pub fn record_def(&mut self, signal: SignalId, root: NodeId) {
        let defs = self.defs.entry(signal).or_default();
        if !defs.contains(&root) {
            defs.push(root);
        }
    }

    /// Interns an expression trace, returning its root, or `None` when the
    /// trace is disabled.
    pub(crate) fn intern_expr(&mut self, expr: &Expr) -> Option<NodeId> {
        match expr {
            Expr::Off => None,
            Expr::Const(c) => Some(self.add(Op::Const(*c), vec![])),
            Expr::Read(id) => Some(self.add(Op::Read(*id), vec![])),
            Expr::Node(n) => self.intern_node(n),
        }
    }

    fn intern_node(&mut self, node: &ExprNode) -> Option<NodeId> {
        let mut args = Vec::with_capacity(node.args.len());
        for a in &node.args {
            args.push(self.intern_expr(a)?);
        }
        let op = match node.op {
            ExprOp::Add => Op::Add,
            ExprOp::Sub => Op::Sub,
            ExprOp::Mul => Op::Mul,
            ExprOp::Div => Op::Div,
            ExprOp::Neg => Op::Neg,
            ExprOp::Abs => Op::Abs,
            ExprOp::Min => Op::Min,
            ExprOp::Max => Op::Max,
            ExprOp::Select => Op::Select,
            ExprOp::Cast => Op::Cast(node.dtype.clone().expect("cast carries dtype")),
        };
        Some(self.add(op, args))
    }

    /// The set of signals read (transitively) by the definitions of
    /// `signal` — its dataflow fan-in.
    pub fn fan_in(&self, signal: SignalId) -> Vec<SignalId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.defs(signal).to_vec();
        let mut out = Vec::new();
        while let Some(id) = stack.pop() {
            if seen[id.0 as usize] {
                continue;
            }
            seen[id.0 as usize] = true;
            let n = &self.nodes[id.0 as usize];
            if let Op::Read(s) = n.op {
                if !out.contains(&s) {
                    out.push(s);
                }
            }
            stack.extend(n.args.iter().copied());
        }
        out.sort();
        out
    }

    /// The affected fan-out cone of a set of changed signals: every signal
    /// whose definitions (transitively) read one of the `roots`, plus the
    /// roots themselves — the reverse of [`Graph::fan_in`]. This is the
    /// set the incremental engine must re-monitor after an annotation
    /// change; feedback cycles are handled by the visited set. Sorted.
    pub fn affected_cone(&self, roots: &[SignalId]) -> Vec<SignalId> {
        // Signal-level users adjacency: an edge s → t for every signal s
        // in the dataflow fan-in of a defined signal t.
        let mut users: HashMap<SignalId, Vec<SignalId>> = HashMap::new();
        for t in self.defined_signals() {
            for s in self.fan_in(t) {
                users.entry(s).or_default().push(t);
            }
        }
        let mut seen: std::collections::BTreeSet<SignalId> = roots.iter().copied().collect();
        let mut stack: Vec<SignalId> = roots.to_vec();
        while let Some(s) = stack.pop() {
            if let Some(ts) = users.get(&s) {
                for &t in ts {
                    if seen.insert(t) {
                        stack.push(t);
                    }
                }
            }
        }
        seen.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(i: u32) -> SignalId {
        SignalId(i)
    }

    #[test]
    fn add_and_lookup() {
        let mut g = Graph::new();
        let a = g.add(Op::Read(sid(0)), vec![]);
        let b = g.add(Op::Const(1.5), vec![]);
        let s = g.add(Op::Add, vec![a, b]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.node(s).op, Op::Add);
        assert_eq!(g.node(s).args, vec![a, b]);
        assert!(!g.is_empty());
    }

    #[test]
    fn interning_dedupes_structurally_equal_nodes() {
        let mut g = Graph::new();
        let a1 = g.add(Op::Read(sid(0)), vec![]);
        let a2 = g.add(Op::Read(sid(0)), vec![]);
        assert_eq!(a1, a2);
        let c1 = g.add(Op::Const(2.0), vec![]);
        let s1 = g.add(Op::Add, vec![a1, c1]);
        let s2 = g.add(Op::Add, vec![a2, c1]);
        assert_eq!(s1, s2);
        assert_eq!(g.len(), 3);
        // Different constants are different nodes.
        let c2 = g.add(Op::Const(3.0), vec![]);
        assert_ne!(c1, c2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut g = Graph::new();
        g.add(Op::Add, vec![]);
    }

    #[test]
    fn defs_recorded_and_deduped() {
        let mut g = Graph::new();
        let a = g.add(Op::Read(sid(0)), vec![]);
        let b = g.add(Op::Const(1.0), vec![]);
        let s = g.add(Op::Add, vec![a, b]);
        g.record_def(sid(1), s);
        g.record_def(sid(1), s); // duplicate
        g.record_def(sid(1), b); // second distinct def
        assert_eq!(g.defs(sid(1)), &[s, b]);
        assert_eq!(g.defs(sid(9)), &[] as &[NodeId]);
        let defined: Vec<_> = g.defined_signals().collect();
        assert_eq!(defined, vec![sid(1)]);
    }

    #[test]
    fn fan_in_traverses_transitively() {
        let mut g = Graph::new();
        let x = g.add(Op::Read(sid(0)), vec![]);
        let y = g.add(Op::Read(sid(1)), vec![]);
        let p = g.add(Op::Mul, vec![x, y]);
        let n = g.add(Op::Neg, vec![p]);
        g.record_def(sid(2), n);
        assert_eq!(g.fan_in(sid(2)), vec![sid(0), sid(1)]);
        assert!(g.fan_in(sid(0)).is_empty());
    }

    #[test]
    fn affected_cone_is_the_reverse_of_fan_in() {
        // x(0) -> a(1) -> b(2); y(3) -> c(4); cone(x) = {x, a, b}.
        let mut g = Graph::new();
        let x = g.add(Op::Read(sid(0)), vec![]);
        let n = g.add(Op::Neg, vec![x]);
        g.record_def(sid(1), n);
        let a = g.add(Op::Read(sid(1)), vec![]);
        let m = g.add(Op::Abs, vec![a]);
        g.record_def(sid(2), m);
        let y = g.add(Op::Read(sid(3)), vec![]);
        let c = g.add(Op::Neg, vec![y]);
        g.record_def(sid(4), c);

        assert_eq!(g.affected_cone(&[sid(0)]), vec![sid(0), sid(1), sid(2)]);
        assert_eq!(g.affected_cone(&[sid(3)]), vec![sid(3), sid(4)]);
        // A root with no users is its own cone.
        assert_eq!(g.affected_cone(&[sid(2)]), vec![sid(2)]);
        // Multiple roots union their cones.
        assert_eq!(
            g.affected_cone(&[sid(1), sid(3)]),
            vec![sid(1), sid(2), sid(3), sid(4)]
        );
        assert!(g.affected_cone(&[]).is_empty());
    }

    #[test]
    fn affected_cone_terminates_on_feedback_cycles() {
        // Accumulator b(1) reads itself and x(0): b = b + x. Downstream
        // w(2) reads b. The cone of x must include the whole cycle and
        // its fan-out without looping forever.
        let mut g = Graph::new();
        let x = g.add(Op::Read(sid(0)), vec![]);
        let b = g.add(Op::Read(sid(1)), vec![]);
        let sum = g.add(Op::Add, vec![b, x]);
        g.record_def(sid(1), sum);
        let b2 = g.add(Op::Read(sid(1)), vec![]);
        let n = g.add(Op::Neg, vec![b2]);
        g.record_def(sid(2), n);

        assert_eq!(g.affected_cone(&[sid(0)]), vec![sid(0), sid(1), sid(2)]);
        // Starting inside the cycle also covers it (b is its own user).
        assert_eq!(g.affected_cone(&[sid(1)]), vec![sid(1), sid(2)]);
    }

    #[test]
    fn affected_cone_of_mutual_feedback_covers_both_directions() {
        // a(0) reads b(1) and vice versa (a two-signal cycle), plus an
        // unrelated island c(2) <- d(3).
        let mut g = Graph::new();
        let rb = g.add(Op::Read(sid(1)), vec![]);
        let na = g.add(Op::Neg, vec![rb]);
        g.record_def(sid(0), na);
        let ra = g.add(Op::Read(sid(0)), vec![]);
        let nb = g.add(Op::Abs, vec![ra]);
        g.record_def(sid(1), nb);
        let rd = g.add(Op::Read(sid(3)), vec![]);
        let nc = g.add(Op::Neg, vec![rd]);
        g.record_def(sid(2), nc);

        assert_eq!(g.affected_cone(&[sid(0)]), vec![sid(0), sid(1)]);
        assert_eq!(g.affected_cone(&[sid(1)]), vec![sid(0), sid(1)]);
        // The island is unaffected by the cycle and vice versa.
        assert_eq!(g.affected_cone(&[sid(3)]), vec![sid(2), sid(3)]);
    }

    #[test]
    fn fan_in_unions_over_multiple_definitions() {
        // phase(2) is multiply-defined: one branch reads x(0), the other
        // reads y(1). Its fan-in is the union of both definitions.
        let mut g = Graph::new();
        let x = g.add(Op::Read(sid(0)), vec![]);
        let nx = g.add(Op::Neg, vec![x]);
        g.record_def(sid(2), nx);
        let y = g.add(Op::Read(sid(1)), vec![]);
        let ay = g.add(Op::Abs, vec![y]);
        g.record_def(sid(2), ay);
        assert_eq!(g.fan_in(sid(2)), vec![sid(0), sid(1)]);
    }

    #[test]
    fn fan_in_of_a_self_loop_includes_the_signal_itself() {
        // acc(1) = acc + x: the accumulator is in its own fan-in.
        let mut g = Graph::new();
        let x = g.add(Op::Read(sid(0)), vec![]);
        let acc = g.add(Op::Read(sid(1)), vec![]);
        let sum = g.add(Op::Add, vec![acc, x]);
        g.record_def(sid(1), sum);
        assert_eq!(g.fan_in(sid(1)), vec![sid(0), sid(1)]);
    }

    #[test]
    fn affected_cone_covers_every_definition_of_a_multiply_defined_signal() {
        // phase(2) has two defs — one reading x(0), one reading y(1) —
        // and out(3) reads phase. Changing either input must pull in
        // phase and everything downstream of it.
        let mut g = Graph::new();
        let x = g.add(Op::Read(sid(0)), vec![]);
        let nx = g.add(Op::Neg, vec![x]);
        g.record_def(sid(2), nx);
        let y = g.add(Op::Read(sid(1)), vec![]);
        let ay = g.add(Op::Abs, vec![y]);
        g.record_def(sid(2), ay);
        let p = g.add(Op::Read(sid(2)), vec![]);
        let np = g.add(Op::Neg, vec![p]);
        g.record_def(sid(3), np);
        assert_eq!(g.affected_cone(&[sid(0)]), vec![sid(0), sid(2), sid(3)]);
        assert_eq!(g.affected_cone(&[sid(1)]), vec![sid(1), sid(2), sid(3)]);
    }

    #[test]
    fn affected_cone_of_a_self_loop_root_is_a_fixpoint() {
        // acc(1) = acc + x(0): the cone of acc is {acc} plus fan-out,
        // and re-running from that cone returns the same set.
        let mut g = Graph::new();
        let x = g.add(Op::Read(sid(0)), vec![]);
        let acc = g.add(Op::Read(sid(1)), vec![]);
        let sum = g.add(Op::Add, vec![acc, x]);
        g.record_def(sid(1), sum);
        let cone = g.affected_cone(&[sid(1)]);
        assert_eq!(cone, vec![sid(1)]);
        assert_eq!(g.affected_cone(&cone), cone);
    }

    #[test]
    fn iter_is_topological() {
        let mut g = Graph::new();
        let a = g.add(Op::Read(sid(0)), vec![]);
        let b = g.add(Op::Neg, vec![a]);
        let _ = g.add(Op::Abs, vec![b]);
        for (id, node) in g.iter() {
            for arg in &node.args {
                assert!(arg.0 < id.0, "operand {arg} after user {id}");
            }
        }
    }

    #[test]
    fn op_arity_table() {
        assert_eq!(Op::Const(0.0).arity(), 0);
        assert_eq!(Op::Read(sid(0)).arity(), 0);
        assert_eq!(Op::Neg.arity(), 1);
        assert_eq!(Op::Abs.arity(), 1);
        assert_eq!(Op::Add.arity(), 2);
        assert_eq!(Op::Select.arity(), 3);
        let t = fixref_fixed::DType::tc("t", 8, 4).unwrap();
        assert_eq!(Op::Cast(t).arity(), 1);
    }
}

/// Escapes a string for use inside a double-quoted DOT label.
fn dot_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

impl Graph {
    /// Renders the graph in Graphviz DOT format, with signal names
    /// resolved through `name_of` (pass `|id| id.to_string()` when no
    /// design is at hand). Definition edges are drawn bold; operator
    /// nodes are boxes, reads/constants are ellipses. Feedback — a node
    /// reading a signal that is also defined in this graph — is closed
    /// with a dashed red back-edge from the signal's definition sink to
    /// the reader, so register loops are visible in the rendering.
    /// Quotes and backslashes in signal names are escaped.
    pub fn to_dot(&self, mut name_of: impl FnMut(SignalId) -> String) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph sfg {\n  rankdir=LR;\n");
        let mut back_edges: Vec<(SignalId, NodeId)> = Vec::new();
        for (id, node) in self.iter() {
            let (label, shape) = match &node.op {
                Op::Const(c) => (format!("{c}"), "ellipse"),
                Op::Read(s) => {
                    if !self.defs(*s).is_empty() {
                        back_edges.push((*s, id));
                    }
                    (name_of(*s), "ellipse")
                }
                Op::Add => ("+".to_string(), "box"),
                Op::Sub => ("-".to_string(), "box"),
                Op::Mul => ("*".to_string(), "box"),
                Op::Div => ("/".to_string(), "box"),
                Op::Neg => ("neg".to_string(), "box"),
                Op::Abs => ("abs".to_string(), "box"),
                Op::Min => ("min".to_string(), "box"),
                Op::Max => ("max".to_string(), "box"),
                Op::Cast(dt) => (format!("cast {dt}"), "box"),
                Op::Select => ("sel".to_string(), "diamond"),
            };
            let _ = writeln!(
                out,
                "  {id} [label=\"{}\", shape={shape}];",
                dot_escape(&label)
            );
            for arg in &node.args {
                let _ = writeln!(out, "  {arg} -> {id};");
            }
        }
        let mut defs: Vec<SignalId> = self.defined_signals().collect();
        defs.sort();
        for sig in defs {
            let name = name_of(sig);
            let _ = writeln!(
                out,
                "  \"def_{}\" [label=\"{}\", shape=ellipse, style=bold];",
                sig.raw(),
                dot_escape(&name)
            );
            for def in self.defs(sig) {
                let _ = writeln!(out, "  {def} -> \"def_{}\" [style=bold];", sig.raw());
            }
        }
        for (sig, reader) in back_edges {
            let _ = writeln!(
                out,
                "  \"def_{}\" -> {reader} [style=dashed, color=red, constraint=false];",
                sig.raw()
            );
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn dot_contains_nodes_edges_and_defs() {
        let mut g = Graph::new();
        let a = g.add(Op::Read(SignalId(0)), vec![]);
        let c = g.add(Op::Const(0.5), vec![]);
        let m = g.add(Op::Mul, vec![a, c]);
        g.record_def(SignalId(1), m);
        let dot = g.to_dot(|id| format!("s{}", id.raw()));
        assert!(dot.starts_with("digraph sfg {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("label=\"s0\""));
        assert!(dot.contains("label=\"*\""));
        assert!(dot.contains("label=\"0.5\""));
        assert!(dot.contains("-> \"def_1\""));
        // Every edge references declared nodes.
        assert_eq!(dot.matches(" -> ").count(), 3);
    }

    #[test]
    fn dot_handles_select_and_cast() {
        let dt = fixref_fixed::DType::tc("t", 8, 4).unwrap();
        let mut g = Graph::new();
        let w = g.add(Op::Read(SignalId(0)), vec![]);
        let cst = g.add(Op::Cast(dt), vec![w]);
        let one = g.add(Op::Const(1.0), vec![]);
        let mone = g.add(Op::Const(-1.0), vec![]);
        let sel = g.add(Op::Select, vec![cst, one, mone]);
        g.record_def(SignalId(1), sel);
        let dot = g.to_dot(|id| format!("s{}", id.raw()));
        assert!(dot.contains("shape=diamond"));
        assert!(dot.contains("cast <8,4,tc"));
    }

    #[test]
    fn dot_escapes_quotes_and_backslashes_in_signal_names() {
        let mut g = Graph::new();
        let r = g.add(Op::Read(SignalId(0)), vec![]);
        let n = g.add(Op::Neg, vec![r]);
        g.record_def(SignalId(1), n);
        let dot = g.to_dot(|id| {
            if id.raw() == 0 {
                "x\"quoted\"".to_string()
            } else {
                "y\\back".to_string()
            }
        });
        assert!(dot.contains("label=\"x\\\"quoted\\\"\""));
        assert!(dot.contains("label=\"y\\\\back\""));
        // No label line may contain a raw, unescaped interior quote.
        for line in dot.lines().filter(|l| l.contains("label=")) {
            let inner = line.split("label=\"").nth(1).unwrap();
            let body = &inner[..inner.rfind('"').unwrap()];
            let mut chars = body.chars();
            while let Some(c) = chars.next() {
                if c == '\\' {
                    chars.next();
                } else {
                    assert_ne!(c, '"', "unescaped quote in {line}");
                }
            }
        }
    }

    #[test]
    fn dot_marks_feedback_back_edges_on_a_cyclic_lms_graph() {
        // LMS-shaped feedback: w(1) = w + mu * x(0); y(2) = w * x. The
        // Read(w) node closes a cycle through w's definition, which must
        // be rendered as a dashed back-edge; the pure input x must not.
        let mut g = Graph::new();
        let x = g.add(Op::Read(SignalId(0)), vec![]);
        let w = g.add(Op::Read(SignalId(1)), vec![]);
        let mu = g.add(Op::Const(0.25), vec![]);
        let step = g.add(Op::Mul, vec![mu, x]);
        let upd = g.add(Op::Add, vec![w, step]);
        g.record_def(SignalId(1), upd);
        let y = g.add(Op::Mul, vec![w, x]);
        g.record_def(SignalId(2), y);
        let dot = g.to_dot(|id| format!("s{}", id.raw()));
        // Exactly one back-edge: def_1 (w) feeding its own Read node.
        let back: Vec<&str> = dot.lines().filter(|l| l.contains("style=dashed")).collect();
        assert_eq!(back.len(), 1, "expected one back-edge in:\n{dot}");
        assert!(back[0].contains("\"def_1\" -> "));
        assert!(back[0].contains("color=red"));
        // The pure input x is never a back-edge source.
        assert!(!dot.contains("\"def_0\" ->"));
    }
}
