//! Deterministic fault injection for the fault-tolerance layer.
//!
//! A [`FaultPlan`] is a *seeded, declarative* description of faults to
//! inject into a run: worker panics keyed by `(shard, attempt)`, NaN
//! stimulus bursts keyed by shard, and checkpoint-write failures keyed by
//! checkpoint sequence number. The plan is plain data threaded through
//! test-only seams (`SweepDriver::inject_faults`,
//! `RefinementFlow::set_fault_plan`), so every degradation path —
//! shard retry, quarantine, degraded merge, checkpoint fallback, crash
//! resume — is exercised deterministically: the same plan always produces
//! the same journal.

/// A declarative, deterministic plan of faults to inject.
///
/// An empty (default) plan injects nothing and is free to carry around —
/// the production paths only ever consult it with cheap slice scans.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    panics: Vec<(usize, usize)>,
    nan_bursts: Vec<(usize, usize)>,
    checkpoint_write_failures: Vec<usize>,
    abort_after_checkpoint: Option<usize>,
    server_crash_after_n_checkpoints: Option<usize>,
}

impl FaultPlan {
    /// Creates an empty plan carrying `seed` (mixed into
    /// [`FaultPlan::retry_seed`] so distinct plans can ask for distinct
    /// retry noise).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.panics.is_empty()
            && self.nan_bursts.is_empty()
            && self.checkpoint_write_failures.is_empty()
            && self.abort_after_checkpoint.is_none()
            && self.server_crash_after_n_checkpoints.is_none()
    }

    /// Injects a worker panic when shard `shard` runs attempt `attempt`
    /// (0-based: attempt 0 is the first try).
    pub fn panic_on(mut self, shard: usize, attempt: usize) -> Self {
        self.panics.push((shard, attempt));
        self
    }

    /// Prepends `samples` cycles of NaN stimulus to shard `shard` before
    /// its regular stimulus runs. The engine's range propagation rejects
    /// non-finite bounds, so the poisoned shard fails structurally — a
    /// deterministic stand-in for data-dependent numeric corruption,
    /// driving the same retry/quarantine paths as a worker panic.
    pub fn nan_burst(mut self, shard: usize, samples: usize) -> Self {
        self.nan_bursts.push((shard, samples));
        self
    }

    /// Makes the checkpoint write with sequence number `sequence` fail
    /// (the flow records a `checkpoint_failed` event and continues; the
    /// previous checkpoint on disk stays authoritative).
    pub fn fail_checkpoint_write(mut self, sequence: usize) -> Self {
        self.checkpoint_write_failures.push(sequence);
        self
    }

    /// Aborts the flow with `FlowError::Interrupted` right after
    /// checkpoint `sequence` is processed — a deterministic stand-in for
    /// killing the process mid-run, used by the crash-resume tests.
    pub fn abort_after_checkpoint(mut self, sequence: usize) -> Self {
        self.abort_after_checkpoint = Some(sequence);
        self
    }

    /// Crashes the whole job *server* — not just one flow — once `n`
    /// checkpoints have been written across all jobs since the server
    /// started. A deterministic stand-in for `kill -9` mid-job: the
    /// server stops abruptly (no drain, no terminal journal records),
    /// leaving recovery entirely to the write-ahead jobs log and the
    /// per-job checkpoint files. Used by the serve crash-recovery tests.
    pub fn server_crash_after_n_checkpoints(mut self, n: usize) -> Self {
        self.server_crash_after_n_checkpoints = Some(n);
        self
    }

    /// The server-wide checkpoint count after which the server should
    /// crash, if any.
    pub fn server_crash_checkpoints(&self) -> Option<usize> {
        self.server_crash_after_n_checkpoints
    }

    /// Whether shard `shard` should panic on attempt `attempt`.
    pub fn should_panic(&self, shard: usize, attempt: usize) -> bool {
        self.panics.contains(&(shard, attempt))
    }

    /// NaN burst length for shard `shard`, if any.
    pub fn nan_burst_for(&self, shard: usize) -> Option<usize> {
        self.nan_bursts
            .iter()
            .find(|(s, _)| *s == shard)
            .map(|&(_, n)| n)
    }

    /// Whether the checkpoint write with sequence `sequence` should fail.
    pub fn fails_checkpoint_write(&self, sequence: usize) -> bool {
        self.checkpoint_write_failures.contains(&sequence)
    }

    /// The checkpoint sequence after which the flow should abort, if any.
    pub fn abort_checkpoint(&self) -> Option<usize> {
        self.abort_after_checkpoint
    }

    /// Deterministic re-seed for retry attempts that *want* fresh noise.
    ///
    /// The sweep engine itself retries with the scenario's original seed
    /// (so a retry that succeeds is bit-identical to a fault-free run);
    /// stimuli that instead want statistically independent noise per
    /// attempt can derive it here. Attempt 0 returns `base` unchanged.
    pub fn retry_seed(&self, base: u64, attempt: usize) -> u64 {
        if attempt == 0 {
            return base;
        }
        // SplitMix64-style avalanche over (base, plan seed, attempt).
        let mut z =
            base ^ self.seed.rotate_left(17) ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::default();
        assert!(p.is_empty());
        assert!(!p.should_panic(0, 0));
        assert_eq!(p.nan_burst_for(3), None);
        assert!(!p.fails_checkpoint_write(0));
        assert_eq!(p.abort_checkpoint(), None);
    }

    #[test]
    fn triggers_are_keyed_exactly() {
        let p = FaultPlan::seeded(7)
            .panic_on(1, 0)
            .panic_on(1, 1)
            .nan_burst(2, 5)
            .fail_checkpoint_write(3)
            .abort_after_checkpoint(4)
            .server_crash_after_n_checkpoints(6);
        assert!(!p.is_empty());
        assert_eq!(p.server_crash_checkpoints(), Some(6));
        assert!(FaultPlan::seeded(7)
            .server_crash_after_n_checkpoints(0)
            .server_crash_checkpoints()
            .is_some());
        assert!(p.should_panic(1, 0));
        assert!(p.should_panic(1, 1));
        assert!(!p.should_panic(1, 2));
        assert!(!p.should_panic(0, 0));
        assert_eq!(p.nan_burst_for(2), Some(5));
        assert_eq!(p.nan_burst_for(1), None);
        assert!(p.fails_checkpoint_write(3));
        assert!(!p.fails_checkpoint_write(2));
        assert_eq!(p.abort_checkpoint(), Some(4));
    }

    #[test]
    fn retry_seed_is_stable_and_attempt_zero_is_identity() {
        let p = FaultPlan::seeded(99);
        assert_eq!(p.retry_seed(42, 0), 42);
        let a = p.retry_seed(42, 1);
        let b = p.retry_seed(42, 1);
        assert_eq!(a, b);
        assert_ne!(a, 42);
        assert_ne!(a, p.retry_seed(42, 2));
        // Different plan seeds give different retry streams.
        assert_ne!(a, FaultPlan::seeded(100).retry_seed(42, 1));
    }
}
