//! Straight-line bytecode programs for compiled re-simulation.
//!
//! The interpreted simulator executes a design by running its host-side
//! description — every assignment walks [`Value`](crate::Value) operator
//! overloads and pays a registry lookup per monitor. For designs whose
//! per-cycle behavior is *static* (the FXL001 static-schedule contract),
//! one monitored capture run fixes the whole execution: the sequence of
//! assignments, the expression tree behind each one, and the stimulus
//! values fed in from outside. This module holds the plain-data result of
//! lowering such a capture to a flat op tape:
//!
//! - [`ExecTrace`] — what [`Design::begin_capture`](crate::Design::begin_capture)
//!   records during one interpreted run: one [`TraceStep`] per assignment
//!   (with its signal-flow-graph root and incoming value) or tick, plus
//!   final read counts and the cycle total;
//! - [`Instr`] / [`CycleKind`] / [`CompiledProgram`] — the bytecode: a
//!   stack machine over [`Value`] operands whose `Store` ops feed the
//!   same monitored assignment pipeline the interpreter uses;
//! - [`BoundTrace`] — one design-run binding of a program: the cycle
//!   schedule, the captured input stream consumed by `StoreInput`, the
//!   expected values used by the post-compile verification replay, and
//!   the read-count totals spliced in after a replay.
//!
//! Lowering (graph + trace → program) lives in `fixref-codegen`; the
//! replay executors live on [`Design`](crate::Design) because they drive
//! the private assignment pipeline. Everything here is `Send` plain data,
//! so scenario-sweep workers can compile in parallel and hand programs
//! across threads.

use fixref_fixed::{DType, Interval};

use crate::design::SignalId;
use crate::graph::NodeId;

/// One captured step of an interpreted run.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceStep {
    /// An executed assignment: the target signal, the root of its
    /// recorded expression in the signal-flow graph, and the incoming
    /// value *before* quantization (float path, fixed path, propagated
    /// interval).
    Assign {
        /// The assigned signal.
        sig: SignalId,
        /// The interned root of the assignment's expression tree.
        root: NodeId,
        /// Incoming float-path value.
        flt: f64,
        /// Incoming fixed-path value (pre-quantization).
        fix: f64,
        /// Incoming propagated range.
        itv: Interval,
    },
    /// A clock tick ([`Design::tick`](crate::Design::tick)).
    Tick,
}

/// The raw capture of one interpreted run: every assignment and tick in
/// execution order, plus the per-signal read-count totals and the cycle
/// count at the end of the run.
#[derive(Debug, Clone, Default)]
pub struct ExecTrace {
    /// Per-signal `(flt, fix)` state at [`Design::begin_capture`]
    /// (raw-id indexed) — the state a verification replay starts from.
    pub start: Vec<(f64, f64)>,
    /// Assignments and ticks in execution order.
    pub steps: Vec<TraceStep>,
    /// Final per-signal read counts, indexed by raw signal id. Host code
    /// may read a signal into a local and reuse it, so read counts are
    /// not recoverable from the expression trees — they are captured and
    /// spliced back in after a replay.
    pub reads: Vec<u64>,
    /// Clock ticks during the capture.
    pub cycles: u64,
}

/// One stack-machine instruction. Operands are full dual-path
/// [`Value`](crate::Value)s, so replayed arithmetic (float path, fixed
/// path, interval rules) is executed by the exact same operator code as
/// the interpreter.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Push a literal: both paths carry the constant, point interval.
    Const(f64),
    /// Push the current value of a signal (same interval rule as a
    /// monitored read; the read *count* is spliced from the trace).
    Read(SignalId),
    /// Pop two, push their sum.
    Add,
    /// Pop two, push their difference.
    Sub,
    /// Pop two, push their product.
    Mul,
    /// Pop two, push their quotient.
    Div,
    /// Pop one, push its negation.
    Neg,
    /// Pop one, push its absolute value.
    Abs,
    /// Pop two, push the elementwise minimum.
    Min,
    /// Pop two, push the elementwise maximum.
    Max,
    /// Pop one, push it cast through the indexed type (index into
    /// [`CompiledProgram::dtypes`]).
    Cast(u16),
    /// Pop `[condition, then, else]` (pushed in that order), push the
    /// fixed-path-steered selection.
    Select,
    /// Pop one and run the full monitored assignment pipeline on it.
    Store(SignalId),
    /// Consume the next captured input sample from the bound trace and
    /// run the full monitored assignment pipeline on it.
    StoreInput(SignalId),
}

impl Instr {
    /// Appends a stable word encoding of the instruction to `out` — the
    /// key used for cycle-kind deduplication and program fingerprints.
    pub fn encode(&self, out: &mut Vec<u64>) {
        match self {
            Instr::Const(c) => out.extend([0, c.to_bits()]),
            Instr::Read(s) => out.extend([1, u64::from(s.raw())]),
            Instr::Add => out.push(2),
            Instr::Sub => out.push(3),
            Instr::Mul => out.push(4),
            Instr::Div => out.push(5),
            Instr::Neg => out.push(6),
            Instr::Abs => out.push(7),
            Instr::Min => out.push(8),
            Instr::Max => out.push(9),
            Instr::Cast(k) => out.extend([10, u64::from(*k)]),
            Instr::Select => out.push(11),
            Instr::Store(s) => out.extend([12, u64::from(s.raw())]),
            Instr::StoreInput(s) => out.extend([13, u64::from(s.raw())]),
        }
    }

    /// Net change this instruction applies to the operand stack depth.
    pub fn stack_effect(&self) -> isize {
        match self {
            Instr::Const(_) | Instr::Read(_) => 1,
            // `StoreInput` feeds from the bound input stream, not the stack.
            Instr::Neg | Instr::Abs | Instr::Cast(_) | Instr::StoreInput(_) => 0,
            Instr::Add
            | Instr::Sub
            | Instr::Mul
            | Instr::Div
            | Instr::Min
            | Instr::Max
            | Instr::Store(_) => -1,
            Instr::Select => -2,
        }
    }
}

/// The deduplicated instruction sequence of one cycle shape. Identical
/// cycles (same assignments, same expression structure) share one kind,
/// so a 4000-sample loop typically lowers to a handful of kinds.
#[derive(Debug, Clone, Default)]
pub struct CycleKind {
    /// The instruction tape for one execution of this cycle shape.
    pub instrs: Vec<Instr>,
    /// Peak operand-stack depth while executing `instrs`.
    pub max_stack: usize,
}

/// A lowered program: the cycle kinds plus the type table `Cast` indexes
/// into. Plain data, shareable across scenario lanes that compiled to
/// the same shape.
#[derive(Debug, Clone, Default)]
pub struct CompiledProgram {
    /// Deduplicated cycle shapes.
    pub kinds: Vec<CycleKind>,
    /// Types referenced by [`Instr::Cast`].
    pub dtypes: Vec<DType>,
}

impl CompiledProgram {
    /// Total instruction count across all kinds.
    pub fn instruction_count(&self) -> usize {
        self.kinds.iter().map(|k| k.instrs.len()).sum()
    }

    /// Peak operand-stack depth across all kinds.
    pub fn max_stack(&self) -> usize {
        self.kinds.iter().map(|k| k.max_stack).max().unwrap_or(0)
    }
}

/// One scheduled segment of a replay: which cycle kind to execute and
/// whether a clock tick follows it (the final segment of a run may be
/// unticked).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Index into [`CompiledProgram::kinds`].
    pub kind: u32,
    /// Whether a tick commits registers after this segment.
    pub tick_after: bool,
}

/// One captured input sample consumed by [`Instr::StoreInput`] —
/// the incoming value of a stimulus assignment, replayed verbatim and
/// re-quantized through the signal's *current* type at assign time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputSample {
    /// Float-path value.
    pub flt: f64,
    /// Fixed-path value (pre-quantization).
    pub fix: f64,
    /// Propagated range of the incoming value.
    pub itv: Interval,
}

/// The per-run binding of a [`CompiledProgram`]: schedule, input stream,
/// verification expectations, and the read/cycle totals to splice.
#[derive(Debug, Clone, Default)]
pub struct BoundTrace {
    /// Per-signal `(flt, fix)` state at capture start (raw-id indexed),
    /// used by [`Design::verify_compiled`](crate::Design::verify_compiled)
    /// as the scratch starting state.
    pub start: Vec<(f64, f64)>,
    /// Cycle-kind schedule in execution order.
    pub schedule: Vec<Segment>,
    /// Input samples in `StoreInput` encounter order.
    pub inputs: Vec<InputSample>,
    /// Expected incoming `(flt, fix)` of every computed (non-input)
    /// `Store`, in encounter order — consumed once by
    /// [`Design::verify_compiled`](crate::Design::verify_compiled) to
    /// prove the tape reproduces the capture before it is trusted.
    pub expected: Vec<(f64, f64)>,
    /// Per-signal read-count totals (raw-id indexed) spliced in after a
    /// replay.
    pub reads: Vec<u64>,
    /// Clock ticks of the captured run.
    pub cycles: u64,
}

impl BoundTrace {
    /// A structural fingerprint of `(program, schedule)` — lanes with
    /// equal fingerprints (and equal encodings, which callers must
    /// confirm) can be batched through one structure-of-arrays pass.
    /// Inputs, expectations and read counts are deliberately excluded:
    /// they vary per scenario without changing the executable shape.
    pub fn fingerprint(&self, program: &CompiledProgram) -> u64 {
        let mut words = Vec::new();
        Self::encode_shape(program, &self.schedule, &mut words);
        // FNV-1a over the word encoding.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in words {
            for byte in w.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// The full word encoding of `(program, schedule)`, for exact
    /// structural-equality checks behind the fingerprint.
    pub fn shape_words(&self, program: &CompiledProgram) -> Vec<u64> {
        let mut words = Vec::new();
        Self::encode_shape(program, &self.schedule, &mut words);
        words
    }

    fn encode_shape(program: &CompiledProgram, schedule: &[Segment], out: &mut Vec<u64>) {
        for dt in &program.dtypes {
            out.push(dt.name().len() as u64);
            for b in dt.name().bytes() {
                out.push(u64::from(b));
            }
        }
        for kind in &program.kinds {
            out.push(u64::MAX); // kind separator
            for instr in &kind.instrs {
                instr.encode(out);
            }
        }
        out.push(u64::MAX - 1); // schedule separator
        for seg in schedule {
            out.push((u64::from(seg.kind) << 1) | u64::from(seg.tick_after));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_effects_are_consistent_with_arity() {
        assert_eq!(Instr::Const(1.0).stack_effect(), 1);
        assert_eq!(Instr::Add.stack_effect(), -1);
        assert_eq!(Instr::Select.stack_effect(), -2);
        assert_eq!(Instr::Store(SignalId::from_raw(0)).stack_effect(), -1);
    }

    #[test]
    fn fingerprint_distinguishes_schedules_and_instrs() {
        let program = CompiledProgram {
            kinds: vec![CycleKind {
                instrs: vec![Instr::Const(1.0), Instr::Store(SignalId::from_raw(0))],
                max_stack: 1,
            }],
            dtypes: Vec::new(),
        };
        let a = BoundTrace {
            schedule: vec![Segment {
                kind: 0,
                tick_after: true,
            }],
            ..BoundTrace::default()
        };
        let mut b = a.clone();
        b.schedule.push(Segment {
            kind: 0,
            tick_after: false,
        });
        assert_ne!(a.fingerprint(&program), b.fingerprint(&program));

        let mut program2 = program.clone();
        program2.kinds[0].instrs[0] = Instr::Const(2.0);
        assert_ne!(a.fingerprint(&program), a.fingerprint(&program2));
        // Inputs do not affect the shape.
        let mut c = a.clone();
        c.inputs.push(InputSample {
            flt: 1.0,
            fix: 1.0,
            itv: Interval::point(1.0),
        });
        assert_eq!(a.fingerprint(&program), c.fingerprint(&program));
    }
}
