//! Waveform tracing (VCD dump).
//!
//! The paper's environment is a full simulation engine; waveform inspection
//! is part of the designer loop. [`Trace`] samples the float and fixed
//! paths of selected signals each clock cycle and writes an IEEE-1364 VCD
//! file with `real` variables, viewable in GTKWave and friends. The
//! float/fixed pair of one signal makes quantization effects directly
//! visible on screen.

use std::io::{self, Write};

use crate::design::{Design, SignalId};

/// A sampled waveform recorder for one [`Design`].
///
/// # Example
///
/// ```
/// use fixref_sim::{Design, Trace};
///
/// let d = Design::new();
/// let a = d.sig("a");
/// let mut tr = Trace::all(&d);
/// for i in 0..4 {
///     a.set(i as f64 * 0.25);
///     tr.sample(&d);
///     d.tick();
/// }
/// let mut vcd = Vec::new();
/// tr.write_vcd(&mut vcd).expect("in-memory write cannot fail");
/// let text = String::from_utf8(vcd).expect("vcd is ascii");
/// assert!(text.contains("$var real"));
/// assert!(text.contains("a_flt"));
/// ```
#[derive(Debug, Clone)]
pub struct Trace {
    signals: Vec<(SignalId, String)>,
    /// One entry per sample: (cycle, per-signal (flt, fix)).
    samples: Vec<(u64, Vec<(f64, f64)>)>,
}

impl Trace {
    /// Traces every signal currently declared in the design.
    pub fn all(design: &Design) -> Self {
        let signals = design
            .reports()
            .into_iter()
            .map(|r| (r.id, r.name))
            .collect();
        Trace {
            signals,
            samples: Vec::new(),
        }
    }

    /// Traces an explicit set of signals.
    pub fn of(design: &Design, ids: &[SignalId]) -> Self {
        let signals = ids.iter().map(|&id| (id, design.name_of(id))).collect();
        Trace {
            signals,
            samples: Vec::new(),
        }
    }

    /// Number of samples taken so far.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were taken.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Records the current value of every traced signal, stamped with the
    /// design's current cycle.
    pub fn sample(&mut self, design: &Design) {
        let row = self
            .signals
            .iter()
            .map(|&(id, _)| design.peek(id))
            .collect();
        self.samples.push((design.cycle(), row));
    }

    /// Writes the recorded samples as a VCD file with two `real` variables
    /// per signal: `<name>_flt` and `<name>_fix`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_vcd<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "$date fixref trace $end")?;
        writeln!(w, "$version fixref-sim $end")?;
        writeln!(w, "$timescale 1 ns $end")?;
        writeln!(w, "$scope module design $end")?;
        for (i, (_, name)) in self.signals.iter().enumerate() {
            let clean = sanitize(name);
            writeln!(w, "$var real 64 {} {}_flt $end", code(2 * i), clean)?;
            writeln!(w, "$var real 64 {} {}_fix $end", code(2 * i + 1), clean)?;
        }
        writeln!(w, "$upscope $end")?;
        writeln!(w, "$enddefinitions $end")?;
        for (t, row) in &self.samples {
            writeln!(w, "#{t}")?;
            for (i, (flt, fix)) in row.iter().enumerate() {
                writeln!(w, "r{} {}", flt, code(2 * i))?;
                writeln!(w, "r{} {}", fix, code(2 * i + 1))?;
            }
        }
        Ok(())
    }
}

/// VCD identifier code for variable `i`: base-94 over the printable ASCII
/// range `!`..=`~`.
fn code(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

/// VCD variable names must be non-empty printable ASCII with no
/// whitespace; `$` starts VCD keywords and brackets denote bit selects,
/// so both would corrupt the header. Map every offender to `_`.
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| match c {
            '[' | ']' | '$' | '\\' => '_',
            c if c.is_ascii_graphic() => c,
            _ => '_', // whitespace, control chars, non-ASCII
        })
        .collect();
    if out.is_empty() {
        out.push('_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let c = code(i);
            assert!(c.chars().all(|ch| ('!'..='~').contains(&ch)));
            assert!(seen.insert(c), "duplicate code for {i}");
        }
    }

    #[test]
    fn sanitize_brackets_and_spaces() {
        assert_eq!(sanitize("v[3]"), "v_3_");
        assert_eq!(sanitize("a b"), "a_b");
        assert_eq!(sanitize("plain"), "plain");
    }

    #[test]
    fn sanitize_keywords_controls_and_non_ascii() {
        assert_eq!(sanitize("clk$end"), "clk_end");
        assert_eq!(sanitize("a\tb\nc"), "a_b_c");
        assert_eq!(sanitize("path\\sig"), "path_sig");
        assert_eq!(sanitize("t\u{e4}u"), "t_u"); // non-ASCII mapped away
        assert_eq!(sanitize(""), "_");
        for bad in ["x y", "q$", "t\u{7f}", "caf\u{e9}"] {
            let clean = sanitize(bad);
            assert!(!clean.is_empty());
            assert!(clean.chars().all(|c| c.is_ascii_graphic()));
            assert!(!clean.contains('$') && !clean.contains('\\'));
        }
    }

    #[test]
    fn trace_records_cycles_and_values() {
        let d = Design::new();
        let a = d.sig("a");
        let b = d.reg("b[0]");
        let mut tr = Trace::all(&d);
        assert!(tr.is_empty());
        a.set(1.5);
        b.set(2.5);
        tr.sample(&d);
        d.tick();
        tr.sample(&d);
        assert_eq!(tr.len(), 2);

        let mut out = Vec::new();
        tr.write_vcd(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("$enddefinitions"));
        assert!(text.contains("a_flt"));
        assert!(text.contains("b_0__fix"));
        assert!(text.contains("#0"));
        assert!(text.contains("#1"));
        assert!(text.contains("r1.5"));
        // Register committed only after the tick.
        assert!(text.contains("r2.5"));
    }

    #[test]
    fn trace_of_subset() {
        let d = Design::new();
        let a = d.sig("a");
        let _b = d.sig("b");
        let mut tr = Trace::of(&d, &[d.find("a").unwrap()]);
        a.set(1.0);
        tr.sample(&d);
        let mut out = Vec::new();
        tr.write_vcd(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("a_flt"));
        assert!(!text.contains("b_flt"));
    }

    #[test]
    fn sampling_does_not_skew_read_counters() {
        let d = Design::new();
        let a = d.sig("a");
        a.set(1.0);
        let mut tr = Trace::all(&d);
        tr.sample(&d);
        tr.sample(&d);
        assert_eq!(d.report_for(&a).reads, 0);
    }
}
