//! The dual-path expression value.
//!
//! [`Value`] is what [`Sig::get`](crate::Sig::get) returns and what the
//! overloaded operators combine. It carries, side by side (paper Fig. 2/3):
//!
//! * `flt` — the floating-point reference value;
//! * `fix` — the fixed-point path value (still an `f64`: per the paper
//!   "all operations are performed with floating point arithmetic. Only
//!   when assigning a signal, the quantization is performed");
//! * `itv` — the propagated worst-case range (quasi-analytical method);
//! * `expr` — an optional expression trace for signal-flow-graph
//!   extraction (only built while the design records its graph).
//!
//! Relational decisions are evaluated **uniformly on the fixed-point
//! path** ([`Value::is_positive`], [`Value::gt`] …) so that the float
//! reference takes the same control decisions — the paper's key trick to
//! keep error statistics meaningful through data-dependent control.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};
use std::rc::Rc;

use fixref_fixed::{quantize, DType, FixError, Interval, OverflowError, OverflowMode};

use crate::design::SignalId;

/// Expression-trace operator set (a subset of [`crate::graph::Op`] built
/// during evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ExprOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
    /// Intermediate cast (quantization) — carries the dtype separately.
    Cast,
    /// Fixed-path-steered selection: `args = [cond, then, else]`.
    Select,
}

/// Expression trace node.
#[derive(Debug, Clone)]
pub(crate) struct ExprNode {
    pub op: ExprOp,
    pub args: Vec<Expr>,
    /// Only used by `Cast`.
    pub dtype: Option<DType>,
}

/// Expression trace: absent (`Off`) when graph recording is disabled, so
/// the dual simulation allocates nothing per operation.
#[derive(Debug, Clone, Default)]
pub(crate) enum Expr {
    /// Recording disabled — propagates through every operator for free.
    #[default]
    Off,
    /// A literal constant.
    Const(f64),
    /// A read of a signal's current value.
    Read(SignalId),
    /// An interior operator node (cheaply clonable).
    Node(Rc<ExprNode>),
}

impl Expr {
    fn is_off(&self) -> bool {
        matches!(self, Expr::Off)
    }

    /// Materializes a non-recording operand as the constant it currently
    /// holds, so literals (`Value::from(1.0)`) mixed into recorded
    /// expressions appear as `Const` leaves instead of poisoning the
    /// whole trace.
    fn or_const(self, value: f64) -> Expr {
        if self.is_off() {
            Expr::Const(value)
        } else {
            self
        }
    }

    /// Builds an operator node from `(expr, fixed value)` operand pairs.
    /// The node records as long as *any* operand records; a value built
    /// purely from literals stays `Off` (nothing upstream to trace).
    fn node(op: ExprOp, args: Vec<(Expr, f64)>, dtype: Option<DType>) -> Expr {
        if args.iter().all(|(e, _)| e.is_off()) {
            Expr::Off
        } else {
            Expr::Node(Rc::new(ExprNode {
                op,
                args: args.into_iter().map(|(e, v)| e.or_const(v)).collect(),
                dtype,
            }))
        }
    }
}

/// A dual-path (float + fixed + range) expression value.
///
/// Produced by [`Sig::get`](crate::Sig::get) and literals
/// (`Value::from(1.5)`), combined by the arithmetic operators, consumed by
/// [`Sig::set`](crate::Sig::set).
///
/// # Example
///
/// ```
/// use fixref_sim::Value;
///
/// let a = Value::from(0.5);
/// let b = Value::from(-2.0);
/// let c = a * b + Value::from(1.0);
/// assert_eq!(c.flt(), 0.0);
/// assert_eq!(c.fix(), 0.0);
/// assert!(!c.is_positive());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Value {
    flt: f64,
    fix: f64,
    itv: Interval,
    expr: Expr,
}

impl Value {
    /// Builds a value with explicit float and fixed components (used by the
    /// design when reading signals; mostly useful in tests).
    pub fn with_paths(flt: f64, fix: f64, itv: Interval) -> Self {
        Value {
            flt,
            fix,
            itv,
            expr: Expr::Off,
        }
    }

    pub(crate) fn from_signal(
        flt: f64,
        fix: f64,
        itv: Interval,
        id: SignalId,
        record: bool,
    ) -> Self {
        Value {
            flt,
            fix,
            itv,
            expr: if record { Expr::Read(id) } else { Expr::Off },
        }
    }

    pub(crate) fn constant(c: f64, record: bool) -> Self {
        Value {
            flt: c,
            fix: c,
            itv: Interval::point(c),
            expr: if record { Expr::Const(c) } else { Expr::Off },
        }
    }

    pub(crate) fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The floating-point reference value.
    pub fn flt(&self) -> f64 {
        self.flt
    }

    /// The fixed-point path value.
    pub fn fix(&self) -> f64 {
        self.fix
    }

    /// The propagated worst-case range.
    pub fn interval(&self) -> Interval {
        self.itv
    }

    /// The current float-vs-fixed difference carried by this value.
    pub fn error(&self) -> f64 {
        self.flt - self.fix
    }

    /// Intermediate quantization — the paper's explicit `cast` operator for
    /// results that are quantized *before* being assigned (§2.2).
    ///
    /// Only the fixed path is quantized; the float reference flows on
    /// unchanged. A saturating cast also clamps the propagated range.
    pub fn cast(self, dtype: &DType) -> Value {
        let q = quantize(self.fix, dtype);
        let itv = if self.itv.is_empty() {
            self.itv
        } else {
            match dtype.overflow() {
                fixref_fixed::OverflowMode::Saturate => {
                    self.itv.clamp_to(&Interval::from_dtype(dtype))
                }
                _ => self.itv,
            }
        };
        let fix_in = self.fix;
        Value {
            flt: self.flt,
            fix: q.value,
            itv,
            expr: Expr::node(ExprOp::Cast, vec![(self.expr, fix_in)], Some(dtype.clone())),
        }
    }

    /// Fallible form of [`Value::cast`] for types in
    /// [`OverflowMode::Error`]: instead of silently clamping and letting
    /// the monitoring layer count the overflow, it returns
    /// [`FixError::Overflow`] so the caller can reject bad user input at
    /// the expression level. Types in wrap or saturate mode never fail.
    pub fn try_cast(self, dtype: &DType) -> Result<Value, FixError> {
        if dtype.overflow() == OverflowMode::Error {
            let q = quantize(self.fix, dtype);
            if q.overflowed {
                return Err(FixError::Overflow(OverflowError {
                    value: self.fix,
                    min: dtype.min_value(),
                    max: dtype.max_value(),
                    dtype: dtype.name().to_string(),
                }));
            }
        }
        Ok(self.cast(dtype))
    }

    /// Absolute value on both paths.
    pub fn abs(self) -> Value {
        Value {
            flt: self.flt.abs(),
            fix: self.fix.abs(),
            itv: self.itv.abs(),
            expr: Expr::node(ExprOp::Abs, vec![(self.expr, self.fix)], None),
        }
    }

    /// Elementwise minimum on both paths.
    pub fn min(self, rhs: Value) -> Value {
        Value {
            flt: self.flt.min(rhs.flt),
            fix: self.fix.min(rhs.fix),
            itv: self.itv.min(&rhs.itv),
            expr: Expr::node(
                ExprOp::Min,
                vec![(self.expr, self.fix), (rhs.expr, rhs.fix)],
                None,
            ),
        }
    }

    /// Elementwise maximum on both paths.
    pub fn max(self, rhs: Value) -> Value {
        Value {
            flt: self.flt.max(rhs.flt),
            fix: self.fix.max(rhs.fix),
            itv: self.itv.max(&rhs.itv),
            expr: Expr::node(
                ExprOp::Max,
                vec![(self.expr, self.fix), (rhs.expr, rhs.fix)],
                None,
            ),
        }
    }

    /// Fixed-path-steered selection: returns `then_v` when the **fixed**
    /// value of `self` is strictly positive, else `else_v` — on *both*
    /// paths, so the float reference takes the same branch (paper §4.2).
    ///
    /// The propagated range is the union of both branches and the
    /// expression trace keeps both, so the analytical method covers
    /// whichever branch the stimuli did not trigger.
    pub fn select_positive(self, then_v: Value, else_v: Value) -> Value {
        let take_then = self.fix > 0.0;
        Value {
            flt: if take_then { then_v.flt } else { else_v.flt },
            fix: if take_then { then_v.fix } else { else_v.fix },
            itv: then_v.itv.union(&else_v.itv),
            expr: Expr::node(
                ExprOp::Select,
                vec![
                    (self.expr, self.fix),
                    (then_v.expr, then_v.fix),
                    (else_v.expr, else_v.fix),
                ],
                None,
            ),
        }
    }

    /// Whether the fixed-path value is strictly positive — the uniform
    /// relational decision for both simulations.
    pub fn is_positive(&self) -> bool {
        self.fix > 0.0
    }

    /// Whether the fixed-path value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.fix < 0.0
    }

    /// Fixed-path `>` comparison.
    pub fn gt(&self, rhs: &Value) -> bool {
        self.fix > rhs.fix
    }

    /// Fixed-path `>=` comparison.
    pub fn ge(&self, rhs: &Value) -> bool {
        self.fix >= rhs.fix
    }

    /// Fixed-path `<` comparison.
    pub fn lt(&self, rhs: &Value) -> bool {
        self.fix < rhs.fix
    }

    /// Fixed-path `<=` comparison.
    pub fn le(&self, rhs: &Value) -> bool {
        self.fix <= rhs.fix
    }
}

impl From<f64> for Value {
    /// A constant: both paths carry `c`, range is the point `[c, c]`.
    fn from(c: f64) -> Self {
        Value::constant(c, false)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flt={} fix={} itv={}", self.flt, self.fix, self.itv)
    }
}

macro_rules! binop {
    ($trait:ident, $method:ident, $op:tt, $exprop:expr, $itv:expr) => {
        impl $trait for Value {
            type Output = Value;
            fn $method(self, rhs: Value) -> Value {
                let itv: fn(Interval, Interval) -> Interval = $itv;
                Value {
                    flt: self.flt $op rhs.flt,
                    fix: self.fix $op rhs.fix,
                    itv: itv(self.itv, rhs.itv),
                    expr: Expr::node(
                        $exprop,
                        vec![(self.expr, self.fix), (rhs.expr, rhs.fix)],
                        None,
                    ),
                }
            }
        }

        impl $trait<f64> for Value {
            type Output = Value;
            fn $method(self, rhs: f64) -> Value {
                let recording = !matches!(self.expr, Expr::Off);
                self $op Value::constant(rhs, recording)
            }
        }

        impl $trait<Value> for f64 {
            type Output = Value;
            fn $method(self, rhs: Value) -> Value {
                Value::constant(self, !matches!(rhs.expr, Expr::Off)) $op rhs
            }
        }
    };
}

binop!(Add, add, +, ExprOp::Add, |a, b| a + b);
binop!(Sub, sub, -, ExprOp::Sub, |a, b| a - b);
binop!(Mul, mul, *, ExprOp::Mul, |a, b| a * b);
binop!(Div, div, /, ExprOp::Div, |a, b| a / b);

impl Neg for Value {
    type Output = Value;
    fn neg(self) -> Value {
        Value {
            flt: -self.flt,
            fix: -self.fix,
            itv: -self.itv,
            expr: Expr::node(ExprOp::Neg, vec![(self.expr, self.fix)], None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixref_fixed::{OverflowMode, RoundingMode, Signedness};

    fn v(flt: f64, fix: f64) -> Value {
        Value::with_paths(flt, fix, Interval::new(flt.min(fix), flt.max(fix)))
    }

    #[test]
    fn constants_have_point_intervals() {
        let c = Value::from(1.5);
        assert_eq!(c.flt(), 1.5);
        assert_eq!(c.fix(), 1.5);
        assert_eq!(c.interval(), Interval::point(1.5));
        assert_eq!(c.error(), 0.0);
    }

    #[test]
    fn arithmetic_tracks_both_paths_independently() {
        let a = v(1.0, 0.9);
        let b = v(2.0, 2.1);
        let s = a.clone() + b.clone();
        assert_eq!(s.flt(), 3.0);
        assert!((s.fix() - 3.0).abs() < 0.2);
        assert_eq!(s.fix(), 0.9 + 2.1);

        let d = a.clone() - b.clone();
        assert_eq!(d.flt(), -1.0);
        assert!((d.fix() - (0.9 - 2.1)).abs() < 1e-15);

        let p = a.clone() * b.clone();
        assert_eq!(p.flt(), 2.0);
        assert!((p.fix() - 0.9 * 2.1).abs() < 1e-15);

        let q = a / b;
        assert_eq!(q.flt(), 0.5);
        assert!((q.fix() - 0.9 / 2.1).abs() < 1e-15);
    }

    #[test]
    fn scalar_mixed_operands() {
        let a = v(1.0, 0.9);
        assert_eq!((a.clone() + 1.0).flt(), 2.0);
        assert_eq!((1.0 + a.clone()).fix(), 1.9);
        assert_eq!((a.clone() * 2.0).flt(), 2.0);
        assert_eq!((2.0 * a.clone()).fix(), 1.8);
        assert_eq!((a.clone() - 0.5).flt(), 0.5);
        assert_eq!((3.0 - a.clone()).fix(), 2.1);
        assert_eq!((a.clone() / 2.0).flt(), 0.5);
        assert_eq!((1.8 / a).fix(), 2.0);
    }

    #[test]
    fn interval_propagates_through_ops() {
        let a = Value::with_paths(0.0, 0.0, Interval::new(-1.0, 2.0));
        let b = Value::with_paths(0.0, 0.0, Interval::new(-3.0, 0.5));
        assert_eq!((a.clone() + b.clone()).interval(), Interval::new(-4.0, 2.5));
        assert_eq!((a.clone() - b.clone()).interval(), Interval::new(-1.5, 5.0));
        assert_eq!((a.clone() * b).interval(), Interval::new(-6.0, 3.0));
        assert_eq!((-a).interval(), Interval::new(-2.0, 1.0));
    }

    #[test]
    fn error_is_float_minus_fixed() {
        let a = v(1.0, 0.9375);
        assert!((a.error() - 0.0625).abs() < 1e-15);
        let s = a + v(0.0, 0.0);
        assert!((s.error() - 0.0625).abs() < 1e-15);
    }

    #[test]
    fn comparisons_use_fixed_path() {
        // flt says positive, fix says negative: fixed path must win.
        let a = v(0.1, -0.1);
        assert!(!a.is_positive());
        assert!(a.is_negative());
        let b = v(-5.0, 0.0);
        assert!(a.lt(&b));
        assert!(b.gt(&a));
        assert!(b.ge(&b));
        assert!(a.le(&a));
    }

    #[test]
    fn select_positive_steers_both_paths_by_fixed() {
        let cond = v(1.0, -1.0); // float positive, fixed negative
        let then_v = v(10.0, 10.0);
        let else_v = v(-10.0, -10.0);
        let out = cond.select_positive(then_v, else_v);
        // Fixed path is negative, so BOTH paths take the else branch.
        assert_eq!(out.flt(), -10.0);
        assert_eq!(out.fix(), -10.0);
        // Range covers both branches regardless.
        assert!(out.interval().contains(10.0));
        assert!(out.interval().contains(-10.0));
    }

    #[test]
    fn abs_min_max() {
        let a = v(-2.0, -2.5);
        assert_eq!(a.clone().abs().flt(), 2.0);
        assert_eq!(a.clone().abs().fix(), 2.5);
        let b = v(1.0, 1.0);
        assert_eq!(a.clone().min(b.clone()).flt(), -2.0);
        assert_eq!(a.clone().max(b.clone()).fix(), 1.0);
    }

    #[test]
    fn cast_quantizes_only_fixed_path() {
        let t = DType::tc("t", 7, 5).unwrap();
        let a = v(0.7, 0.7);
        let c = a.cast(&t);
        assert_eq!(c.flt(), 0.7);
        assert_eq!(c.fix(), 22.0 / 32.0);
    }

    #[test]
    fn try_cast_rejects_overflow_in_error_mode() {
        let t = DType::new(
            "t_err",
            4,
            2,
            Signedness::TwosComplement,
            OverflowMode::Error,
            RoundingMode::Round,
        )
        .unwrap();
        // In range: behaves exactly like cast.
        let ok = v(0.5, 0.5).try_cast(&t).unwrap();
        assert_eq!(ok.fix(), 0.5);
        // Out of range: a FixError instead of a silent clamp.
        let err = v(100.0, 100.0).try_cast(&t).unwrap_err();
        match err {
            fixref_fixed::FixError::Overflow(o) => {
                assert_eq!(o.value, 100.0);
                assert_eq!(o.dtype, "t_err");
            }
            other => panic!("expected overflow, got {other}"),
        }
        // Saturate mode never fails, even far out of range.
        let sat = t.with_overflow(OverflowMode::Saturate);
        assert!(v(100.0, 100.0).try_cast(&sat).is_ok());
    }

    #[test]
    fn exploded_interval_arithmetic_does_not_poison_values() {
        // Regression: subtracting two range-exploded values produces the
        // indeterminate ∞−∞ on both interval bounds; that used to panic
        // deep in Interval::new. It must instead stay conservatively
        // unbounded so range explosion is reported, not crashed on.
        let a = Value::with_paths(1.0, 1.0, Interval::UNBOUNDED);
        let b = Value::with_paths(2.0, 2.0, Interval::UNBOUNDED);
        let d = a - b;
        assert_eq!(d.interval(), Interval::UNBOUNDED);
        assert!(d.interval().abs().hi.is_infinite());
    }

    #[test]
    fn saturating_cast_clamps_interval() {
        let t = DType::new(
            "t",
            7,
            5,
            Signedness::TwosComplement,
            OverflowMode::Saturate,
            RoundingMode::Round,
        )
        .unwrap();
        let wide = Value::with_paths(0.0, 0.0, Interval::new(-40.0, 40.0));
        let c = wide.cast(&t);
        assert!(c.interval().hi <= t.max_value());
        assert!(c.interval().lo >= t.min_value());
        // Wrap cast does not clamp.
        let t_wrap = t.with_overflow(OverflowMode::Wrap);
        let wide = Value::with_paths(0.0, 0.0, Interval::new(-40.0, 40.0));
        assert_eq!(wide.cast(&t_wrap).interval(), Interval::new(-40.0, 40.0));
    }

    #[test]
    fn expr_off_propagates_without_allocation() {
        let a = Value::from(1.0);
        let b = Value::from(2.0);
        let c = a * b + 3.0;
        assert!(matches!(c.expr, Expr::Off));
    }

    #[test]
    fn expr_recording_builds_nodes() {
        let a = Value::constant(1.0, true);
        let b = Value::constant(2.0, true);
        let c = a * b;
        match &c.expr {
            Expr::Node(n) => {
                assert_eq!(n.op, ExprOp::Mul);
                assert_eq!(n.args.len(), 2);
            }
            other => panic!("expected node, got {other:?}"),
        }
        // Mixing with scalar keeps recording on.
        let d = c + 1.0;
        assert!(matches!(d.expr, Expr::Node(_)));
    }

    #[test]
    fn default_value_is_zeroish() {
        let v = Value::default();
        assert_eq!(v.flt(), 0.0);
        assert_eq!(v.fix(), 0.0);
        assert!(v.interval().is_empty());
    }

    #[test]
    fn display_mentions_both_paths() {
        let s = v(1.0, 0.5).to_string();
        assert!(s.contains("flt=1"));
        assert!(s.contains("fix=0.5"));
    }
}
