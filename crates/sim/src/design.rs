//! The design registry and signal handles.
//!
//! A [`Design`] owns every signal of a processor description. Handles
//! ([`Sig`], [`Reg`], [`SigArray`], [`RegArray`]) are cheap `Rc` clones
//! into the shared registry, so a model struct can keep its handles while
//! the refinement flow keeps the [`Design`].
//!
//! Every assignment through a handle performs, in one pass (paper Fig. 2):
//! quantization (if the signal has a [`DType`]), statistic range
//! monitoring, quasi-analytical range propagation, consumed/produced error
//! statistics, optional `error()` injection, and signal-flow-graph
//! recording.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use fixref_fixed::{
    quantize, DType, ErrorStats, FixError, Interval, OverflowMode, RangeStats, Rng64,
};
use fixref_obs::{Event, Recorder};

use crate::graph::Graph;
use crate::report::SignalReport;
use crate::tape::{BoundTrace, CompiledProgram, ExecTrace, InputSample, Instr, TraceStep};
use crate::value::Value;

/// Stable identifier of a signal within its [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// Constructs an id from its raw index. Only ids obtained from the
    /// owning [`Design`] are meaningful; this constructor exists for
    /// serialization and test interop.
    pub fn from_raw(raw: u32) -> Self {
        SignalId(raw)
    }

    /// The raw index.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Wire vs. clocked register semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalKind {
    /// Combinational: [`Sig::set`] takes effect immediately.
    Wire,
    /// Clocked: [`Reg::set`] takes effect at the next [`Design::tick`].
    Register,
}

/// An overflow observed on a signal whose type uses
/// [`OverflowMode::Error`].
#[derive(Debug, Clone, PartialEq)]
pub struct OverflowEvent {
    /// The overflowing signal.
    pub signal: SignalId,
    /// Its name.
    pub name: String,
    /// The unquantized value that did not fit.
    pub value: f64,
    /// The clock cycle (tick count) at which it happened.
    pub cycle: u64,
}

impl fmt::Display for OverflowEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "overflow on {} (value {} at cycle {})",
            self.name, self.value, self.cycle
        )
    }
}

#[derive(Debug)]
struct SignalState {
    name: String,
    kind: SignalKind,
    dtype: Option<DType>,
    flt: f64,
    fix: f64,
    next: Option<(f64, f64)>,
    range_override: Option<Interval>,
    error_override: Option<f64>,
    prop: Interval,
    stat: RangeStats,
    consumed: ErrorStats,
    produced: ErrorStats,
    overflows: u64,
    reads: u64,
    writes: u64,
    /// Finest LSB position needed to represent every assigned (quantized)
    /// value exactly: `Some(l)` means every value was `m·2^l`. `None`
    /// until a nonzero value arrives, or forever once a value needed an
    /// LSB below the practical window (every finite `f64` is dyadic; the
    /// window caps the search).
    granularity: Option<i32>,
    non_dyadic: bool,
    /// Passive signals execute normally (values, quantization, range
    /// propagation, RNG draws) but do not touch their own monitors —
    /// the incremental engine splices cached stats for them instead.
    passive: bool,
}

impl SignalState {
    fn new(name: String, kind: SignalKind, dtype: Option<DType>) -> Self {
        let prop = initial_prop(&dtype);
        SignalState {
            name,
            kind,
            dtype,
            flt: 0.0,
            fix: 0.0,
            next: None,
            range_override: None,
            error_override: None,
            prop,
            stat: RangeStats::new(),
            consumed: ErrorStats::new(),
            produced: ErrorStats::new(),
            overflows: 0,
            reads: 0,
            writes: 0,
            granularity: None,
            non_dyadic: false,
            passive: false,
        }
    }
}

/// The dyadic LSB position of `v`: the `l` with `v = m·2^l`, `m` odd —
/// read directly from the IEEE-754 encoding (exponent plus trailing
/// zeros of the mantissa). `None` for zero, non-finite values, and
/// positions below the practical −128 window.
fn dyadic_lsb(v: f64) -> Option<i32> {
    if v == 0.0 || !v.is_finite() {
        return None;
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7FF) as i32;
    let frac = bits & ((1u64 << 52) - 1);
    let (mantissa, e) = if exp == 0 {
        (frac, -1074) // subnormal
    } else {
        (frac | (1u64 << 52), exp - 1075)
    };
    let l = e + mantissa.trailing_zeros() as i32;
    if l < -128 {
        None
    } else {
        Some(l)
    }
}

/// Plain-data snapshot of one signal's monitoring state — everything the
/// refinement analyses consume. Unlike [`Design`] (which is deliberately
/// not `Send`), a `SignalStats` is `Send + Sync`, so shard threads can
/// hand their results back to the master for merging.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalStats {
    /// Signal name — the merge key across shard designs.
    pub name: String,
    /// Statistic range monitor (fixed path).
    pub stat: RangeStats,
    /// Quasi-analytical propagated range.
    pub prop: Interval,
    /// Consumed (pre-assignment) float−fix error statistics.
    pub consumed: ErrorStats,
    /// Produced (post-assignment) float−fix error statistics.
    pub produced: ErrorStats,
    /// Number of quantization overflows observed.
    pub overflows: u64,
    /// Read count.
    pub reads: u64,
    /// Write count.
    pub writes: u64,
    /// Finest dyadic LSB any assigned value used, when all were dyadic.
    pub granularity: Option<i32>,
    /// Whether a value fell below the dyadic tracking window.
    pub non_dyadic: bool,
}

/// Plain-data snapshot of one signal's refinement annotations (type,
/// range pin, error model). The sweep engine snapshots the master
/// design's annotations each iteration and re-applies them by name to
/// every freshly built shard design, so all shards simulate the same
/// intermediate refinement state.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalAnnotation {
    /// Signal name — the application key.
    pub name: String,
    /// Fixed-point type, if decided.
    pub dtype: Option<DType>,
    /// Explicit range annotation, if pinned.
    pub range: Option<Interval>,
    /// Explicit produced-error sigma, if modeled.
    pub error_sigma: Option<f64>,
}

/// A name in a shard snapshot did not resolve in the receiving design —
/// the two designs were not built from the same description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownSignalError {
    /// The unresolved signal name.
    pub name: String,
}

impl fmt::Display for UnknownSignalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown signal {:?} in this design", self.name)
    }
}

impl std::error::Error for UnknownSignalError {}

/// A typed signal's propagated range starts from its type's representable
/// range ("when declaring signals with type information their range is
/// automatically determined" — paper §4.1); untyped signals start empty.
fn initial_prop(dtype: &Option<DType>) -> Interval {
    dtype
        .as_ref()
        .map(Interval::from_dtype)
        .unwrap_or(Interval::EMPTY)
}

struct DesignInner {
    signals: Vec<SignalState>,
    names: HashMap<String, SignalId>,
    rng: Rng64,
    seed: u64,
    cycle: u64,
    recording: bool,
    graph: Graph,
    overflow_events: Vec<OverflowEvent>,
    /// Cap on retained overflow events; further overflows only count.
    overflow_event_cap: usize,
    /// Signals whose annotations (type, range, error model) changed since
    /// the incremental engine last drained the set.
    dirty: BTreeSet<u32>,
    /// Author-asserted contract: every assignment executes unconditionally
    /// each cycle and every data-dependent decision goes through recorded
    /// dataflow (`select_positive` etc.), never Rust-level branching on
    /// fixed values. Required for dirty-cone partial re-simulation.
    static_schedule: bool,
    /// Optional observability sink: ticks, assignments, overflow and
    /// saturation counters, per-signal quantization-error histograms and
    /// `OverflowDetected` events all land here when attached.
    recorder: Option<Arc<dyn Recorder>>,
    /// When capturing (compiled-backend lowering), every assignment and
    /// tick appends a step here. Requires graph recording, which supplies
    /// the expression roots the steps refer to.
    capture: Option<CaptureBuf>,
}

/// In-flight capture state between [`Design::begin_capture`] and
/// [`Design::end_capture`].
struct CaptureBuf {
    /// Per-signal `(flt, fix)` at capture start.
    start: Vec<(f64, f64)>,
    steps: Vec<TraceStep>,
}

/// The signal registry and simulation clock of one processor description.
///
/// `Design` is a shared handle (cloning it aliases the same registry); all
/// methods take `&self` via interior mutability. It is intentionally
/// **not** `Send`: one design is one sequential simulation, as in the
/// paper's engine.
///
/// # Example
///
/// ```
/// use fixref_sim::Design;
///
/// let d = Design::new();
/// let a = d.reg("a");
/// a.set(1.0);
/// assert_eq!(a.get().flt(), 0.0); // registers update on tick
/// d.tick();
/// assert_eq!(a.get().flt(), 1.0);
/// ```
#[derive(Clone)]
pub struct Design {
    inner: Rc<RefCell<DesignInner>>,
}

impl fmt::Debug for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Design")
            .field("signals", &inner.signals.len())
            .field("cycle", &inner.cycle)
            .field("recording", &inner.recording)
            .finish()
    }
}

impl Default for Design {
    fn default() -> Self {
        Design::new()
    }
}

impl Design {
    /// Creates an empty design with the default error-injection seed.
    pub fn new() -> Self {
        Design::with_seed(0x5EED_F1C5)
    }

    /// Creates an empty design with an explicit seed for the `error()`
    /// injection RNG, for reproducible runs.
    pub fn with_seed(seed: u64) -> Self {
        Design {
            inner: Rc::new(RefCell::new(DesignInner {
                signals: Vec::new(),
                names: HashMap::new(),
                rng: Rng64::seed_from_u64(seed),
                seed,
                cycle: 0,
                recording: false,
                graph: Graph::new(),
                overflow_events: Vec::new(),
                overflow_event_cap: 1024,
                dirty: BTreeSet::new(),
                static_schedule: false,
                recorder: None,
                capture: None,
            })),
        }
    }

    /// Attaches an observability recorder. Once attached, every
    /// [`Design::tick`] increments `sim.ticks`, every assignment
    /// increments `sim.assignments`, overflow and saturation events
    /// increment `sim.overflows` / `sim.saturations`, per-signal
    /// quantization error lands in a `sim.quant_error.<name>` histogram,
    /// and overflows on [`OverflowMode::Error`] types are journaled as
    /// [`Event::OverflowDetected`]. Detach by attaching a fresh recorder
    /// or with [`Design::detach_recorder`]; simulation behavior is
    /// unchanged either way.
    pub fn attach_recorder(&self, recorder: Arc<dyn Recorder>) {
        self.inner.borrow_mut().recorder = Some(recorder);
    }

    /// Removes the attached recorder, if any.
    pub fn detach_recorder(&self) {
        self.inner.borrow_mut().recorder = None;
    }

    /// The currently attached recorder, if any.
    pub fn recorder(&self) -> Option<Arc<dyn Recorder>> {
        self.inner.borrow().recorder.clone()
    }

    fn add_signal(&self, name: &str, kind: SignalKind, dtype: Option<DType>) -> SignalId {
        match self.try_add_signal(name, kind, dtype) {
            Ok(id) => id,
            // The infallible constructors document this panic; paths that
            // take signal names from user input go through `try_*` instead.
            Err(e) => panic!("{e}"),
        }
    }

    fn try_add_signal(
        &self,
        name: &str,
        kind: SignalKind,
        dtype: Option<DType>,
    ) -> Result<SignalId, FixError> {
        let mut inner = self.inner.borrow_mut();
        if inner.names.contains_key(name) {
            return Err(FixError::DuplicateSignal {
                name: name.to_string(),
            });
        }
        let id = SignalId(inner.signals.len() as u32);
        inner.names.insert(name.to_string(), id);
        inner
            .signals
            .push(SignalState::new(name.to_string(), kind, dtype));
        inner.dirty.insert(id.0);
        Ok(id)
    }

    /// Declares a floating-point wire signal (paper: `sig a("a");`).
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken in this design.
    pub fn sig(&self, name: &str) -> Sig {
        Sig {
            design: self.clone(),
            id: self.add_signal(name, SignalKind::Wire, None),
        }
    }

    /// Declares a fixed-point wire signal (paper: `sig a("a", T1);`).
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken in this design.
    pub fn sig_typed(&self, name: &str, dtype: DType) -> Sig {
        Sig {
            design: self.clone(),
            id: self.add_signal(name, SignalKind::Wire, Some(dtype)),
        }
    }

    /// Declares a floating-point register (paper: `reg b("b");`).
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken in this design.
    pub fn reg(&self, name: &str) -> Reg {
        Reg {
            design: self.clone(),
            id: self.add_signal(name, SignalKind::Register, None),
        }
    }

    /// Declares a fixed-point register (paper: `reg b("b", T1);`).
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken in this design.
    pub fn reg_typed(&self, name: &str, dtype: DType) -> Reg {
        Reg {
            design: self.clone(),
            id: self.add_signal(name, SignalKind::Register, Some(dtype)),
        }
    }

    /// Fallible form of [`Design::sig`]: returns
    /// [`FixError::DuplicateSignal`] instead of panicking when the name is
    /// already taken — for signal names that come from user input
    /// (netlists, annotation files) rather than trusted model code.
    pub fn try_sig(&self, name: &str) -> Result<Sig, FixError> {
        Ok(Sig {
            design: self.clone(),
            id: self.try_add_signal(name, SignalKind::Wire, None)?,
        })
    }

    /// Fallible form of [`Design::sig_typed`].
    pub fn try_sig_typed(&self, name: &str, dtype: DType) -> Result<Sig, FixError> {
        Ok(Sig {
            design: self.clone(),
            id: self.try_add_signal(name, SignalKind::Wire, Some(dtype))?,
        })
    }

    /// Fallible form of [`Design::reg`].
    pub fn try_reg(&self, name: &str) -> Result<Reg, FixError> {
        Ok(Reg {
            design: self.clone(),
            id: self.try_add_signal(name, SignalKind::Register, None)?,
        })
    }

    /// Fallible form of [`Design::reg_typed`].
    pub fn try_reg_typed(&self, name: &str, dtype: DType) -> Result<Reg, FixError> {
        Ok(Reg {
            design: self.clone(),
            id: self.try_add_signal(name, SignalKind::Register, Some(dtype))?,
        })
    }

    /// Declares an array of floating-point wires named `name[0]` …
    /// `name[len-1]` (paper: `sigarray v("v", N);`).
    ///
    /// # Panics
    ///
    /// Panics if any element name is already taken.
    pub fn sig_array(&self, name: &str, len: usize) -> SigArray {
        SigArray {
            sigs: (0..len)
                .map(|i| self.sig(&format!("{name}[{i}]")))
                .collect(),
        }
    }

    /// Declares an array of fixed-point wires sharing one type.
    ///
    /// # Panics
    ///
    /// Panics if any element name is already taken.
    pub fn sig_array_typed(&self, name: &str, len: usize, dtype: DType) -> SigArray {
        SigArray {
            sigs: (0..len)
                .map(|i| self.sig_typed(&format!("{name}[{i}]"), dtype.clone()))
                .collect(),
        }
    }

    /// Declares an array of floating-point registers (paper:
    /// `regarray d("d", N);`).
    ///
    /// # Panics
    ///
    /// Panics if any element name is already taken.
    pub fn reg_array(&self, name: &str, len: usize) -> RegArray {
        RegArray {
            regs: (0..len)
                .map(|i| self.reg(&format!("{name}[{i}]")))
                .collect(),
        }
    }

    /// Declares an array of fixed-point registers sharing one type.
    ///
    /// # Panics
    ///
    /// Panics if any element name is already taken.
    pub fn reg_array_typed(&self, name: &str, len: usize, dtype: DType) -> RegArray {
        RegArray {
            regs: (0..len)
                .map(|i| self.reg_typed(&format!("{name}[{i}]"), dtype.clone()))
                .collect(),
        }
    }

    /// Advances the clock: every pending register assignment becomes
    /// visible and the cycle counter increments.
    pub fn tick(&self) {
        let mut inner = self.inner.borrow_mut();
        for st in &mut inner.signals {
            if let Some((flt, fix)) = st.next.take() {
                st.flt = flt;
                st.fix = fix;
            }
        }
        inner.cycle += 1;
        if let Some(cap) = &mut inner.capture {
            cap.steps.push(TraceStep::Tick);
        }
        if let Some(rec) = &inner.recorder {
            rec.inc("sim.ticks", 1);
        }
    }

    /// The current cycle (number of [`Design::tick`] calls).
    pub fn cycle(&self) -> u64 {
        self.inner.borrow().cycle
    }

    /// Enables or disables signal-flow-graph recording. Typically enabled
    /// for the first iteration of a stimulus loop only, since repeated
    /// executions intern to the same nodes anyway but cost allocations.
    pub fn record_graph(&self, on: bool) {
        self.inner.borrow_mut().recording = on;
    }

    /// Whether graph recording is currently enabled.
    pub fn is_recording(&self) -> bool {
        self.inner.borrow().recording
    }

    /// A snapshot of the recorded signal-flow graph.
    pub fn graph(&self) -> Graph {
        self.inner.borrow().graph.clone()
    }

    /// The design's error-injection RNG seed (reinstated by
    /// [`Design::reset_state`]).
    pub fn seed(&self) -> u64 {
        self.inner.borrow().seed
    }

    /// Starts capturing an execution trace for compiled-backend lowering:
    /// every subsequent assignment and tick is appended as a
    /// [`TraceStep`] until [`Design::end_capture`]. Capture requires
    /// graph recording ([`Design::record_graph`]) to be enabled for the
    /// captured run — assignments executed while recording is off are
    /// silently absent from the trace, which lowering rejects via its
    /// verification replay.
    pub fn begin_capture(&self) {
        let mut inner = self.inner.borrow_mut();
        let start = inner.signals.iter().map(|st| (st.flt, st.fix)).collect();
        inner.capture = Some(CaptureBuf {
            start,
            steps: Vec::new(),
        });
    }

    /// Stops capturing and returns the trace: the recorded steps, the
    /// current per-signal read counts and the current cycle count. The
    /// read and cycle totals are meaningful when the capture spanned one
    /// whole run that started from freshly reset statistics. Returns
    /// `None` if [`Design::begin_capture`] was not active.
    pub fn end_capture(&self) -> Option<ExecTrace> {
        let mut inner = self.inner.borrow_mut();
        let cap = inner.capture.take()?;
        let reads = inner.signals.iter().map(|st| st.reads).collect();
        Some(ExecTrace {
            start: cap.start,
            steps: cap.steps,
            reads,
            cycles: inner.cycle,
        })
    }

    /// Discards the recorded signal-flow graph.
    pub fn clear_graph(&self) {
        self.inner.borrow_mut().graph = Graph::new();
    }

    /// Number of declared signals.
    pub fn num_signals(&self) -> usize {
        self.inner.borrow().signals.len()
    }

    /// Looks a signal up by name.
    pub fn find(&self, name: &str) -> Option<SignalId> {
        self.inner.borrow().names.get(name).copied()
    }

    /// The name of a signal.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a signal of this design.
    pub fn name_of(&self, id: SignalId) -> String {
        self.inner.borrow().signals[id.0 as usize].name.clone()
    }

    /// The current type of a signal (`None` = floating point).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a signal of this design.
    pub fn dtype_of(&self, id: SignalId) -> Option<DType> {
        self.inner.borrow().signals[id.0 as usize].dtype.clone()
    }

    /// Sets or clears the type of a signal — how the refinement flow
    /// applies its decisions. Re-initializes the propagated range from the
    /// new type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a signal of this design.
    pub fn set_dtype(&self, id: SignalId, dtype: Option<DType>) {
        let mut inner = self.inner.borrow_mut();
        let st = &mut inner.signals[id.0 as usize];
        st.dtype = dtype;
        st.prop = initial_prop(&st.dtype);
        inner.dirty.insert(id.0);
    }

    /// Sets the explicit range annotation of a signal (the paper's
    /// `x.range(min, max)`), used to seed or pin down range propagation.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `id` is not a signal of this design.
    pub fn set_range(&self, id: SignalId, lo: f64, hi: f64) {
        let mut inner = self.inner.borrow_mut();
        inner.signals[id.0 as usize].range_override = Some(Interval::new(lo, hi));
        inner.dirty.insert(id.0);
    }

    /// Fallible form of [`Design::set_range`] for bounds that come from
    /// user input or search heuristics rather than trusted code: rejects
    /// NaN and inverted bounds with [`FixError::InvalidRange`] instead of
    /// panicking. The annotation is untouched on error.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a signal of this design.
    pub fn try_set_range(&self, id: SignalId, lo: f64, hi: f64) -> Result<(), FixError> {
        let itv = Interval::try_new(lo, hi)?;
        let mut inner = self.inner.borrow_mut();
        inner.signals[id.0 as usize].range_override = Some(itv);
        inner.dirty.insert(id.0);
        Ok(())
    }

    /// Removes the explicit range annotation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a signal of this design.
    pub fn clear_range(&self, id: SignalId) {
        let mut inner = self.inner.borrow_mut();
        inner.signals[id.0 as usize].range_override = None;
        inner.dirty.insert(id.0);
    }

    /// The explicit range annotation, if any.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a signal of this design.
    pub fn range_of(&self, id: SignalId) -> Option<Interval> {
        self.inner.borrow().signals[id.0 as usize].range_override
    }

    /// Sets the explicit produced-error annotation of a signal (the
    /// paper's `a.error(...)`): each assignment replaces the float path
    /// with `fix + U(-σ√3, σ√3)`, a zero-mean uniform error of standard
    /// deviation `sigma`. This breaks float/fixed divergence on sensitive
    /// feedback signals (paper §4.2).
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or `id` is not a signal of this
    /// design.
    pub fn set_error_sigma(&self, id: SignalId, sigma: f64) {
        assert!(sigma >= 0.0 && sigma.is_finite(), "invalid sigma {sigma}");
        let mut inner = self.inner.borrow_mut();
        inner.signals[id.0 as usize].error_override = Some(sigma);
        // Error injection draws from the design-wide RNG stream, so a new
        // error model shifts every subsequent draw: everything is dirty.
        Self::mark_all_dirty(&mut inner);
    }

    /// Fallible form of [`Design::set_error_sigma`]: rejects negative or
    /// non-finite sigmas with [`FixError::InvalidSigma`] instead of
    /// panicking. The annotation is untouched on error.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a signal of this design.
    pub fn try_set_error_sigma(&self, id: SignalId, sigma: f64) -> Result<(), FixError> {
        if !(sigma >= 0.0 && sigma.is_finite()) {
            return Err(FixError::InvalidSigma { sigma });
        }
        let mut inner = self.inner.borrow_mut();
        inner.signals[id.0 as usize].error_override = Some(sigma);
        Self::mark_all_dirty(&mut inner);
        Ok(())
    }

    /// Removes the explicit produced-error annotation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a signal of this design.
    pub fn clear_error(&self, id: SignalId) {
        let mut inner = self.inner.borrow_mut();
        inner.signals[id.0 as usize].error_override = None;
        Self::mark_all_dirty(&mut inner);
    }

    fn mark_all_dirty(inner: &mut DesignInner) {
        for i in 0..inner.signals.len() as u32 {
            inner.dirty.insert(i);
        }
    }

    /// The explicit produced-error annotation, if any.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a signal of this design.
    pub fn error_of(&self, id: SignalId) -> Option<f64> {
        self.inner.borrow().signals[id.0 as usize].error_override
    }

    /// Drains the recorded overflow events (signals with
    /// [`OverflowMode::Error`] types).
    pub fn take_overflow_events(&self) -> Vec<OverflowEvent> {
        std::mem::take(&mut self.inner.borrow_mut().overflow_events)
    }

    /// Copies the recorded overflow events without draining them — the
    /// incremental engine snapshots them into its cache after each run.
    pub fn peek_overflow_events(&self) -> Vec<OverflowEvent> {
        self.inner.borrow().overflow_events.clone()
    }

    /// Merges cached overflow events (from signals that were passive this
    /// run) with the live ones, restoring chronological order and the
    /// retention cap — so a partially re-simulated run carries the same
    /// event set a full run would have produced. The sort is stable, so
    /// same-cycle events keep live-before-cached order (the one detail a
    /// full interleaved run could decide differently).
    pub fn splice_overflow_events(&self, cached: Vec<OverflowEvent>) {
        let mut inner = self.inner.borrow_mut();
        inner.overflow_events.extend(cached);
        inner.overflow_events.sort_by_key(|e| e.cycle);
        let cap = inner.overflow_event_cap;
        inner.overflow_events.truncate(cap);
    }

    /// Drains the set of signals whose annotations changed since the last
    /// drain (every signal starts dirty at declaration).
    pub fn take_dirty(&self) -> Vec<SignalId> {
        let mut inner = self.inner.borrow_mut();
        std::mem::take(&mut inner.dirty)
            .into_iter()
            .map(SignalId)
            .collect()
    }

    /// The current dirty set without draining it — checkpoints capture it
    /// so a resumed flow replans exactly like the uninterrupted run.
    pub fn peek_dirty(&self) -> Vec<SignalId> {
        self.inner
            .borrow()
            .dirty
            .iter()
            .map(|&i| SignalId(i))
            .collect()
    }

    /// Re-marks signals dirty — the restore half of
    /// [`Design::peek_dirty`], used when resuming from a checkpoint (the
    /// blanket declaration/annotation dirt is drained first, then the
    /// checkpointed set is reinstated verbatim).
    pub fn mark_dirty(&self, ids: &[SignalId]) {
        let mut inner = self.inner.borrow_mut();
        for id in ids {
            inner.dirty.insert(id.0);
        }
    }

    /// Asserts the static-schedule contract: every signal is assigned
    /// unconditionally on its schedule regardless of data, and every
    /// data-dependent decision flows through recorded dataflow
    /// ([`Value::select_positive`](crate::Value::select_positive) etc.)
    /// rather than Rust-level branching on fixed values. Model
    /// constructors that satisfy this (e.g. the LMS equalizer) declare it
    /// to unlock dirty-cone partial re-simulation; designs with
    /// fixed-path-steered schedules (e.g. the timing loop's strobe) must
    /// not.
    pub fn declare_static_schedule(&self) {
        self.inner.borrow_mut().static_schedule = true;
    }

    /// Whether [`Design::declare_static_schedule`] was called.
    pub fn has_static_schedule(&self) -> bool {
        self.inner.borrow().static_schedule
    }

    /// Marks exactly the given signals passive (and every other signal
    /// active). Passive signals still simulate — values, quantization,
    /// range propagation and RNG draws are unchanged, so downstream
    /// signals see identical inputs — but skip their own monitors
    /// (statistics, counters, histograms, overflow events), which the
    /// incremental engine splices from cache instead.
    pub fn set_passive(&self, clean: &[SignalId]) {
        let mut inner = self.inner.borrow_mut();
        for st in &mut inner.signals {
            st.passive = false;
        }
        for id in clean {
            inner.signals[id.0 as usize].passive = true;
        }
    }

    /// Marks every signal active again.
    pub fn clear_passive(&self) {
        let mut inner = self.inner.borrow_mut();
        for st in &mut inner.signals {
            st.passive = false;
        }
    }

    /// Overwrites the monitors of the named signals with cached snapshots
    /// — the splice step after a passive (partial) re-simulation. Unlike
    /// [`Design::absorb_stats`] this *replaces* instead of merging.
    ///
    /// # Errors
    ///
    /// [`UnknownSignalError`] if a snapshot name does not exist here; the
    /// design is left unchanged in that case.
    pub fn splice_stats(&self, stats: &[SignalStats]) -> Result<(), UnknownSignalError> {
        let mut inner = self.inner.borrow_mut();
        let ids: Vec<usize> = stats
            .iter()
            .map(|s| {
                inner
                    .names
                    .get(&s.name)
                    .map(|id| id.0 as usize)
                    .ok_or_else(|| UnknownSignalError {
                        name: s.name.clone(),
                    })
            })
            .collect::<Result<_, _>>()?;
        for (s, idx) in stats.iter().zip(ids) {
            let st = &mut inner.signals[idx];
            st.stat = s.stat;
            st.prop = s.prop;
            st.consumed = s.consumed;
            st.produced = s.produced;
            st.overflows = s.overflows;
            st.reads = s.reads;
            st.writes = s.writes;
            st.granularity = s.granularity;
            st.non_dyadic = s.non_dyadic;
        }
        Ok(())
    }

    /// Resets every monitoring statistic (ranges, errors, counters,
    /// overflow events) while keeping values, types and annotations —
    /// called between refinement iterations.
    pub fn reset_stats(&self) {
        let mut inner = self.inner.borrow_mut();
        for st in &mut inner.signals {
            st.stat.reset();
            st.consumed.reset();
            st.produced.reset();
            st.prop = initial_prop(&st.dtype);
            st.overflows = 0;
            st.reads = 0;
            st.writes = 0;
            st.granularity = None;
            st.non_dyadic = false;
        }
        inner.overflow_events.clear();
    }

    /// Resets simulation state (signal values, pending register updates,
    /// the cycle counter and the error-injection RNG) while keeping types,
    /// annotations and statistics.
    pub fn reset_state(&self) {
        let mut inner = self.inner.borrow_mut();
        for st in &mut inner.signals {
            st.flt = 0.0;
            st.fix = 0.0;
            st.next = None;
        }
        inner.cycle = 0;
        inner.rng = Rng64::seed_from_u64(inner.seed);
    }

    /// Exports every signal's monitoring state as plain `Send` data, in
    /// declaration order — the shard side of the scenario-sweep merge.
    pub fn export_stats(&self) -> Vec<SignalStats> {
        let inner = self.inner.borrow();
        inner
            .signals
            .iter()
            .map(|st| SignalStats {
                name: st.name.clone(),
                stat: st.stat,
                prop: st.prop,
                consumed: st.consumed,
                produced: st.produced,
                overflows: st.overflows,
                reads: st.reads,
                writes: st.writes,
                granularity: st.granularity,
                non_dyadic: st.non_dyadic,
            })
            .collect()
    }

    /// Folds a shard's exported statistics into this design's monitors,
    /// matching signals by name: range/error statistics merge (Welford
    /// combination), propagated ranges union, counters add, and the
    /// dyadic-granularity tracker keeps the finest LSB (with `non_dyadic`
    /// sticky). Folding shard exports in scenario order over a freshly
    /// [`Design::reset_stats`] master yields exactly the monitors one
    /// sequential simulation of the concatenated scenarios would produce.
    ///
    /// # Errors
    ///
    /// [`UnknownSignalError`] if a snapshot name does not exist here; the
    /// design is left unchanged in that case.
    pub fn absorb_stats(&self, stats: &[SignalStats]) -> Result<(), UnknownSignalError> {
        let mut inner = self.inner.borrow_mut();
        let ids: Vec<usize> = stats
            .iter()
            .map(|s| {
                inner
                    .names
                    .get(&s.name)
                    .map(|id| id.0 as usize)
                    .ok_or_else(|| UnknownSignalError {
                        name: s.name.clone(),
                    })
            })
            .collect::<Result<_, _>>()?;
        for (s, idx) in stats.iter().zip(ids) {
            let st = &mut inner.signals[idx];
            st.stat.merge(&s.stat);
            st.consumed.merge(&s.consumed);
            st.produced.merge(&s.produced);
            st.prop = st.prop.union(&s.prop);
            st.overflows += s.overflows;
            st.reads += s.reads;
            st.writes += s.writes;
            if s.non_dyadic {
                st.non_dyadic = true;
            }
            if st.non_dyadic {
                st.granularity = None;
            } else if let Some(l) = s.granularity {
                st.granularity = Some(st.granularity.map_or(l, |g| g.min(l)));
            }
        }
        Ok(())
    }

    /// Appends a shard's drained overflow events to this design's queue
    /// (subject to the retention cap). Ids are preserved, which is sound
    /// when both designs were built from the same description.
    pub fn absorb_overflow_events(&self, events: Vec<OverflowEvent>) {
        let mut inner = self.inner.borrow_mut();
        let room = inner
            .overflow_event_cap
            .saturating_sub(inner.overflow_events.len());
        inner.overflow_events.extend(events.into_iter().take(room));
    }

    /// Snapshots every signal's refinement annotations (type, range pin,
    /// error sigma) as plain `Send` data, in declaration order.
    pub fn annotations(&self) -> Vec<SignalAnnotation> {
        let inner = self.inner.borrow();
        inner
            .signals
            .iter()
            .map(|st| SignalAnnotation {
                name: st.name.clone(),
                dtype: st.dtype.clone(),
                range: st.range_override,
                error_sigma: st.error_override,
            })
            .collect()
    }

    /// Applies an annotation snapshot by name. Only `Some` fields are
    /// applied — the refinement flow never *clears* an annotation, so a
    /// freshly built shard design plus the master's `Some` annotations
    /// reproduces the master's pre-simulation state exactly. Returns the
    /// number of annotations applied.
    ///
    /// # Errors
    ///
    /// [`UnknownSignalError`] on the first unresolved name; annotations
    /// before it have already been applied.
    pub fn apply_annotations(
        &self,
        annotations: &[SignalAnnotation],
    ) -> Result<usize, UnknownSignalError> {
        let mut applied = 0;
        for a in annotations {
            let id = self.find(&a.name).ok_or_else(|| UnknownSignalError {
                name: a.name.clone(),
            })?;
            if let Some(dt) = &a.dtype {
                self.set_dtype(id, Some(dt.clone()));
                applied += 1;
            }
            if let Some(r) = a.range {
                let mut inner = self.inner.borrow_mut();
                inner.signals[id.0 as usize].range_override = Some(r);
                inner.dirty.insert(id.0);
                applied += 1;
            }
            if let Some(sigma) = a.error_sigma {
                // Exported from a design that already validated it.
                let mut inner = self.inner.borrow_mut();
                inner.signals[id.0 as usize].error_override = Some(sigma);
                Self::mark_all_dirty(&mut inner);
                applied += 1;
            }
        }
        Ok(applied)
    }

    /// Replaces the recorded signal-flow graph — how the sweep engine
    /// installs the graph recorded by shard 0 on the master design, since
    /// the master never simulates itself in swept mode.
    pub fn install_graph(&self, graph: Graph) {
        self.inner.borrow_mut().graph = graph;
    }

    /// The monitoring report of one signal.
    ///
    /// # Panics
    ///
    /// Panics if the handle belongs to a different design.
    pub fn report_for(&self, handle: &impl SignalRef) -> SignalReport {
        assert!(
            Rc::ptr_eq(&self.inner, &handle.design().inner),
            "handle belongs to a different design"
        );
        self.report_by_id(handle.id())
    }

    /// The monitoring report of a signal by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a signal of this design.
    pub fn report_by_id(&self, id: SignalId) -> SignalReport {
        let inner = self.inner.borrow();
        let st = &inner.signals[id.0 as usize];
        SignalReport {
            id,
            name: st.name.clone(),
            kind: st.kind,
            dtype: st.dtype.clone(),
            range_override: st.range_override,
            error_override: st.error_override,
            stat: st.stat,
            prop: st.prop,
            consumed: st.consumed,
            produced: st.produced,
            overflows: st.overflows,
            reads: st.reads,
            writes: st.writes,
            finest_lsb: if st.non_dyadic { None } else { st.granularity },
        }
    }

    /// Monitoring reports for every signal, in declaration order.
    pub fn reports(&self) -> Vec<SignalReport> {
        (0..self.num_signals() as u32)
            .map(|i| self.report_by_id(SignalId(i)))
            .collect()
    }

    /// Re-acquires a wire handle from an id (useful inside stimulus
    /// closures that only captured the design).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a signal of this design or names a register.
    pub fn sig_handle(&self, id: SignalId) -> Sig {
        assert_eq!(
            self.inner.borrow().signals[id.0 as usize].kind,
            SignalKind::Wire,
            "{} is a register; use reg_handle",
            self.name_of(id)
        );
        Sig {
            design: self.clone(),
            id,
        }
    }

    /// Re-acquires a register handle from an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a signal of this design or names a wire.
    pub fn reg_handle(&self, id: SignalId) -> Reg {
        assert_eq!(
            self.inner.borrow().signals[id.0 as usize].kind,
            SignalKind::Register,
            "{} is a wire; use sig_handle",
            self.name_of(id)
        );
        Reg {
            design: self.clone(),
            id,
        }
    }

    /// Reads the raw `(flt, fix)` value pair of a signal *without*
    /// touching any monitor or counter — used by waveform tracing so that
    /// sampling does not skew the `#n` columns of the reports.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a signal of this design.
    pub fn peek(&self, id: SignalId) -> (f64, f64) {
        let inner = self.inner.borrow();
        let st = &inner.signals[id.0 as usize];
        (st.flt, st.fix)
    }

    fn read(&self, id: SignalId) -> Value {
        let mut inner = self.inner.borrow_mut();
        let recording = inner.recording;
        let st = &mut inner.signals[id.0 as usize];
        if !st.passive {
            st.reads += 1;
        }
        let itv = match st.range_override {
            Some(r) => r,
            None => {
                if st.prop.is_empty() {
                    Interval::point(st.fix)
                } else {
                    st.prop
                }
            }
        };
        Value::from_signal(st.flt, st.fix, itv, id, recording)
    }

    fn assign(&self, id: SignalId, value: Value) {
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        let st = &mut inner.signals[id.0 as usize];
        // Passive signals skip their own monitors (the incremental engine
        // splices cached stats instead) but everything that other signals
        // can observe — values, quantization, range propagation and the
        // shared RNG stream — must behave exactly as in a full run.
        let passive = st.passive;
        if !passive {
            st.writes += 1;
            st.stat.record(value.fix());
            st.consumed.record(value.flt() - value.fix());
            if let Some(rec) = &inner.recorder {
                rec.inc("sim.assignments", 1);
            }
        }

        // LSB+MSB: quantize the fixed path through the signal's type.
        let mut new_fix = value.fix();
        if let Some(dt) = &st.dtype {
            let q = quantize(value.fix(), dt);
            if !passive {
                if let Some(rec) = &inner.recorder {
                    rec.observe(&format!("sim.quant_error.{}", st.name), q.rounding_error);
                }
            }
            if q.overflowed && !passive {
                st.overflows += 1;
                if let Some(rec) = &inner.recorder {
                    match dt.overflow() {
                        OverflowMode::Saturate => rec.inc("sim.saturations", 1),
                        _ => rec.inc("sim.overflows", 1),
                    }
                }
                if dt.overflow() == OverflowMode::Error {
                    if let Some(rec) = &inner.recorder {
                        rec.record_event(Event::OverflowDetected {
                            signal: st.name.clone(),
                            value: value.fix(),
                            cycle: inner.cycle,
                        });
                    }
                    if inner.overflow_events.len() < inner.overflow_event_cap {
                        inner.overflow_events.push(OverflowEvent {
                            signal: id,
                            name: st.name.clone(),
                            value: value.fix(),
                            cycle: inner.cycle,
                        });
                    }
                }
            }
            new_fix = q.value;
        }

        // Float path: either the true reference, or the explicit error
        // model for divergent feedback signals. The RNG draw happens even
        // for passive signals — it advances the design-wide stream.
        let new_flt = match st.error_override {
            Some(sigma) if sigma > 0.0 => {
                let half = sigma * 3f64.sqrt();
                new_fix + inner.rng.symmetric(half)
            }
            Some(_) => new_fix,
            None => value.flt(),
        };
        if !passive {
            st.produced.record(new_flt - new_fix);

            // Granularity: the finest LSB any assigned value actually used.
            if new_fix != 0.0 && !st.non_dyadic {
                match dyadic_lsb(new_fix) {
                    Some(l) => {
                        st.granularity = Some(st.granularity.map_or(l, |g| g.min(l)));
                    }
                    None => {
                        st.non_dyadic = true;
                        st.granularity = None;
                    }
                }
            }
        }

        // Quasi-analytical range propagation (assignment rule: union).
        if st.range_override.is_none() {
            let mut incoming = value.interval();
            if let Some(dt) = &st.dtype {
                if dt.overflow() == OverflowMode::Saturate {
                    incoming = incoming.clamp_to(&Interval::from_dtype(dt));
                }
            }
            st.prop = st.prop.union(&incoming);
        }

        // Signal-flow graph. A value with no expression trace (a literal,
        // or one built before recording was enabled) records as a constant
        // definition — this is how coefficient initializations like
        // `c[i] = coef[i]` enter the analytical model.
        if inner.recording {
            let root = inner.graph.intern_expr(value.expr()).unwrap_or_else(|| {
                inner
                    .graph
                    .add(crate::graph::Op::Const(value.fix()), vec![])
            });
            inner.graph.record_def(id, root);
            if let Some(cap) = &mut inner.capture {
                cap.steps.push(TraceStep::Assign {
                    sig: id,
                    root,
                    flt: value.flt(),
                    fix: value.fix(),
                    itv: value.interval(),
                });
            }
        }

        match st.kind {
            SignalKind::Wire => {
                st.flt = new_flt;
                st.fix = new_fix;
            }
            SignalKind::Register => {
                st.next = Some((new_flt, new_fix));
            }
        }
    }

    /// Executes a lowered program against this design, reproducing one
    /// interpreted run bit-for-bit: every `Store` runs the full monitored
    /// assignment pipeline (quantization, range stats, propagation, error
    /// injection from the live RNG stream), read counts are spliced from
    /// the capture, and recorder counters / quantization-error histograms
    /// / overflow events are flushed once at the end through the same
    /// fold order the interpreter would have produced. Types, range
    /// overrides and error models are read *live*, so one tape survives
    /// annotation changes between refinement iterations.
    ///
    /// The design must be in the same starting state the capture began
    /// from (freshly reset, or freshly built for sweep shards). Returns
    /// the cycle count after the replay.
    ///
    /// # Panics
    ///
    /// Panics if the program and trace are inconsistent with this design
    /// (wrong signal ids, malformed stack discipline) — callers are
    /// expected to have proven the pair with [`Design::verify_compiled`].
    pub fn replay_compiled(&self, program: &CompiledProgram, trace: &BoundTrace) -> u64 {
        let recorder = self.inner.borrow().recorder.clone();
        let (cycles, flush) = {
            let mut inner = self.inner.borrow_mut();
            let inner = &mut *inner;
            let mut sink = ReplaySink::new(inner.signals.len());
            let mut stack: Vec<Value> = Vec::with_capacity(program.max_stack());
            let mut cursor = 0usize;
            for seg in &trace.schedule {
                let kind = &program.kinds[seg.kind as usize];
                replay_segment(
                    inner,
                    &mut sink,
                    kind,
                    &program.dtypes,
                    &trace.inputs,
                    &mut cursor,
                    &mut stack,
                );
                if seg.tick_after {
                    tick_replay(inner, &mut sink);
                }
            }
            for (st, &reads) in inner.signals.iter_mut().zip(&trace.reads) {
                st.reads = reads;
            }
            (inner.cycle, sink.into_flush(inner))
        };
        if let Some(rec) = &recorder {
            flush.apply(rec.as_ref());
        }
        cycles
    }

    /// Replays `(program, trace)` against scratch state to prove the tape
    /// reproduces the captured run: every computed store's incoming
    /// `(flt, fix)` must match the capture bitwise, and both the input
    /// stream and the expectation stream must be consumed exactly. Runs
    /// under the design's *current* annotations (call it right after the
    /// capture, before annotations change) with a fresh RNG stream from
    /// the design seed; the design itself is untouched.
    ///
    /// A `false` verdict means the tape cannot faithfully re-execute the
    /// host description — typically because host code kept a read value in
    /// a local across an intervening reassignment of the same signal (a
    /// "stale read" the per-use `Read` ops cannot see). Callers must then
    /// fall back to the interpreted backend.
    pub fn verify_compiled(&self, program: &CompiledProgram, trace: &BoundTrace) -> bool {
        let inner = self.inner.borrow();
        let nsig = inner.signals.len();
        if trace.start.len() != nsig {
            return false;
        }
        let mut flt: Vec<f64> = trace.start.iter().map(|p| p.0).collect();
        let mut fix: Vec<f64> = trace.start.iter().map(|p| p.1).collect();
        let mut next: Vec<Option<(f64, f64)>> = vec![None; nsig];
        let mut rng = Rng64::seed_from_u64(inner.seed);
        let mut stack: Vec<Value> = Vec::with_capacity(program.max_stack());
        let mut in_cursor = 0usize;
        let mut exp_cursor = 0usize;

        // Scratch store: quantization + error injection + wire/register
        // commit, on the scratch arrays only. Propagated intervals do not
        // feed the flt/fix paths, so scratch reads use point intervals.
        let store = |st: &SignalState,
                     i: usize,
                     in_flt: f64,
                     in_fix: f64,
                     flt: &mut [f64],
                     fix: &mut [f64],
                     next: &mut [Option<(f64, f64)>],
                     rng: &mut Rng64| {
            let mut new_fix = in_fix;
            if let Some(dt) = &st.dtype {
                new_fix = quantize(in_fix, dt).value;
            }
            let new_flt = match st.error_override {
                Some(sigma) if sigma > 0.0 => new_fix + rng.symmetric(sigma * 3f64.sqrt()),
                Some(_) => new_fix,
                None => in_flt,
            };
            match st.kind {
                SignalKind::Wire => {
                    flt[i] = new_flt;
                    fix[i] = new_fix;
                }
                SignalKind::Register => next[i] = Some((new_flt, new_fix)),
            }
        };

        for seg in &trace.schedule {
            let Some(kind) = program.kinds.get(seg.kind as usize) else {
                return false;
            };
            for instr in &kind.instrs {
                match instr {
                    Instr::Const(c) => stack.push(Value::with_paths(*c, *c, Interval::point(*c))),
                    Instr::Read(id) => {
                        let i = id.0 as usize;
                        if i >= nsig {
                            return false;
                        }
                        stack.push(Value::with_paths(flt[i], fix[i], Interval::point(fix[i])));
                    }
                    Instr::Add | Instr::Sub | Instr::Mul | Instr::Div | Instr::Min | Instr::Max => {
                        let (Some(r), Some(l)) = (stack.pop(), stack.pop()) else {
                            return false;
                        };
                        stack.push(match instr {
                            Instr::Add => l + r,
                            Instr::Sub => l - r,
                            Instr::Mul => l * r,
                            Instr::Div => l / r,
                            Instr::Min => l.min(r),
                            _ => l.max(r),
                        });
                    }
                    Instr::Neg => {
                        let Some(v) = stack.pop() else { return false };
                        stack.push(-v);
                    }
                    Instr::Abs => {
                        let Some(v) = stack.pop() else { return false };
                        stack.push(v.abs());
                    }
                    Instr::Cast(k) => {
                        let Some(v) = stack.pop() else { return false };
                        let Some(dt) = program.dtypes.get(*k as usize) else {
                            return false;
                        };
                        stack.push(v.cast(dt));
                    }
                    Instr::Select => {
                        let (Some(e), Some(t), Some(c)) = (stack.pop(), stack.pop(), stack.pop())
                        else {
                            return false;
                        };
                        stack.push(c.select_positive(t, e));
                    }
                    Instr::Store(id) => {
                        let i = id.0 as usize;
                        let Some(v) = stack.pop() else { return false };
                        if i >= nsig {
                            return false;
                        }
                        let Some(&(eflt, efix)) = trace.expected.get(exp_cursor) else {
                            return false;
                        };
                        exp_cursor += 1;
                        if v.flt().to_bits() != eflt.to_bits()
                            || v.fix().to_bits() != efix.to_bits()
                        {
                            return false;
                        }
                        store(
                            &inner.signals[i],
                            i,
                            v.flt(),
                            v.fix(),
                            &mut flt,
                            &mut fix,
                            &mut next,
                            &mut rng,
                        );
                    }
                    Instr::StoreInput(id) => {
                        let i = id.0 as usize;
                        if i >= nsig {
                            return false;
                        }
                        let Some(s) = trace.inputs.get(in_cursor).copied() else {
                            return false;
                        };
                        in_cursor += 1;
                        store(
                            &inner.signals[i],
                            i,
                            s.flt,
                            s.fix,
                            &mut flt,
                            &mut fix,
                            &mut next,
                            &mut rng,
                        );
                    }
                }
            }
            if seg.tick_after {
                for i in 0..nsig {
                    if let Some((f, x)) = next[i].take() {
                        flt[i] = f;
                        fix[i] = x;
                    }
                }
            }
        }
        stack.is_empty() && exp_cursor == trace.expected.len() && in_cursor == trace.inputs.len()
    }
}

/// Executes one compiled program over several scenario lanes in a single
/// structure-of-arrays pass: the operand stack holds all lanes of each
/// slot contiguously and one shared stack pointer advances through the
/// identical instruction stream, so the inner lane loop stays tight while
/// every lane's monitors fold exactly as its own sequential replay would.
/// All lanes must share the program's shape — callers group scenarios by
/// [`BoundTrace::fingerprint`] plus exact
/// [`BoundTrace::shape_words`] equality before batching.
///
/// Returns the per-lane cycle counts, in lane order.
///
/// # Panics
///
/// Panics on program/trace/design inconsistencies (wrong signal ids,
/// mismatched schedules); callers are expected to have proven every lane
/// with [`Design::verify_compiled`].
pub fn replay_compiled_batch(
    program: &CompiledProgram,
    lanes: &[(&Design, &BoundTrace)],
) -> Vec<u64> {
    if lanes.is_empty() {
        return Vec::new();
    }
    let n = lanes.len();
    let recorders: Vec<_> = lanes
        .iter()
        .map(|(d, _)| d.inner.borrow().recorder.clone())
        .collect();
    let mut borrows: Vec<std::cell::RefMut<'_, DesignInner>> =
        lanes.iter().map(|(d, _)| d.inner.borrow_mut()).collect();
    let mut sinks: Vec<ReplaySink> = borrows
        .iter()
        .map(|b| ReplaySink::new(b.signals.len()))
        .collect();
    let mut cursors = vec![0usize; n];
    let mut stack: Vec<Value> = vec![Value::default(); program.max_stack() * n];
    let mut sp = 0usize;

    let schedule = &lanes[0].1.schedule;
    for seg in schedule {
        let kind = &program.kinds[seg.kind as usize];
        for instr in &kind.instrs {
            match instr {
                Instr::Const(c) => {
                    for slot in &mut stack[sp * n..(sp + 1) * n] {
                        *slot = Value::with_paths(*c, *c, Interval::point(*c));
                    }
                    sp += 1;
                }
                Instr::Read(id) => {
                    for (lane, inner) in borrows.iter().enumerate() {
                        let st = &inner.signals[id.0 as usize];
                        let itv = match st.range_override {
                            Some(r) => r,
                            None if st.prop.is_empty() => Interval::point(st.fix),
                            None => st.prop,
                        };
                        stack[sp * n + lane] = Value::with_paths(st.flt, st.fix, itv);
                    }
                    sp += 1;
                }
                Instr::Add | Instr::Sub | Instr::Mul | Instr::Div | Instr::Min | Instr::Max => {
                    for lane in 0..n {
                        let r = std::mem::take(&mut stack[(sp - 1) * n + lane]);
                        let l = std::mem::take(&mut stack[(sp - 2) * n + lane]);
                        stack[(sp - 2) * n + lane] = match instr {
                            Instr::Add => l + r,
                            Instr::Sub => l - r,
                            Instr::Mul => l * r,
                            Instr::Div => l / r,
                            Instr::Min => l.min(r),
                            _ => l.max(r),
                        };
                    }
                    sp -= 1;
                }
                Instr::Neg => {
                    for slot in &mut stack[(sp - 1) * n..sp * n] {
                        *slot = -std::mem::take(slot);
                    }
                }
                Instr::Abs => {
                    for slot in &mut stack[(sp - 1) * n..sp * n] {
                        *slot = std::mem::take(slot).abs();
                    }
                }
                Instr::Cast(k) => {
                    let dt = &program.dtypes[*k as usize];
                    for slot in &mut stack[(sp - 1) * n..sp * n] {
                        *slot = std::mem::take(slot).cast(dt);
                    }
                }
                Instr::Select => {
                    for lane in 0..n {
                        let e = std::mem::take(&mut stack[(sp - 1) * n + lane]);
                        let t = std::mem::take(&mut stack[(sp - 2) * n + lane]);
                        let c = std::mem::take(&mut stack[(sp - 3) * n + lane]);
                        stack[(sp - 3) * n + lane] = c.select_positive(t, e);
                    }
                    sp -= 2;
                }
                Instr::Store(id) => {
                    for (lane, inner) in borrows.iter_mut().enumerate() {
                        let v = std::mem::take(&mut stack[(sp - 1) * n + lane]);
                        assign_replay(inner, &mut sinks[lane], *id, v);
                    }
                    sp -= 1;
                }
                Instr::StoreInput(id) => {
                    for (lane, inner) in borrows.iter_mut().enumerate() {
                        let s = lanes[lane].1.inputs[cursors[lane]];
                        cursors[lane] += 1;
                        assign_replay(
                            inner,
                            &mut sinks[lane],
                            *id,
                            Value::with_paths(s.flt, s.fix, s.itv),
                        );
                    }
                }
            }
        }
        if seg.tick_after {
            for (lane, inner) in borrows.iter_mut().enumerate() {
                tick_replay(inner, &mut sinks[lane]);
            }
        }
    }

    let mut cycles = Vec::with_capacity(n);
    let mut flushes = Vec::with_capacity(n);
    for (lane, sink) in sinks.into_iter().enumerate() {
        let inner = &mut *borrows[lane];
        for (st, &reads) in inner.signals.iter_mut().zip(&lanes[lane].1.reads) {
            st.reads = reads;
        }
        cycles.push(inner.cycle);
        flushes.push(sink.into_flush(inner));
    }
    drop(borrows);
    for (flush, rec) in flushes.into_iter().zip(&recorders) {
        if let Some(rec) = rec {
            flush.apply(rec.as_ref());
        }
    }
    cycles
}

/// Monitor side effects of a compiled replay, buffered while the single
/// design borrow is held and flushed to the recorder afterwards in the
/// same per-name order the interpreter would have produced.
struct ReplaySink {
    assignments: u64,
    saturations: u64,
    overflows: u64,
    ticks: u64,
    /// Per-signal quantization-error observations, in assignment order.
    quant: Vec<Vec<f64>>,
    events: Vec<Event>,
}

impl ReplaySink {
    fn new(num_signals: usize) -> Self {
        ReplaySink {
            assignments: 0,
            saturations: 0,
            overflows: 0,
            ticks: 0,
            quant: vec![Vec::new(); num_signals],
            events: Vec::new(),
        }
    }

    fn into_flush(self, inner: &DesignInner) -> ReplayFlush {
        let observes = self
            .quant
            .into_iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(i, v)| (format!("sim.quant_error.{}", inner.signals[i].name), v))
            .collect();
        ReplayFlush {
            assignments: self.assignments,
            saturations: self.saturations,
            overflows: self.overflows,
            ticks: self.ticks,
            observes,
            events: self.events,
        }
    }
}

/// The recorder-facing residue of a [`ReplaySink`], applied after the
/// design borrow is released.
struct ReplayFlush {
    assignments: u64,
    saturations: u64,
    overflows: u64,
    ticks: u64,
    observes: Vec<(String, Vec<f64>)>,
    events: Vec<Event>,
}

impl ReplayFlush {
    fn apply(self, rec: &dyn Recorder) {
        // Counters are flushed only when nonzero so an untouched counter
        // stays absent, exactly as under per-assignment `inc` calls.
        if self.assignments > 0 {
            rec.inc("sim.assignments", self.assignments);
        }
        if self.saturations > 0 {
            rec.inc("sim.saturations", self.saturations);
        }
        if self.overflows > 0 {
            rec.inc("sim.overflows", self.overflows);
        }
        if self.ticks > 0 {
            rec.inc("sim.ticks", self.ticks);
        }
        for (name, values) in &self.observes {
            rec.observe_seq(name, values);
        }
        for ev in self.events {
            rec.record_event(ev);
        }
    }
}

/// One cycle-kind execution for the single-lane replay.
fn replay_segment(
    inner: &mut DesignInner,
    sink: &mut ReplaySink,
    kind: &crate::tape::CycleKind,
    dtypes: &[DType],
    inputs: &[InputSample],
    cursor: &mut usize,
    stack: &mut Vec<Value>,
) {
    const UNDERFLOW: &str = "compiled tape stack underflow";
    for instr in &kind.instrs {
        match instr {
            Instr::Const(c) => stack.push(Value::with_paths(*c, *c, Interval::point(*c))),
            Instr::Read(id) => {
                let st = &inner.signals[id.0 as usize];
                let itv = match st.range_override {
                    Some(r) => r,
                    None if st.prop.is_empty() => Interval::point(st.fix),
                    None => st.prop,
                };
                stack.push(Value::with_paths(st.flt, st.fix, itv));
            }
            Instr::Add | Instr::Sub | Instr::Mul | Instr::Div | Instr::Min | Instr::Max => {
                let r = stack.pop().expect(UNDERFLOW);
                let l = stack.pop().expect(UNDERFLOW);
                stack.push(match instr {
                    Instr::Add => l + r,
                    Instr::Sub => l - r,
                    Instr::Mul => l * r,
                    Instr::Div => l / r,
                    Instr::Min => l.min(r),
                    _ => l.max(r),
                });
            }
            Instr::Neg => {
                let v = stack.pop().expect(UNDERFLOW);
                stack.push(-v);
            }
            Instr::Abs => {
                let v = stack.pop().expect(UNDERFLOW);
                stack.push(v.abs());
            }
            Instr::Cast(k) => {
                let v = stack.pop().expect(UNDERFLOW);
                stack.push(v.cast(&dtypes[*k as usize]));
            }
            Instr::Select => {
                let e = stack.pop().expect(UNDERFLOW);
                let t = stack.pop().expect(UNDERFLOW);
                let c = stack.pop().expect(UNDERFLOW);
                stack.push(c.select_positive(t, e));
            }
            Instr::Store(id) => {
                let v = stack.pop().expect(UNDERFLOW);
                assign_replay(inner, sink, *id, v);
            }
            Instr::StoreInput(id) => {
                let s = inputs[*cursor];
                *cursor += 1;
                assign_replay(inner, sink, *id, Value::with_paths(s.flt, s.fix, s.itv));
            }
        }
    }
}

/// The monitored assignment pipeline of [`Design::assign`], with recorder
/// calls redirected into the [`ReplaySink`] (no graph recording: replays
/// only run on non-record iterations).
fn assign_replay(inner: &mut DesignInner, sink: &mut ReplaySink, id: SignalId, value: Value) {
    let st = &mut inner.signals[id.0 as usize];
    let passive = st.passive;
    if !passive {
        st.writes += 1;
        st.stat.record(value.fix());
        st.consumed.record(value.flt() - value.fix());
        sink.assignments += 1;
    }

    let mut new_fix = value.fix();
    if let Some(dt) = &st.dtype {
        let q = quantize(value.fix(), dt);
        if !passive {
            sink.quant[id.0 as usize].push(q.rounding_error);
        }
        if q.overflowed && !passive {
            st.overflows += 1;
            match dt.overflow() {
                OverflowMode::Saturate => sink.saturations += 1,
                _ => sink.overflows += 1,
            }
            if dt.overflow() == OverflowMode::Error {
                sink.events.push(Event::OverflowDetected {
                    signal: st.name.clone(),
                    value: value.fix(),
                    cycle: inner.cycle,
                });
                if inner.overflow_events.len() < inner.overflow_event_cap {
                    inner.overflow_events.push(OverflowEvent {
                        signal: id,
                        name: st.name.clone(),
                        value: value.fix(),
                        cycle: inner.cycle,
                    });
                }
            }
        }
        new_fix = q.value;
    }

    let new_flt = match st.error_override {
        Some(sigma) if sigma > 0.0 => {
            let half = sigma * 3f64.sqrt();
            new_fix + inner.rng.symmetric(half)
        }
        Some(_) => new_fix,
        None => value.flt(),
    };
    if !passive {
        st.produced.record(new_flt - new_fix);
        if new_fix != 0.0 && !st.non_dyadic {
            match dyadic_lsb(new_fix) {
                Some(l) => {
                    st.granularity = Some(st.granularity.map_or(l, |g| g.min(l)));
                }
                None => {
                    st.non_dyadic = true;
                    st.granularity = None;
                }
            }
        }
    }

    if st.range_override.is_none() {
        let mut incoming = value.interval();
        if let Some(dt) = &st.dtype {
            if dt.overflow() == OverflowMode::Saturate {
                incoming = incoming.clamp_to(&Interval::from_dtype(dt));
            }
        }
        st.prop = st.prop.union(&incoming);
    }

    match st.kind {
        SignalKind::Wire => {
            st.flt = new_flt;
            st.fix = new_fix;
        }
        SignalKind::Register => {
            st.next = Some((new_flt, new_fix));
        }
    }
}

/// The [`Design::tick`] pipeline with the tick counter redirected into
/// the [`ReplaySink`].
fn tick_replay(inner: &mut DesignInner, sink: &mut ReplaySink) {
    for st in &mut inner.signals {
        if let Some((flt, fix)) = st.next.take() {
            st.flt = flt;
            st.fix = fix;
        }
    }
    inner.cycle += 1;
    sink.ticks += 1;
}

/// Common interface of [`Sig`] and [`Reg`] handles.
pub trait SignalRef {
    /// The signal's id within its design.
    fn id(&self) -> SignalId;
    /// The owning design.
    fn design(&self) -> &Design;

    /// The signal's name.
    fn name(&self) -> String {
        self.design().name_of(self.id())
    }

    /// The signal's current type (`None` = floating point).
    fn dtype(&self) -> Option<DType> {
        self.design().dtype_of(self.id())
    }

    /// Sets or clears the signal's type.
    fn set_dtype(&self, dtype: Option<DType>) {
        self.design().set_dtype(self.id(), dtype);
    }

    /// Explicit range annotation (paper `x.range(min, max)`).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    fn range(&self, lo: f64, hi: f64) {
        self.design().set_range(self.id(), lo, hi);
    }

    /// Explicit produced-error annotation with standard deviation `sigma`
    /// (paper `a.error(...)`).
    fn error_sigma(&self, sigma: f64) {
        self.design().set_error_sigma(self.id(), sigma);
    }

    /// Explicit produced-error annotation equivalent to quantizing at LSB
    /// position `lsb`: `σ = 2^lsb / √12` (the paper's example maps
    /// LSB −6 to its uniform error model).
    fn error_lsb(&self, lsb: i32) {
        self.design()
            .set_error_sigma(self.id(), (lsb as f64).exp2() / 12f64.sqrt());
    }
}

/// Handle to a combinational (wire) signal — the paper's `sig`.
#[derive(Debug, Clone)]
pub struct Sig {
    design: Design,
    id: SignalId,
}

impl Sig {
    /// Reads the signal's current dual value.
    pub fn get(&self) -> Value {
        self.design.read(self.id)
    }

    /// Assigns immediately (combinational semantics), performing
    /// quantization and all monitoring.
    pub fn set(&self, value: impl Into<Value>) {
        self.design.assign(self.id, value.into());
    }
}

impl SignalRef for Sig {
    fn id(&self) -> SignalId {
        self.id
    }
    fn design(&self) -> &Design {
        &self.design
    }
}

/// Handle to a clocked register — the paper's `reg`. Assignments become
/// visible at the next [`Design::tick`].
#[derive(Debug, Clone)]
pub struct Reg {
    design: Design,
    id: SignalId,
}

impl Reg {
    /// Reads the register's current (pre-tick) dual value.
    pub fn get(&self) -> Value {
        self.design.read(self.id)
    }

    /// Schedules an assignment for the next clock tick, performing
    /// quantization and all monitoring now.
    pub fn set(&self, value: impl Into<Value>) {
        self.design.assign(self.id, value.into());
    }
}

impl SignalRef for Reg {
    fn id(&self) -> SignalId {
        self.id
    }
    fn design(&self) -> &Design {
        &self.design
    }
}

/// An indexed collection of wires — the paper's `sigarray`.
#[derive(Debug, Clone)]
pub struct SigArray {
    sigs: Vec<Sig>,
}

impl SigArray {
    /// The element at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn at(&self, i: usize) -> &Sig {
        &self.sigs[i]
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// Iterates over the element handles.
    pub fn iter(&self) -> std::slice::Iter<'_, Sig> {
        self.sigs.iter()
    }

    /// Applies one type to every element.
    pub fn set_dtype_all(&self, dtype: Option<DType>) {
        for s in &self.sigs {
            s.set_dtype(dtype.clone());
        }
    }
}

impl<'a> IntoIterator for &'a SigArray {
    type Item = &'a Sig;
    type IntoIter = std::slice::Iter<'a, Sig>;
    fn into_iter(self) -> Self::IntoIter {
        self.sigs.iter()
    }
}

/// An indexed collection of registers — the paper's `regarray`.
#[derive(Debug, Clone)]
pub struct RegArray {
    regs: Vec<Reg>,
}

impl RegArray {
    /// The element at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn at(&self, i: usize) -> &Reg {
        &self.regs[i]
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Iterates over the element handles.
    pub fn iter(&self) -> std::slice::Iter<'_, Reg> {
        self.regs.iter()
    }

    /// Applies one type to every element.
    pub fn set_dtype_all(&self, dtype: Option<DType>) {
        for r in &self.regs {
            r.set_dtype(dtype.clone());
        }
    }
}

impl<'a> IntoIterator for &'a RegArray {
    type Item = &'a Reg;
    type IntoIter = std::slice::Iter<'a, Reg>;
    fn into_iter(self) -> Self::IntoIter {
        self.regs.iter()
    }
}

impl std::ops::Index<usize> for SigArray {
    type Output = Sig;
    /// Indexes the element handles (`&arr[i]` ≡ `arr.at(i)`).
    fn index(&self, i: usize) -> &Sig {
        self.at(i)
    }
}

impl std::ops::Index<usize> for RegArray {
    type Output = Reg;
    /// Indexes the element handles (`&arr[i]` ≡ `arr.at(i)`).
    fn index(&self, i: usize) -> &Reg {
        self.at(i)
    }
}

#[cfg(test)]
mod sweep_snapshot_tests {
    use super::*;
    use fixref_fixed::{RoundingMode, Signedness};

    fn t(n: i32, f: i32) -> DType {
        DType::new(
            "t",
            n,
            f,
            Signedness::TwosComplement,
            OverflowMode::Saturate,
            RoundingMode::Round,
        )
        .unwrap()
    }

    fn drive(d: &Design, values: &[f64]) {
        let id = d.find("x").unwrap();
        let x = d.sig_handle(id);
        for &v in values {
            x.set(v);
            let _ = x.get();
        }
    }

    #[test]
    fn absorbing_shard_stats_equals_streaming_the_concatenation() {
        let a = [0.25, -0.5, 0.75, 0.125];
        let b = [1.5, -1.25, 0.0625];

        // Reference: one design sees both stimuli back to back.
        let whole = Design::new();
        whole.sig_typed("x", t(8, 4));
        drive(&whole, &a);
        drive(&whole, &b);
        let want = whole.report_by_id(whole.find("x").unwrap());

        // Sweep: master sees `a`, a shard sees `b`, master absorbs.
        let master = Design::new();
        master.sig_typed("x", t(8, 4));
        drive(&master, &a);
        let shard = Design::new();
        shard.sig_typed("x", t(8, 4));
        drive(&shard, &b);
        master.absorb_stats(&shard.export_stats()).unwrap();
        let got = master.report_by_id(master.find("x").unwrap());

        assert_eq!(got.stat, want.stat);
        assert_eq!(got.prop, want.prop);
        assert_eq!(got.consumed, want.consumed);
        assert_eq!(got.produced, want.produced);
        assert_eq!(got.reads, want.reads);
        assert_eq!(got.writes, want.writes);
        assert_eq!(got.finest_lsb, want.finest_lsb);
    }

    #[test]
    fn absorb_rejects_unknown_signals_without_side_effects() {
        let master = Design::new();
        master.sig("x");
        let other = Design::new();
        other.sig("x");
        other.sig("intruder");
        let stranger = other.sig_handle(other.find("intruder").unwrap());
        stranger.set(9.0);
        let x = other.sig_handle(other.find("x").unwrap());
        x.set(1.0);

        let err = master.absorb_stats(&other.export_stats()).unwrap_err();
        assert_eq!(err.name, "intruder");
        // Nothing was merged, not even the signals that did resolve.
        let rep = master.report_by_id(master.find("x").unwrap());
        assert_eq!(rep.stat.count(), 0);
    }

    #[test]
    fn annotations_round_trip_onto_a_fresh_design() {
        let build = || {
            let d = Design::new();
            d.sig("a");
            d.reg("b");
            d
        };
        let master = build();
        let a = master.find("a").unwrap();
        let b = master.find("b").unwrap();
        master.set_dtype(a, Some(t(6, 3)));
        master.set_range(a, -2.0, 2.0);
        master.set_error_sigma(b, 0.01);

        let fresh = build();
        let applied = fresh.apply_annotations(&master.annotations()).unwrap();
        assert_eq!(applied, 3);
        assert_eq!(fresh.annotations(), master.annotations());
        // dtype application re-seeded the propagated range like the
        // master's own reset would.
        assert_eq!(
            fresh.report_by_id(fresh.find("a").unwrap()).prop,
            Interval::from_dtype(&t(6, 3))
        );

        let orphan = Design::new();
        orphan.sig("a"); // no "b"
        assert_eq!(
            orphan.apply_annotations(&master.annotations()).unwrap_err(),
            UnknownSignalError { name: "b".into() }
        );
    }

    #[test]
    fn try_setters_reject_bad_input_instead_of_panicking() {
        let d = Design::new();
        let x = d.sig("x");
        let id = x.id();
        assert!(matches!(
            d.try_set_range(id, 1.0, -1.0),
            Err(FixError::InvalidRange { .. })
        ));
        assert!(matches!(
            d.try_set_range(id, f64::NAN, 1.0),
            Err(FixError::InvalidRange { .. })
        ));
        assert_eq!(d.range_of(id), None);
        d.try_set_range(id, -1.0, 1.0).unwrap();
        assert_eq!(d.range_of(id), Some(Interval::new(-1.0, 1.0)));

        assert!(matches!(
            d.try_set_error_sigma(id, -0.5),
            Err(FixError::InvalidSigma { .. })
        ));
        assert!(matches!(
            d.try_set_error_sigma(id, f64::INFINITY),
            Err(FixError::InvalidSigma { .. })
        ));
        assert_eq!(d.error_of(id), None);
        d.try_set_error_sigma(id, 0.25).unwrap();
        assert_eq!(d.error_of(id), Some(0.25));
    }

    #[test]
    fn overflow_events_absorb_in_order_up_to_the_cap() {
        let et = DType::new(
            "e",
            4,
            2,
            Signedness::TwosComplement,
            OverflowMode::Error,
            RoundingMode::Round,
        )
        .unwrap();
        let master = Design::new();
        master.sig_typed("x", et.clone());
        let shard = Design::new();
        let x = shard.sig_typed("x", et);
        x.set(100.0); // overflows a <4,2,tc> type
        let events = shard.take_overflow_events();
        assert_eq!(events.len(), 1);
        master.absorb_overflow_events(events);
        let merged = master.take_overflow_events();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].name, "x");
    }

    #[test]
    fn install_graph_replaces_the_recorded_graph() {
        let src = Design::new();
        let a = src.sig("a");
        src.record_graph(true);
        a.set(a.get() + 1.0);
        src.record_graph(false);
        let g = src.graph();
        assert!(!g.is_empty());

        let dst = Design::new();
        dst.sig("a");
        assert_eq!(dst.graph().len(), 0);
        dst.install_graph(g.clone());
        assert_eq!(dst.graph().len(), g.len());
    }
}

#[cfg(test)]
mod incremental_tests {
    use super::*;
    use fixref_fixed::{RoundingMode, Signedness};

    fn t(n: i32, f: i32) -> DType {
        DType::new(
            "t",
            n,
            f,
            Signedness::TwosComplement,
            OverflowMode::Saturate,
            RoundingMode::Round,
        )
        .unwrap()
    }

    #[test]
    fn try_sig_rejects_duplicates_without_side_effects() {
        let d = Design::new();
        d.sig("x");
        let before = d.num_signals();
        let err = d.try_sig("x").unwrap_err();
        assert_eq!(
            err,
            FixError::DuplicateSignal {
                name: "x".to_string()
            }
        );
        assert_eq!(d.num_signals(), before);
        // The other fallible declarations reject the same way.
        assert!(d.try_sig_typed("x", t(8, 4)).is_err());
        assert!(d.try_reg("x").is_err());
        assert!(d.try_reg_typed("x", t(8, 4)).is_err());
        // A fresh name still works and produces a usable handle.
        let y = d.try_reg("y").unwrap();
        y.set(1.0);
        d.tick();
        assert_eq!(y.get().flt(), 1.0);
    }

    #[test]
    #[should_panic(expected = "duplicate signal name")]
    fn infallible_sig_still_panics_on_duplicates() {
        let d = Design::new();
        d.sig("x");
        d.sig("x");
    }

    #[test]
    fn dirty_set_tracks_annotation_changes() {
        let d = Design::new();
        let x = d.sig("x");
        let y = d.sig("y");
        // Declarations start dirty.
        assert_eq!(d.take_dirty(), vec![x.id(), y.id()]);
        assert!(d.take_dirty().is_empty());

        d.set_range(x.id(), -1.0, 1.0);
        assert_eq!(d.take_dirty(), vec![x.id()]);

        d.set_dtype(y.id(), Some(t(8, 4)));
        assert_eq!(d.take_dirty(), vec![y.id()]);

        d.try_set_range(x.id(), -2.0, 2.0).unwrap();
        d.clear_range(x.id());
        assert_eq!(d.take_dirty(), vec![x.id()]);

        // A rejected annotation does not dirty anything.
        assert!(d.try_set_range(x.id(), 1.0, -1.0).is_err());
        assert!(d.take_dirty().is_empty());

        // Error models shift the shared RNG stream: everything dirties.
        d.set_error_sigma(x.id(), 0.01);
        assert_eq!(d.take_dirty(), vec![x.id(), y.id()]);
        d.clear_error(x.id());
        assert_eq!(d.take_dirty(), vec![x.id(), y.id()]);
    }

    #[test]
    fn static_schedule_is_declared_not_inferred() {
        let d = Design::new();
        assert!(!d.has_static_schedule());
        d.declare_static_schedule();
        assert!(d.has_static_schedule());
    }

    #[test]
    fn passive_signals_simulate_but_do_not_monitor() {
        let d = Design::new();
        let x = d.sig_typed("x", t(8, 4));
        let y = d.sig("y");
        d.set_passive(&[x.id()]);
        x.set(0.7); // quantizes to 11/16 on the fixed path
        y.set(x.get() * 2.0);
        let xr = d.report_by_id(x.id());
        assert_eq!(xr.writes, 0);
        assert_eq!(xr.reads, 0);
        assert_eq!(xr.stat.count(), 0);
        // ... but the value itself flowed through quantization as usual,
        // so the active downstream signal observed the quantized value.
        let yr = d.report_by_id(y.id());
        assert_eq!(yr.writes, 1);
        assert_eq!(yr.stat.max(), 2.0 * 11.0 / 16.0);
        d.clear_passive();
        x.set(0.7);
        assert_eq!(d.report_by_id(x.id()).writes, 1);
    }

    #[test]
    fn passive_run_plus_splice_equals_full_run() {
        let stimulus = |d: &Design| {
            let x = d.sig_handle(d.find("x").unwrap());
            let y = d.sig_handle(d.find("y").unwrap());
            for i in 0..32 {
                x.set((i as f64 * 0.37).sin());
                y.set(x.get() * 0.5 + 0.125);
                d.tick();
            }
        };
        let build = || {
            let d = Design::new();
            d.sig_typed("x", t(8, 4));
            d.sig("y");
            d
        };

        let full = build();
        stimulus(&full);
        let cached = full.export_stats();

        // Re-run with x passive, then splice its cached stats back.
        let part = build();
        part.set_passive(&[part.find("x").unwrap()]);
        stimulus(&part);
        part.clear_passive();
        let spliced: Vec<SignalStats> = cached.iter().filter(|s| s.name == "x").cloned().collect();
        part.splice_stats(&spliced).unwrap();

        assert_eq!(part.export_stats(), cached);
    }

    #[test]
    fn splice_rejects_unknown_signals_without_side_effects() {
        let d = Design::new();
        let x = d.sig("x");
        x.set(1.0);
        let mut stats = d.export_stats();
        stats[0].name = "ghost".into();
        let err = d.splice_stats(&stats).unwrap_err();
        assert_eq!(err.name, "ghost");
        assert_eq!(d.report_by_id(x.id()).writes, 1);
    }

    #[test]
    fn overflow_events_splice_back_in_cycle_order() {
        let et = DType::new(
            "e",
            4,
            2,
            Signedness::TwosComplement,
            OverflowMode::Error,
            RoundingMode::Round,
        )
        .unwrap();
        let d = Design::new();
        let x = d.sig_typed("x", et);
        x.set(100.0); // cycle 0
        d.tick();
        d.tick();
        x.set(100.0); // cycle 2
        let mut events = d.take_overflow_events();
        assert_eq!(events.len(), 2);
        // Pretend the cycle-0 event came from a passive signal's cache.
        let early = events.remove(0);
        d.splice_overflow_events(vec![early]);
        d.splice_overflow_events(events);
        let merged = d.peek_overflow_events();
        assert_eq!(merged.len(), 2);
        assert!(merged[0].cycle <= merged[1].cycle);
        // peek does not drain.
        assert_eq!(d.take_overflow_events().len(), 2);
    }
}

#[cfg(test)]
mod index_tests {
    use super::*;

    #[test]
    fn arrays_index_like_slices() {
        let d = Design::new();
        let sigs = d.sig_array("s", 3);
        let regs = d.reg_array("r", 2);
        sigs[1].set(0.5);
        assert_eq!(sigs[1].get().flt(), 0.5);
        regs[0].set(1.0);
        d.tick();
        assert_eq!(regs[0].get().flt(), 1.0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_index_panics() {
        let d = Design::new();
        let sigs = d.sig_array("s", 2);
        let _ = &sigs[5];
    }
}
