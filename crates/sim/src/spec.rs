//! Serializable design and scenario specifications.
//!
//! A [`DesignSpec`] is the wire form of "which design to build": a
//! registered builder *kind* (designs themselves are Rust closures and
//! cannot travel over a socket), the input type to impose, and a flat
//! map of numeric parameters the builder interprets. Together with the
//! JSON form of a [`ScenarioSet`] it lets a job server reconstruct a
//! `Design` + stimulus deterministically from a submitted JSON spec:
//! the same spec always rebuilds the same design and the same scenario
//! grid, bit for bit.
//!
//! The encoding is the repo's usual hand-rolled JSON over
//! [`fixref_obs::Json`] — no external dependencies, non-finite floats
//! spelled as strings (`"Infinity"` for a noiseless replay scenario's
//! SNR), and explicit structured errors instead of panics.

use std::fmt;

use fixref_obs::json::{escape, fmt_f64};
use fixref_obs::Json;

use crate::scenario::{Scenario, ScenarioSet};

/// Why a spec document could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// What went wrong, with the offending member named.
    pub message: String,
}

impl SpecError {
    /// A spec error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        SpecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec error: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

/// The serializable description of a design to build.
///
/// `kind` names a builder in the consumer's design registry (e.g.
/// `"lms"`, `"timing"`); `params` are numeric knobs that builder
/// understands, kept in insertion order. The spec is plain data: two
/// equal specs reconstruct bit-identical designs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DesignSpec {
    /// Registered builder kind.
    pub kind: String,
    /// Input data type to impose, in `<n,f,…>` display form (builder
    /// default when absent).
    pub input_dtype: Option<String>,
    /// Numeric builder parameters, in insertion order.
    pub params: Vec<(String, f64)>,
}

impl DesignSpec {
    /// A spec for builder `kind` with no overrides.
    pub fn new(kind: impl Into<String>) -> Self {
        DesignSpec {
            kind: kind.into(),
            ..DesignSpec::default()
        }
    }

    /// Sets the imposed input type (display form).
    pub fn with_input_dtype(mut self, dtype: impl Into<String>) -> Self {
        self.input_dtype = Some(dtype.into());
        self
    }

    /// Appends a numeric builder parameter.
    pub fn with_param(mut self, name: impl Into<String>, value: f64) -> Self {
        self.params.push((name.into(), value));
        self
    }

    /// The value of parameter `name`, if present.
    pub fn param(&self, name: &str) -> Option<f64> {
        self.params.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Serializes the spec as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(r#"{{"kind":"{}""#, escape(&self.kind)));
        match &self.input_dtype {
            Some(t) => out.push_str(&format!(r#","input_dtype":"{}""#, escape(t))),
            None => out.push_str(r#","input_dtype":null"#),
        }
        out.push_str(r#","params":{"#);
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(r#""{}":{}"#, escape(k), fmt_f64(*v)));
        }
        out.push_str("}}");
        out
    }

    /// Decodes a spec from an already-parsed JSON value.
    ///
    /// # Errors
    ///
    /// [`SpecError`] naming the missing or mistyped member.
    pub fn from_value(v: &Json) -> Result<DesignSpec, SpecError> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| SpecError::new("design spec: missing or mistyped \"kind\""))?
            .to_string();
        let input_dtype = match v.get("input_dtype") {
            None | Some(Json::Null) => None,
            Some(j) => Some(
                j.as_str()
                    .ok_or_else(|| SpecError::new("design spec: \"input_dtype\" is not a string"))?
                    .to_string(),
            ),
        };
        let mut params = Vec::new();
        match v.get("params") {
            None => {}
            Some(Json::Obj(members)) => {
                for (k, val) in members {
                    let value = val.as_f64().ok_or_else(|| {
                        SpecError::new(format!("design spec: parameter {k:?} is not a number"))
                    })?;
                    params.push((k.clone(), value));
                }
            }
            Some(_) => return Err(SpecError::new("design spec: \"params\" is not an object")),
        }
        Ok(DesignSpec {
            kind,
            input_dtype,
            params,
        })
    }

    /// Decodes a spec from its JSON text form.
    ///
    /// # Errors
    ///
    /// [`SpecError`] on malformed JSON or missing members.
    pub fn from_json(text: &str) -> Result<DesignSpec, SpecError> {
        let v = Json::parse(text).map_err(|e| SpecError::new(format!("design spec: {e}")))?;
        DesignSpec::from_value(&v)
    }
}

/// Serializes a [`ScenarioSet`] as one JSON array of scenario objects
/// (the inverse of [`scenario_set_from_value`]). Witness stimulus
/// streams and non-finite SNRs round-trip exactly.
pub fn scenario_set_to_json(set: &ScenarioSet) -> String {
    let mut out = String::from("[");
    for (i, s) in set.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let taps: Vec<String> = s.channel_taps.iter().map(|t| fmt_f64(*t)).collect();
        out.push_str(&format!(
            r#"{{"seed":{},"snr_db":{},"channel_taps":[{}],"samples":{}"#,
            s.seed,
            fmt_f64(s.snr_db),
            taps.join(","),
            s.samples
        ));
        out.push_str(r#","stimulus":{"#);
        for (j, (name, stream)) in s.stimulus.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let vals: Vec<String> = stream.iter().map(|v| fmt_f64(*v)).collect();
            out.push_str(&format!(r#""{}":[{}]"#, escape(name), vals.join(",")));
        }
        out.push_str("}}");
    }
    out.push(']');
    out
}

/// Decodes a [`ScenarioSet`] from the array form written by
/// [`scenario_set_to_json`]. Scenario indices are reassigned in array
/// order, so the decoded set folds identically to the encoded one.
///
/// # Errors
///
/// [`SpecError`] naming the offending scenario and member.
pub fn scenario_set_from_value(v: &Json) -> Result<ScenarioSet, SpecError> {
    let items = v
        .as_arr()
        .ok_or_else(|| SpecError::new("scenario set is not an array"))?;
    let mut scenarios = Vec::with_capacity(items.len());
    for (index, item) in items.iter().enumerate() {
        let ctx = |m: &str| SpecError::new(format!("scenario {index}: missing or mistyped {m:?}"));
        let seed = item
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or_else(|| ctx("seed"))?;
        let snr_db = item
            .get("snr_db")
            .and_then(Json::as_f64)
            .ok_or_else(|| ctx("snr_db"))?;
        let samples = item
            .get("samples")
            .and_then(Json::as_u64)
            .ok_or_else(|| ctx("samples"))? as usize;
        let channel_taps = item
            .get("channel_taps")
            .and_then(Json::as_arr)
            .ok_or_else(|| ctx("channel_taps"))?
            .iter()
            .map(|t| t.as_f64().ok_or_else(|| ctx("channel_taps")))
            .collect::<Result<Vec<_>, _>>()?;
        let mut stimulus = Vec::new();
        match item.get("stimulus") {
            None => {}
            Some(Json::Obj(members)) => {
                for (name, stream) in members {
                    let values = stream
                        .as_arr()
                        .ok_or_else(|| ctx("stimulus"))?
                        .iter()
                        .map(|x| x.as_f64().ok_or_else(|| ctx("stimulus")))
                        .collect::<Result<Vec<_>, _>>()?;
                    stimulus.push((name.clone(), values));
                }
            }
            Some(_) => return Err(ctx("stimulus")),
        }
        scenarios.push(Scenario {
            index,
            seed,
            snr_db,
            channel_taps,
            samples,
            stimulus,
        });
    }
    Ok(ScenarioSet::from_scenarios(scenarios))
}

/// [`scenario_set_from_value`] over JSON text.
///
/// # Errors
///
/// [`SpecError`] on malformed JSON or a malformed scenario.
pub fn scenario_set_from_json(text: &str) -> Result<ScenarioSet, SpecError> {
    let v = Json::parse(text).map_err(|e| SpecError::new(format!("scenario set: {e}")))?;
    scenario_set_from_value(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_spec_round_trips() {
        let spec = DesignSpec::new("lms")
            .with_input_dtype("<7,5,tc,st,rd>")
            .with_param("taps", 3.0)
            .with_param("mu", 0.05);
        let back = DesignSpec::from_json(&spec.to_json()).expect("parses");
        assert_eq!(back, spec);
        assert_eq!(back.param("mu"), Some(0.05));
        assert_eq!(back.param("missing"), None);

        let bare = DesignSpec::new("timing");
        let back = DesignSpec::from_json(&bare.to_json()).expect("parses");
        assert_eq!(back, bare);
        assert_eq!(back.input_dtype, None);
    }

    #[test]
    fn malformed_design_specs_are_structured_errors() {
        assert!(DesignSpec::from_json("not json").is_err());
        assert!(DesignSpec::from_json(r#"{"params":{}}"#).is_err());
        assert!(DesignSpec::from_json(r#"{"kind":"lms","params":{"mu":"fast"}}"#).is_err());
        assert!(DesignSpec::from_json(r#"{"kind":"lms","input_dtype":7}"#).is_err());
    }

    #[test]
    fn scenario_sets_round_trip_including_witness_stimulus() {
        let grid = ScenarioSet::grid(&[1, 2], &[20.0, 28.0], &[vec![], vec![0.9, 0.1]], &[400]);
        let back = scenario_set_from_json(&scenario_set_to_json(&grid)).expect("parses");
        assert_eq!(back, grid);

        let replay = ScenarioSet::replay(
            3,
            vec![("x".into(), vec![1.0, -1.0]), ("gain".into(), vec![0.5])],
        );
        let back = scenario_set_from_json(&scenario_set_to_json(&replay)).expect("parses");
        assert_eq!(back, replay, "noiseless Infinity SNR survives");
    }

    #[test]
    fn scenario_indices_are_reassigned_in_order() {
        let set = ScenarioSet::grid(&[7, 8, 9], &[28.0], &[], &[100]);
        let back = scenario_set_from_json(&scenario_set_to_json(&set)).expect("parses");
        for (i, s) in back.iter().enumerate() {
            assert_eq!(s.index, i);
        }
    }

    #[test]
    fn malformed_scenarios_are_structured_errors() {
        assert!(scenario_set_from_json("{}").is_err());
        assert!(scenario_set_from_json(r#"[{"seed":1}]"#).is_err());
        let err = scenario_set_from_json(r#"[{"seed":1,"snr_db":"loud","samples":4}]"#)
            .expect_err("mistyped snr");
        assert!(err.to_string().contains("scenario 0"), "{err}");
    }
}
