//! Analytical range estimation over the signal-flow graph.
//!
//! This is the third MSB-side method of paper §4.1: "a perfect evaluation
//! of the signal range is enabled by constructing a signal flowgraph out of
//! the source code and analyzing the data flow using the same range
//! propagation mechanism". [`analyze_ranges`] runs the interval arithmetic
//! of [`fixref_fixed::Interval`] to a fixpoint over a recorded [`Graph`],
//! independent of how long the stimulus simulation ran.
//!
//! Feedback cycles that grow without bound are *widened* to
//! [`Interval::UNBOUNDED`] after a configurable number of growing passes —
//! the explicit form of the paper's "explosion of the MSB" on feedback
//! signals. A widened result is reported distinctly
//! ([`RangeAnalysis::widened_signals`]) and does **not** count as
//! converged. The cure is the same as in the paper: seed the offending
//! signal with an explicit `range()` annotation and re-analyze.
//!
//! Repeated analyses over the same graph (the refinement loop re-runs the
//! fixpoint every iteration) can share a [`RangeMemo`]: definition
//! evaluations are memoized keyed by `(node id, hash of the ranges of the
//! node's read support)`, so subgraphs whose inputs did not move resolve
//! in O(support) instead of O(subgraph).

use std::collections::{HashMap, HashSet};

use fixref_fixed::{AffineForm, Interval, OverflowMode};
use fixref_obs::{Event, Recorder};

use crate::design::SignalId;
use crate::graph::{Graph, NodeId, Op};

/// Options for [`analyze_ranges`].
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Maximum fixpoint passes before giving up.
    pub max_passes: usize,
    /// Widen a signal to `UNBOUNDED` after it has grown in this many
    /// consecutive passes (feedback explosion detection).
    pub widen_after: usize,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            max_passes: 256,
            widen_after: 64,
        }
    }
}

/// The result of an analytical range pass.
#[derive(Debug, Clone)]
pub struct RangeAnalysis {
    ranges: HashMap<SignalId, Interval>,
    exploded: HashSet<SignalId>,
    widened: HashSet<SignalId>,
    clamped: HashSet<SignalId>,
    passes: usize,
    fixpoint: bool,
}

impl RangeAnalysis {
    /// The derived range of a signal (`None` if it never appeared in the
    /// graph and was not seeded).
    pub fn range_of(&self, id: SignalId) -> Option<Interval> {
        self.ranges.get(&id).copied()
    }

    /// Whether the signal's range exploded (feedback without a bounding
    /// annotation).
    pub fn is_exploded(&self, id: SignalId) -> bool {
        self.exploded.contains(&id)
            || self
                .ranges
                .get(&id)
                .map(|i| i.is_exploded())
                .unwrap_or(false)
    }

    /// Signals whose range exploded.
    pub fn exploded_signals(&self) -> impl Iterator<Item = SignalId> + '_ {
        self.exploded.iter().copied()
    }

    /// Signals that had to be forcibly widened to `UNBOUNDED` (by the
    /// growth detector or the pass limit) — these are *not* clean
    /// fixpoints and disqualify [`RangeAnalysis::converged`].
    pub fn widened_signals(&self) -> impl Iterator<Item = SignalId> + '_ {
        self.widened.iter().copied()
    }

    /// Whether a signal was forcibly widened.
    pub fn is_widened(&self, id: SignalId) -> bool {
        self.widened.contains(&id)
    }

    /// Signals whose division-by-zero-spanning ranges were clamped to a
    /// declared type bound instead of silently exploding downstream.
    pub fn clamped_signals(&self) -> impl Iterator<Item = SignalId> + '_ {
        self.clamped.iter().copied()
    }

    /// Whether a signal's range was clamped through a zero-spanning
    /// division.
    pub fn is_clamped(&self, id: SignalId) -> bool {
        self.clamped.contains(&id)
    }

    /// Number of fixpoint passes performed.
    pub fn passes(&self) -> usize {
        self.passes
    }

    /// Whether a *clean* fixpoint was reached: the pass loop stabilized
    /// within budget **and** no signal had to be forcibly widened. A run
    /// that stabilized only because widening snapped ranges to
    /// `UNBOUNDED` is reported via [`RangeAnalysis::widened_signals`],
    /// not as convergence.
    pub fn converged(&self) -> bool {
        self.fixpoint && self.widened.is_empty()
    }

    /// All derived ranges.
    pub fn ranges(&self) -> &HashMap<SignalId, Interval> {
        &self.ranges
    }
}

/// Cross-analysis memo for definition evaluations, keyed by
/// `(node id, hash of the node's read-support ranges)`. One memo can be
/// shared across every [`analyze_ranges_with`] call on the same graph —
/// across fixpoint passes *and* across refinement iterations — so
/// subgraphs whose input ranges did not move are not re-walked. The memo
/// resets itself when the graph changes size.
#[derive(Debug, Default)]
pub struct RangeMemo {
    graph_len: usize,
    /// Per node: the sorted transitive set of signals its subtree reads.
    support: Vec<Vec<SignalId>>,
    entries: HashMap<(u32, u64), (Interval, bool)>,
    hits: u64,
    misses: u64,
}

impl RangeMemo {
    /// Creates an empty memo.
    pub fn new() -> Self {
        RangeMemo::default()
    }

    /// Number of definition evaluations answered from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of definition evaluations computed from scratch.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Rebuilds the per-node read support when the graph changed.
    fn sync(&mut self, graph: &Graph) {
        if self.graph_len == graph.len() {
            return;
        }
        self.entries.clear();
        self.support.clear();
        // Creation order is topological: operands precede users.
        for (_, node) in graph.iter() {
            let mut s: Vec<SignalId> = match &node.op {
                Op::Read(sig) => vec![*sig],
                _ => Vec::new(),
            };
            for a in &node.args {
                s.extend(self.support[a.0 as usize].iter().copied());
            }
            s.sort();
            s.dedup();
            self.support.push(s);
        }
        self.graph_len = graph.len();
    }

    /// FNV-1a over the effective (as seen by `Op::Read`) ranges of the
    /// node's support signals.
    fn support_hash(&self, root: NodeId, ranges: &HashMap<SignalId, Interval>) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        // Byte-wise FNV-1a: feeding whole words would let high-bit-only
        // differences (e.g. f64 sign/exponent bits) collide, since they
        // cannot propagate downward through the modular multiply.
        let mut step = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for s in &self.support[root.0 as usize] {
            let itv = effective_range(ranges, *s);
            step(u64::from(s.raw()));
            step(itv.lo.to_bits());
            step(itv.hi.to_bits());
        }
        h
    }

    /// Memoized evaluation of one definition root. Returns the interval
    /// and whether a zero-spanning division was clamped inside it.
    fn eval(
        &mut self,
        graph: &Graph,
        root: NodeId,
        ranges: &HashMap<SignalId, Interval>,
    ) -> (Interval, bool) {
        self.sync(graph);
        let key = (root.0, self.support_hash(root, ranges));
        if let Some(&cached) = self.entries.get(&key) {
            self.hits += 1;
            return cached;
        }
        self.misses += 1;
        let result = eval_uncached(graph, root, ranges);
        self.entries.insert(key, result);
        result
    }
}

/// The range `Op::Read` sees: missing or empty ranges read as the reset
/// value `[0, 0]`.
fn effective_range(ranges: &HashMap<SignalId, Interval>, s: SignalId) -> Interval {
    ranges
        .get(&s)
        .copied()
        .filter(|i| !i.is_empty())
        .unwrap_or_else(|| Interval::point(0.0))
}

/// Propagates ranges through `graph` to a fixpoint.
///
/// `seeds` pins the range of input or annotated signals; seeded signals
/// never widen beyond their seed (they model `range()` annotations or
/// saturating input converters). Signals read before any definition
/// contribute their reset value `[0, 0]`.
pub fn analyze_ranges(
    graph: &Graph,
    seeds: &HashMap<SignalId, Interval>,
    options: &AnalyzeOptions,
) -> RangeAnalysis {
    analyze_ranges_with(graph, seeds, options, &mut RangeMemo::new(), None)
}

/// [`analyze_ranges`] with an explicit shared [`RangeMemo`] and an
/// optional recorder. The memo carries definition evaluations across
/// calls; the recorder receives an `analyze.range_clamped` counter and a
/// [`Event::RangeClamped`] journal entry for every signal whose
/// zero-spanning division was clamped to a declared type bound.
pub fn analyze_ranges_with(
    graph: &Graph,
    seeds: &HashMap<SignalId, Interval>,
    options: &AnalyzeOptions,
    memo: &mut RangeMemo,
    recorder: Option<&dyn Recorder>,
) -> RangeAnalysis {
    analyze_inner(graph, seeds, options, memo, recorder, false)
}

/// [`analyze_ranges_with`] with the **affine-arithmetic refinement**: every
/// definition is evaluated both as a plain interval and as an
/// [`AffineForm`] over per-signal noise symbols, and the two envelopes are
/// intersected. Shared symbols let correlated re-reads cancel (`acc +
/// x - acc*mu` contracts by `1 - mu` instead of growing by `1 + mu`), so
/// feedback loops that the interval fixpoint widens to
/// [`Interval::UNBOUNDED`] can converge here. Since every operator is
/// monotone and the intersection is taken per definition, the affine
/// result is contained in the plain interval result by induction —
/// asserted per evaluation in debug builds. Tightened evaluations bump the
/// `analyze.affine_tightened` counter on an attached recorder.
pub fn analyze_ranges_affine(
    graph: &Graph,
    seeds: &HashMap<SignalId, Interval>,
    options: &AnalyzeOptions,
    memo: &mut RangeMemo,
    recorder: Option<&dyn Recorder>,
) -> RangeAnalysis {
    analyze_inner(graph, seeds, options, memo, recorder, true)
}

fn analyze_inner(
    graph: &Graph,
    seeds: &HashMap<SignalId, Interval>,
    options: &AnalyzeOptions,
    memo: &mut RangeMemo,
    recorder: Option<&dyn Recorder>,
    affine: bool,
) -> RangeAnalysis {
    let mut ranges: HashMap<SignalId, Interval> = seeds.clone();
    let mut growth: HashMap<SignalId, usize> = HashMap::new();
    let mut exploded: HashSet<SignalId> = HashSet::new();
    let mut widened: HashSet<SignalId> = HashSet::new();
    let mut clamped: HashSet<SignalId> = HashSet::new();

    let defined: Vec<SignalId> = {
        let mut v: Vec<SignalId> = graph.defined_signals().collect();
        v.sort();
        v
    };

    let note_clamp = |sig: SignalId, itv: Interval, clamped: &mut HashSet<SignalId>| {
        if clamped.insert(sig) {
            if let Some(rec) = recorder {
                rec.inc("analyze.range_clamped", 1);
                rec.record_event(Event::RangeClamped {
                    signal: sig.to_string(),
                    lo: itv.lo,
                    hi: itv.hi,
                });
            }
        }
    };
    let note_explode = |sig: SignalId, passes: usize, exploded: &mut HashSet<SignalId>| {
        if exploded.insert(sig) {
            if let Some(rec) = recorder {
                rec.inc("analyze.range_exploded", 1);
                rec.record_event(Event::RangeExploded {
                    signal: sig.to_string(),
                    passes,
                });
            }
        }
    };
    // In affine mode every definition gets the tighter of the interval
    // and affine envelopes; both are sound, so their intersection is too.
    let eval_combined = |memo: &mut RangeMemo,
                         def: NodeId,
                         ranges: &HashMap<SignalId, Interval>|
     -> (Interval, bool) {
        let (itv, was_clamped) = memo.eval(graph, def, ranges);
        if !affine {
            return (itv, was_clamped);
        }
        let aff = eval_affine(graph, def, ranges).to_interval();
        let tight = itv.intersect(&aff);
        if tight.is_empty() {
            // Both envelopes contain the true image, so a truly empty
            // intersection cannot happen; guard against f64 edge cases
            // by falling back to the interval answer.
            debug_assert!(false, "disjoint envelopes: {itv} vs {aff}");
            return (itv, was_clamped);
        }
        debug_assert!(
            itv.contains_interval(&tight),
            "affine-combined {tight} not inside interval {itv}"
        );
        if tight != itv {
            if let Some(rec) = recorder {
                rec.inc("analyze.affine_tightened", 1);
            }
        }
        (tight, was_clamped)
    };

    let mut passes = 0;
    let mut fixpoint = false;
    while passes < options.max_passes {
        passes += 1;
        let mut changed = false;
        for &sig in &defined {
            if seeds.contains_key(&sig) {
                continue; // pinned
            }
            let mut incoming = Interval::EMPTY;
            let mut any_clamped = false;
            for &def in graph.defs(sig) {
                let (itv, was_clamped) = eval_combined(memo, def, &ranges);
                incoming = incoming.union(&itv);
                any_clamped |= was_clamped;
            }
            let old = ranges.get(&sig).copied().unwrap_or(Interval::EMPTY);
            let mut new = old.union(&incoming);
            if any_clamped {
                note_clamp(sig, new, &mut clamped);
            }
            if new != old {
                let g = growth.entry(sig).or_insert(0);
                *g += 1;
                if *g >= options.widen_after {
                    new = Interval::UNBOUNDED;
                    note_explode(sig, *g, &mut exploded);
                    widened.insert(sig);
                }
                ranges.insert(sig, new);
                changed = true;
            }
        }
        if !changed {
            fixpoint = true;
            break;
        }
    }

    if !fixpoint {
        // Anything still moving at the pass limit is effectively unbounded.
        for &sig in &defined {
            if seeds.contains_key(&sig) {
                continue;
            }
            let mut incoming = Interval::EMPTY;
            for &def in graph.defs(sig) {
                let (itv, _) = eval_combined(memo, def, &ranges);
                incoming = incoming.union(&itv);
            }
            let old = ranges.get(&sig).copied().unwrap_or(Interval::EMPTY);
            if old.union(&incoming) != old {
                ranges.insert(sig, Interval::UNBOUNDED);
                note_explode(
                    sig,
                    growth.get(&sig).copied().unwrap_or(passes),
                    &mut exploded,
                );
                widened.insert(sig);
            }
        }
    }

    RangeAnalysis {
        ranges,
        exploded,
        widened,
        clamped,
        passes,
        fixpoint,
    }
}

/// Evaluates one definition subtree. Returns the interval and whether a
/// zero-spanning division inside the subtree was clamped to a declared
/// type bound.
///
/// Division by a range spanning zero is unbounded in interval arithmetic;
/// when the *dividend* carries a declared type (an explicit `cast`), the
/// quotient is clamped to that type's representable range instead of
/// poisoning every downstream multiplication. The clamp is a pragmatic,
/// designer-facing bound (journaled like an overflow, reported via
/// [`RangeAnalysis::clamped_signals`]), mirroring how the hardware cannot
/// hold more than the declared wordlength either way; with no declared
/// type in sight the quotient stays honestly unbounded.
fn eval_uncached(
    graph: &Graph,
    root: NodeId,
    ranges: &HashMap<SignalId, Interval>,
) -> (Interval, bool) {
    // Iterative post-order evaluation with a memo over this call.
    let mut memo: HashMap<NodeId, Interval> = HashMap::new();
    let mut clamped = false;
    let mut stack = vec![(root, false)];
    while let Some((id, expanded)) = stack.pop() {
        if memo.contains_key(&id) {
            continue;
        }
        let node = graph.node(id);
        if !expanded && !node.args.is_empty() {
            stack.push((id, true));
            for &a in &node.args {
                stack.push((a, false));
            }
            continue;
        }
        let arg = |i: usize| memo[&node.args[i]];
        let itv = match &node.op {
            Op::Const(c) => Interval::point(*c),
            Op::Read(s) => effective_range(ranges, *s),
            Op::Add => arg(0) + arg(1),
            Op::Sub => arg(0) - arg(1),
            Op::Mul => arg(0) * arg(1),
            Op::Div => {
                let q = arg(0) / arg(1);
                if q.is_exploded() {
                    if let Op::Cast(dt) = &graph.node(node.args[0]).op {
                        clamped = true;
                        q.clamp_to(&Interval::from_dtype(dt))
                    } else {
                        q
                    }
                } else {
                    q
                }
            }
            Op::Neg => -arg(0),
            Op::Abs => arg(0).abs(),
            Op::Min => arg(0).min(&arg(1)),
            Op::Max => arg(0).max(&arg(1)),
            Op::Cast(dt) => {
                if dt.overflow() == OverflowMode::Saturate {
                    arg(0).clamp_to(&Interval::from_dtype(dt))
                } else {
                    arg(0)
                }
            }
            Op::Select => arg(1).union(&arg(2)),
        };
        memo.insert(id, itv);
    }
    (memo[&root], clamped)
}

/// High bit marks noise symbols that belong to graph nodes (nonlinear
/// fallbacks) rather than signals, so the two namespaces cannot collide.
const NODE_SYMBOL: u32 = 0x8000_0000;

/// Evaluates one definition subtree in affine arithmetic.
///
/// Every `Op::Read` of a signal is anchored on that signal's noise symbol
/// (its raw id), so multiple reads of the same signal inside one
/// definition are fully correlated — the source of the tightening over
/// plain intervals. Nonlinear operators without a useful affine form
/// (division, abs, min/max, select) fall back to interval evaluation of
/// their operands' concretizations, anchored on a per-node symbol; the
/// result is sound but uncorrelated, exactly like the interval path.
fn eval_affine(graph: &Graph, root: NodeId, ranges: &HashMap<SignalId, Interval>) -> AffineForm {
    let mut memo: HashMap<NodeId, AffineForm> = HashMap::new();
    let mut stack = vec![(root, false)];
    while let Some((id, expanded)) = stack.pop() {
        if memo.contains_key(&id) {
            continue;
        }
        let node = graph.node(id);
        if !expanded && !node.args.is_empty() {
            stack.push((id, true));
            for &a in &node.args {
                stack.push((a, false));
            }
            continue;
        }
        let fresh = NODE_SYMBOL | id.0;
        let arg = |i: usize| &memo[&node.args[i]];
        let form = match &node.op {
            Op::Const(c) => AffineForm::constant(*c),
            Op::Read(s) => AffineForm::from_interval(&effective_range(ranges, *s), s.raw()),
            Op::Add => arg(0).add(arg(1)),
            Op::Sub => arg(0).sub(arg(1)),
            Op::Mul => arg(0).mul(arg(1)),
            Op::Div => {
                // Same clamp rule as the interval path: a zero-spanning
                // quotient with a cast dividend bounds to the cast type.
                let q = arg(0).to_interval() / arg(1).to_interval();
                let q = if q.is_exploded() {
                    if let Op::Cast(dt) = &graph.node(node.args[0]).op {
                        q.clamp_to(&Interval::from_dtype(dt))
                    } else {
                        q
                    }
                } else {
                    q
                };
                AffineForm::from_interval(&q, fresh)
            }
            Op::Neg => arg(0).neg(),
            Op::Abs => AffineForm::from_interval(&arg(0).to_interval().abs(), fresh),
            Op::Min => {
                AffineForm::from_interval(&arg(0).to_interval().min(&arg(1).to_interval()), fresh)
            }
            Op::Max => {
                AffineForm::from_interval(&arg(0).to_interval().max(&arg(1).to_interval()), fresh)
            }
            Op::Cast(dt) => {
                if dt.overflow() == OverflowMode::Saturate {
                    arg(0).clamp_to(&Interval::from_dtype(dt), fresh)
                } else {
                    arg(0).clone()
                }
            }
            Op::Select => {
                AffineForm::from_interval(&arg(1).to_interval().union(&arg(2).to_interval()), fresh)
            }
        };
        memo.insert(id, form);
    }
    memo[&root].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Op;

    fn sid(i: u32) -> SignalId {
        SignalId(i)
    }

    /// Builds `y = a*c0 + b*c1` and checks the straight-line fixpoint.
    #[test]
    fn straight_line_dataflow() {
        let mut g = Graph::new();
        let a = g.add(Op::Read(sid(0)), vec![]);
        let b = g.add(Op::Read(sid(1)), vec![]);
        let c0 = g.add(Op::Const(0.5), vec![]);
        let c1 = g.add(Op::Const(-2.0), vec![]);
        let p0 = g.add(Op::Mul, vec![a, c0]);
        let p1 = g.add(Op::Mul, vec![b, c1]);
        let s = g.add(Op::Add, vec![p0, p1]);
        g.record_def(sid(2), s);

        let mut seeds = HashMap::new();
        seeds.insert(sid(0), Interval::new(-1.0, 1.0));
        seeds.insert(sid(1), Interval::new(0.0, 2.0));
        let r = analyze_ranges(&g, &seeds, &AnalyzeOptions::default());
        assert!(r.converged());
        // a*0.5 in [-0.5,0.5]; b*-2 in [-4,0]; sum in [-4.5, 0.5]
        assert_eq!(r.range_of(sid(2)).unwrap(), Interval::new(-4.5, 0.5));
        assert!(!r.is_exploded(sid(2)));
    }

    /// An unseeded read contributes the reset value [0,0].
    #[test]
    fn unseeded_read_is_zero_point() {
        let mut g = Graph::new();
        let a = g.add(Op::Read(sid(0)), vec![]);
        let one = g.add(Op::Const(1.0), vec![]);
        let s = g.add(Op::Add, vec![a, one]);
        g.record_def(sid(1), s);
        let r = analyze_ranges(&g, &HashMap::new(), &AnalyzeOptions::default());
        assert_eq!(r.range_of(sid(1)).unwrap(), Interval::point(1.0));
    }

    /// A bounded feedback loop (decaying accumulator) converges.
    #[test]
    fn contracting_feedback_converges() {
        // acc = acc * 0.5 + x, x in [-1, 1]: fixpoint [-2, 2].
        let mut g = Graph::new();
        let acc = g.add(Op::Read(sid(0)), vec![]);
        let half = g.add(Op::Const(0.5), vec![]);
        let x = g.add(Op::Read(sid(1)), vec![]);
        let m = g.add(Op::Mul, vec![acc, half]);
        let s = g.add(Op::Add, vec![m, x]);
        g.record_def(sid(0), s);

        let mut seeds = HashMap::new();
        seeds.insert(sid(1), Interval::new(-1.0, 1.0));
        let r = analyze_ranges(&g, &seeds, &AnalyzeOptions::default());
        assert!(r.converged());
        let acc_range = r.range_of(sid(0)).unwrap();
        assert!(!r.is_exploded(sid(0)));
        // Interval iteration converges to within f64 resolution of [-2, 2].
        assert!(acc_range.lo >= -2.0 - 1e-9 && acc_range.lo <= -1.9);
        assert!(acc_range.hi <= 2.0 + 1e-9 && acc_range.hi >= 1.9);
    }

    /// An expanding feedback loop explodes and is widened.
    #[test]
    fn expanding_feedback_explodes() {
        // acc = acc + x, x in [-1, 1]: diverges.
        let mut g = Graph::new();
        let acc = g.add(Op::Read(sid(0)), vec![]);
        let x = g.add(Op::Read(sid(1)), vec![]);
        let s = g.add(Op::Add, vec![acc, x]);
        g.record_def(sid(0), s);

        let mut seeds = HashMap::new();
        seeds.insert(sid(1), Interval::new(-1.0, 1.0));
        let opts = AnalyzeOptions {
            max_passes: 100,
            widen_after: 16,
        };
        let r = analyze_ranges(&g, &seeds, &opts);
        assert!(r.is_exploded(sid(0)));
        assert!(r.range_of(sid(0)).unwrap().is_exploded());
        assert!(r.exploded_signals().any(|s| s == sid(0)));
        // Widening makes the analysis terminate within the pass budget.
        assert!(r.passes() <= 100);
    }

    /// Regression (bugfix): a run that only stabilized because a signal
    /// was widened to UNBOUNDED must not report convergence — widened
    /// signals are reported distinctly from clean fixpoints.
    #[test]
    fn widened_feedback_does_not_count_as_converged() {
        let mut g = Graph::new();
        let acc = g.add(Op::Read(sid(0)), vec![]);
        let x = g.add(Op::Read(sid(1)), vec![]);
        let s = g.add(Op::Add, vec![acc, x]);
        g.record_def(sid(0), s);

        let mut seeds = HashMap::new();
        seeds.insert(sid(1), Interval::new(-1.0, 1.0));
        let opts = AnalyzeOptions {
            max_passes: 100,
            widen_after: 16,
        };
        let r = analyze_ranges(&g, &seeds, &opts);
        // The loop stabilized (widening snapped the range) well within
        // the pass budget ...
        assert!(r.passes() < 100);
        // ... but that is an explosion, not convergence.
        assert!(!r.converged());
        assert!(r.is_widened(sid(0)));
        assert_eq!(r.widened_signals().collect::<Vec<_>>(), vec![sid(0)]);
        // The seeded input is a clean fixpoint, not widened.
        assert!(!r.is_widened(sid(1)));
    }

    /// Seeding the feedback signal (the paper's range() fix) stops the
    /// explosion.
    #[test]
    fn seeding_feedback_prevents_explosion() {
        let mut g = Graph::new();
        let acc = g.add(Op::Read(sid(0)), vec![]);
        let x = g.add(Op::Read(sid(1)), vec![]);
        let s = g.add(Op::Add, vec![acc, x]);
        g.record_def(sid(0), s);

        let mut seeds = HashMap::new();
        seeds.insert(sid(1), Interval::new(-1.0, 1.0));
        seeds.insert(sid(0), Interval::new(-0.2, 0.2)); // the b.range() fix
        let r = analyze_ranges(&g, &seeds, &AnalyzeOptions::default());
        assert!(r.converged());
        assert!(!r.is_exploded(sid(0)));
        assert_eq!(r.range_of(sid(0)).unwrap(), Interval::new(-0.2, 0.2));
    }

    /// Saturating casts bound an otherwise exploding loop.
    #[test]
    fn saturating_cast_bounds_feedback() {
        let dt = fixref_fixed::DType::tc("sat", 8, 5).unwrap(); // saturating
        let mut g = Graph::new();
        let acc = g.add(Op::Read(sid(0)), vec![]);
        let x = g.add(Op::Read(sid(1)), vec![]);
        let s = g.add(Op::Add, vec![acc, x]);
        let c = g.add(Op::Cast(dt.clone()), vec![s]);
        g.record_def(sid(0), c);

        let mut seeds = HashMap::new();
        seeds.insert(sid(1), Interval::new(-1.0, 1.0));
        let r = analyze_ranges(&g, &seeds, &AnalyzeOptions::default());
        assert!(r.converged());
        assert!(!r.is_exploded(sid(0)));
        let range = r.range_of(sid(0)).unwrap();
        assert!(range.lo >= dt.min_value());
        assert!(range.hi <= dt.max_value());
    }

    /// Select covers both branches.
    #[test]
    fn select_unions_branches() {
        let mut g = Graph::new();
        let w = g.add(Op::Read(sid(0)), vec![]);
        let one = g.add(Op::Const(1.0), vec![]);
        let mone = g.add(Op::Const(-1.0), vec![]);
        let sel = g.add(Op::Select, vec![w, one, mone]);
        g.record_def(sid(1), sel);
        let r = analyze_ranges(&g, &HashMap::new(), &AnalyzeOptions::default());
        assert_eq!(r.range_of(sid(1)).unwrap(), Interval::new(-1.0, 1.0));
    }

    /// Multiple defs union.
    #[test]
    fn multiple_defs_union() {
        let mut g = Graph::new();
        let a = g.add(Op::Const(3.0), vec![]);
        let b = g.add(Op::Const(-5.0), vec![]);
        g.record_def(sid(0), a);
        g.record_def(sid(0), b);
        let r = analyze_ranges(&g, &HashMap::new(), &AnalyzeOptions::default());
        assert_eq!(r.range_of(sid(0)).unwrap(), Interval::new(-5.0, 3.0));
    }

    /// Division by a zero-containing range with no declared type in sight
    /// stays honestly unbounded (documented interval semantics).
    #[test]
    fn division_by_zero_range_is_unbounded() {
        let mut g = Graph::new();
        let a = g.add(Op::Const(1.0), vec![]);
        let d = g.add(Op::Read(sid(0)), vec![]);
        let q = g.add(Op::Div, vec![a, d]);
        g.record_def(sid(1), q);
        let mut seeds = HashMap::new();
        seeds.insert(sid(0), Interval::new(-1.0, 1.0));
        let r = analyze_ranges(&g, &seeds, &AnalyzeOptions::default());
        assert!(r.is_exploded(sid(1)));
        assert!(!r.is_clamped(sid(1)));
    }

    /// Bugfix: when the dividend carries a declared type (a cast), a
    /// zero-spanning division clamps to the type bound and is reported,
    /// instead of poisoning downstream multiplications.
    #[test]
    fn division_by_zero_range_clamps_to_declared_type_bound() {
        let dt = fixref_fixed::DType::tc("T_num", 8, 4).unwrap();
        let mut g = Graph::new();
        let num = g.add(Op::Read(sid(0)), vec![]);
        let cast = g.add(Op::Cast(dt.clone()), vec![num]);
        let den = g.add(Op::Read(sid(1)), vec![]);
        let q = g.add(Op::Div, vec![cast, den]);
        g.record_def(sid(2), q);
        // Downstream: w = q * q would be inf*inf without the clamp.
        let q2 = g.add(Op::Read(sid(2)), vec![]);
        let m = g.add(Op::Mul, vec![q2, q2]);
        g.record_def(sid(3), m);

        let mut seeds = HashMap::new();
        seeds.insert(sid(0), Interval::new(-1.0, 1.0));
        seeds.insert(sid(1), Interval::new(-1.0, 1.0)); // spans zero
        let r = analyze_ranges(&g, &seeds, &AnalyzeOptions::default());
        assert!(r.converged());
        assert!(r.is_clamped(sid(2)));
        assert!(!r.is_exploded(sid(2)));
        let qr = r.range_of(sid(2)).unwrap();
        assert_eq!(qr, Interval::from_dtype(&dt));
        // Downstream multiplication stays bounded too.
        let mr = r.range_of(sid(3)).unwrap();
        assert!(mr.is_bounded(), "downstream poisoned: {mr}");
        assert_eq!(r.clamped_signals().collect::<Vec<_>>(), vec![sid(2)]);
    }

    /// The clamp journals an overflow_detected-style event and counter on
    /// an attached recorder.
    #[test]
    fn division_clamp_emits_journal_event() {
        use fixref_obs::DefaultRecorder;
        let dt = fixref_fixed::DType::tc("T_num", 6, 3).unwrap();
        let mut g = Graph::new();
        let num = g.add(Op::Read(sid(0)), vec![]);
        let cast = g.add(Op::Cast(dt), vec![num]);
        let den = g.add(Op::Read(sid(1)), vec![]);
        let q = g.add(Op::Div, vec![cast, den]);
        g.record_def(sid(2), q);

        let mut seeds = HashMap::new();
        seeds.insert(sid(0), Interval::new(-1.0, 1.0));
        seeds.insert(sid(1), Interval::new(-0.5, 0.5));
        let rec = DefaultRecorder::new();
        let r = analyze_ranges_with(
            &g,
            &seeds,
            &AnalyzeOptions::default(),
            &mut RangeMemo::new(),
            Some(&rec),
        );
        assert!(r.is_clamped(sid(2)));
        assert_eq!(rec.counter("analyze.range_clamped"), 1);
        let clamp_events: Vec<_> = rec
            .events()
            .into_iter()
            .filter(|e| matches!(e, Event::RangeClamped { .. }))
            .collect();
        assert_eq!(clamp_events.len(), 1, "one event per clamped signal");
        match &clamp_events[0] {
            Event::RangeClamped { signal, lo, hi } => {
                assert_eq!(signal, "s2");
                assert!(lo.is_finite() && hi.is_finite());
            }
            _ => unreachable!(),
        }
    }

    /// A shared memo answers unchanged definitions from cache across
    /// calls, bit-identically.
    #[test]
    fn shared_memo_hits_across_analyses_without_changing_results() {
        let mut g = Graph::new();
        let a = g.add(Op::Read(sid(0)), vec![]);
        let c = g.add(Op::Const(0.25), vec![]);
        let m = g.add(Op::Mul, vec![a, c]);
        g.record_def(sid(1), m);
        let b = g.add(Op::Read(sid(1)), vec![]);
        let s = g.add(Op::Add, vec![b, c]);
        g.record_def(sid(2), s);

        let mut seeds = HashMap::new();
        seeds.insert(sid(0), Interval::new(-2.0, 2.0));

        let cold = analyze_ranges(&g, &seeds, &AnalyzeOptions::default());

        let mut memo = RangeMemo::new();
        let first = analyze_ranges_with(&g, &seeds, &AnalyzeOptions::default(), &mut memo, None);
        let cold_misses = memo.misses();
        assert!(cold_misses > 0);
        let second = analyze_ranges_with(&g, &seeds, &AnalyzeOptions::default(), &mut memo, None);
        // The repeat run re-derived nothing.
        assert_eq!(memo.misses(), cold_misses);
        assert!(memo.hits() > 0);
        for id in [sid(1), sid(2)] {
            assert_eq!(first.range_of(id), cold.range_of(id));
            assert_eq!(second.range_of(id), first.range_of(id));
        }

        // Changing a seed invalidates exactly the dependent entries and
        // still computes the right ranges.
        seeds.insert(sid(0), Interval::new(-4.0, 4.0));
        let third = analyze_ranges_with(&g, &seeds, &AnalyzeOptions::default(), &mut memo, None);
        assert_eq!(third.range_of(sid(1)).unwrap(), Interval::new(-1.0, 1.0));
        assert!(memo.misses() > cold_misses);
    }

    /// Satellite: explosion is journaled (event + counter), not silent.
    #[test]
    fn widening_emits_range_exploded_event_and_counter() {
        use fixref_obs::DefaultRecorder;
        let mut g = Graph::new();
        let acc = g.add(Op::Read(sid(0)), vec![]);
        let x = g.add(Op::Read(sid(1)), vec![]);
        let s = g.add(Op::Add, vec![acc, x]);
        g.record_def(sid(0), s);

        let mut seeds = HashMap::new();
        seeds.insert(sid(1), Interval::new(-1.0, 1.0));
        let opts = AnalyzeOptions {
            max_passes: 100,
            widen_after: 16,
        };
        let rec = DefaultRecorder::new();
        let r = analyze_ranges_with(&g, &seeds, &opts, &mut RangeMemo::new(), Some(&rec));
        assert!(r.is_exploded(sid(0)));
        assert_eq!(rec.counter("analyze.range_exploded"), 1);
        let ev: Vec<_> = rec
            .events()
            .into_iter()
            .filter(|e| matches!(e, Event::RangeExploded { .. }))
            .collect();
        assert_eq!(ev.len(), 1, "one event per exploded signal");
        match &ev[0] {
            Event::RangeExploded { signal, passes } => {
                assert_eq!(signal, "s0");
                assert_eq!(*passes, 16);
            }
            _ => unreachable!(),
        }
    }

    /// Tentpole: the additively-written leaky accumulator
    /// `acc = acc + x - acc*mu` explodes under interval arithmetic (the
    /// two `acc` reads decorrelate, net growth factor `1 + mu`) but
    /// converges under the affine propagator (shared noise symbol, net
    /// contraction `1 - mu`).
    #[test]
    fn affine_converges_where_intervals_explode() {
        let mut g = Graph::new();
        let acc = g.add(Op::Read(sid(0)), vec![]);
        let x = g.add(Op::Read(sid(1)), vec![]);
        let mu = g.add(Op::Const(0.25), vec![]);
        let leak = g.add(Op::Mul, vec![acc, mu]);
        let grown = g.add(Op::Add, vec![acc, x]);
        let s = g.add(Op::Sub, vec![grown, leak]);
        g.record_def(sid(0), s);

        let mut seeds = HashMap::new();
        seeds.insert(sid(1), Interval::new(-1.0, 1.0));
        // Geometric convergence at factor 0.75 takes ~125 passes to
        // settle in f64; give both analyses the same generous budget —
        // the interval iteration truly diverges (growth factor 1.25), so
        // no budget saves it.
        let opts = AnalyzeOptions {
            max_passes: 512,
            widen_after: 256,
        };

        let interval = analyze_ranges(&g, &seeds, &opts);
        assert!(
            interval.is_exploded(sid(0)),
            "interval analysis should rail: {:?}",
            interval.range_of(sid(0))
        );

        let affine = analyze_ranges_affine(&g, &seeds, &opts, &mut RangeMemo::new(), None);
        assert!(affine.converged(), "affine analysis should converge");
        let r = affine.range_of(sid(0)).expect("range derived");
        assert!(r.is_bounded(), "affine range still unbounded: {r}");
        // True fixpoint of |acc| <= 0.75*|acc| + 1 is [-4, 4].
        assert!(r.hi <= 4.0 + 1e-6 && r.hi >= 3.0, "loose/overtight: {r}");
    }

    /// The affine result is contained in the interval result (soundness
    /// direction asserted per-definition in debug builds, checked here on
    /// whole analyses), and on straight-line code the two agree.
    #[test]
    fn affine_result_is_inside_interval_result() {
        use fixref_obs::DefaultRecorder;
        let mut g = Graph::new();
        let a = g.add(Op::Read(sid(0)), vec![]);
        let b = g.add(Op::Read(sid(1)), vec![]);
        let d = g.add(Op::Sub, vec![a, a]); // correlated: exactly 0
        let m = g.add(Op::Mul, vec![a, b]);
        let s = g.add(Op::Add, vec![d, m]);
        g.record_def(sid(2), s);

        let mut seeds = HashMap::new();
        seeds.insert(sid(0), Interval::new(-1.0, 1.0));
        seeds.insert(sid(1), Interval::new(0.0, 2.0));
        let interval = analyze_ranges(&g, &seeds, &AnalyzeOptions::default());
        let rec = DefaultRecorder::new();
        let affine = analyze_ranges_affine(
            &g,
            &seeds,
            &AnalyzeOptions::default(),
            &mut RangeMemo::new(),
            Some(&rec),
        );
        let ir = interval.range_of(sid(2)).expect("interval range");
        let ar = affine.range_of(sid(2)).expect("affine range");
        assert!(
            ir.contains_interval(&ar),
            "affine {ar} escapes interval {ir}"
        );
        // a - a decorrelates to [-2,2] in interval arithmetic, so the
        // affine envelope is strictly tighter and the counter says so.
        assert!(ar.width() < ir.width());
        assert!(rec.counter("analyze.affine_tightened") > 0);
    }

    /// The memo resets itself when the graph changes underneath it.
    #[test]
    fn memo_resets_when_graph_changes() {
        let mut g = Graph::new();
        let a = g.add(Op::Read(sid(0)), vec![]);
        let n = g.add(Op::Neg, vec![a]);
        g.record_def(sid(1), n);
        let mut seeds = HashMap::new();
        seeds.insert(sid(0), Interval::new(0.0, 1.0));
        let mut memo = RangeMemo::new();
        let r1 = analyze_ranges_with(&g, &seeds, &AnalyzeOptions::default(), &mut memo, None);
        assert_eq!(r1.range_of(sid(1)).unwrap(), Interval::new(-1.0, 0.0));

        // Grow the graph: a second definition through new nodes.
        let c = g.add(Op::Const(5.0), vec![]);
        g.record_def(sid(1), c);
        let r2 = analyze_ranges_with(&g, &seeds, &AnalyzeOptions::default(), &mut memo, None);
        assert_eq!(r2.range_of(sid(1)).unwrap(), Interval::new(-1.0, 5.0));
    }
}
