//! Analytical range estimation over the signal-flow graph.
//!
//! This is the third MSB-side method of paper §4.1: "a perfect evaluation
//! of the signal range is enabled by constructing a signal flowgraph out of
//! the source code and analyzing the data flow using the same range
//! propagation mechanism". [`analyze_ranges`] runs the interval arithmetic
//! of [`fixref_fixed::Interval`] to a fixpoint over a recorded [`Graph`],
//! independent of how long the stimulus simulation ran.
//!
//! Feedback cycles that grow without bound are *widened* to
//! [`Interval::UNBOUNDED`] after a configurable number of growing passes —
//! the explicit form of the paper's "explosion of the MSB" on feedback
//! signals. The cure is the same as in the paper: seed the offending signal
//! with an explicit `range()` annotation and re-analyze.

use std::collections::{HashMap, HashSet};

use fixref_fixed::{Interval, OverflowMode};

use crate::design::SignalId;
use crate::graph::{Graph, NodeId, Op};

/// Options for [`analyze_ranges`].
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Maximum fixpoint passes before giving up.
    pub max_passes: usize,
    /// Widen a signal to `UNBOUNDED` after it has grown in this many
    /// consecutive passes (feedback explosion detection).
    pub widen_after: usize,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            max_passes: 256,
            widen_after: 64,
        }
    }
}

/// The result of an analytical range pass.
#[derive(Debug, Clone)]
pub struct RangeAnalysis {
    ranges: HashMap<SignalId, Interval>,
    exploded: HashSet<SignalId>,
    passes: usize,
    converged: bool,
}

impl RangeAnalysis {
    /// The derived range of a signal (`None` if it never appeared in the
    /// graph and was not seeded).
    pub fn range_of(&self, id: SignalId) -> Option<Interval> {
        self.ranges.get(&id).copied()
    }

    /// Whether the signal's range exploded (feedback without a bounding
    /// annotation).
    pub fn is_exploded(&self, id: SignalId) -> bool {
        self.exploded.contains(&id)
            || self
                .ranges
                .get(&id)
                .map(|i| i.is_exploded())
                .unwrap_or(false)
    }

    /// Signals whose range exploded.
    pub fn exploded_signals(&self) -> impl Iterator<Item = SignalId> + '_ {
        self.exploded.iter().copied()
    }

    /// Number of fixpoint passes performed.
    pub fn passes(&self) -> usize {
        self.passes
    }

    /// Whether a fixpoint was reached within the pass budget.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// All derived ranges.
    pub fn ranges(&self) -> &HashMap<SignalId, Interval> {
        &self.ranges
    }
}

/// Propagates ranges through `graph` to a fixpoint.
///
/// `seeds` pins the range of input or annotated signals; seeded signals
/// never widen beyond their seed (they model `range()` annotations or
/// saturating input converters). Signals read before any definition
/// contribute their reset value `[0, 0]`.
pub fn analyze_ranges(
    graph: &Graph,
    seeds: &HashMap<SignalId, Interval>,
    options: &AnalyzeOptions,
) -> RangeAnalysis {
    let mut ranges: HashMap<SignalId, Interval> = seeds.clone();
    let mut growth: HashMap<SignalId, usize> = HashMap::new();
    let mut exploded: HashSet<SignalId> = HashSet::new();

    let defined: Vec<SignalId> = {
        let mut v: Vec<SignalId> = graph.defined_signals().collect();
        v.sort();
        v
    };

    let mut passes = 0;
    let mut converged = false;
    while passes < options.max_passes {
        passes += 1;
        let mut changed = false;
        for &sig in &defined {
            if seeds.contains_key(&sig) {
                continue; // pinned
            }
            let mut incoming = Interval::EMPTY;
            for &def in graph.defs(sig) {
                incoming = incoming.union(&eval(graph, def, &ranges));
            }
            let old = ranges.get(&sig).copied().unwrap_or(Interval::EMPTY);
            let mut new = old.union(&incoming);
            if new != old {
                let g = growth.entry(sig).or_insert(0);
                *g += 1;
                if *g >= options.widen_after {
                    new = Interval::UNBOUNDED;
                    exploded.insert(sig);
                }
                ranges.insert(sig, new);
                changed = true;
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }

    if !converged {
        // Anything still moving at the pass limit is effectively unbounded.
        for &sig in &defined {
            if seeds.contains_key(&sig) {
                continue;
            }
            let mut incoming = Interval::EMPTY;
            for &def in graph.defs(sig) {
                incoming = incoming.union(&eval(graph, def, &ranges));
            }
            let old = ranges.get(&sig).copied().unwrap_or(Interval::EMPTY);
            if old.union(&incoming) != old {
                ranges.insert(sig, Interval::UNBOUNDED);
                exploded.insert(sig);
            }
        }
    }

    RangeAnalysis {
        ranges,
        exploded,
        passes,
        converged,
    }
}

fn eval(graph: &Graph, root: NodeId, ranges: &HashMap<SignalId, Interval>) -> Interval {
    // Iterative post-order evaluation with a memo over this call.
    let mut memo: HashMap<NodeId, Interval> = HashMap::new();
    let mut stack = vec![(root, false)];
    while let Some((id, expanded)) = stack.pop() {
        if memo.contains_key(&id) {
            continue;
        }
        let node = graph.node(id);
        if !expanded && !node.args.is_empty() {
            stack.push((id, true));
            for &a in &node.args {
                stack.push((a, false));
            }
            continue;
        }
        let arg = |i: usize| memo[&node.args[i]];
        let itv = match &node.op {
            Op::Const(c) => Interval::point(*c),
            Op::Read(s) => ranges
                .get(s)
                .copied()
                .filter(|i| !i.is_empty())
                .unwrap_or_else(|| Interval::point(0.0)),
            Op::Add => arg(0) + arg(1),
            Op::Sub => arg(0) - arg(1),
            Op::Mul => arg(0) * arg(1),
            Op::Div => arg(0) / arg(1),
            Op::Neg => -arg(0),
            Op::Abs => arg(0).abs(),
            Op::Min => arg(0).min(&arg(1)),
            Op::Max => arg(0).max(&arg(1)),
            Op::Cast(dt) => {
                if dt.overflow() == OverflowMode::Saturate {
                    arg(0).intersect(&Interval::from_dtype(dt))
                } else {
                    arg(0)
                }
            }
            Op::Select => arg(1).union(&arg(2)),
        };
        memo.insert(id, itv);
    }
    memo[&root]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Op;

    fn sid(i: u32) -> SignalId {
        SignalId(i)
    }

    /// Builds `y = a*c0 + b*c1` and checks the straight-line fixpoint.
    #[test]
    fn straight_line_dataflow() {
        let mut g = Graph::new();
        let a = g.add(Op::Read(sid(0)), vec![]);
        let b = g.add(Op::Read(sid(1)), vec![]);
        let c0 = g.add(Op::Const(0.5), vec![]);
        let c1 = g.add(Op::Const(-2.0), vec![]);
        let p0 = g.add(Op::Mul, vec![a, c0]);
        let p1 = g.add(Op::Mul, vec![b, c1]);
        let s = g.add(Op::Add, vec![p0, p1]);
        g.record_def(sid(2), s);

        let mut seeds = HashMap::new();
        seeds.insert(sid(0), Interval::new(-1.0, 1.0));
        seeds.insert(sid(1), Interval::new(0.0, 2.0));
        let r = analyze_ranges(&g, &seeds, &AnalyzeOptions::default());
        assert!(r.converged());
        // a*0.5 in [-0.5,0.5]; b*-2 in [-4,0]; sum in [-4.5, 0.5]
        assert_eq!(r.range_of(sid(2)).unwrap(), Interval::new(-4.5, 0.5));
        assert!(!r.is_exploded(sid(2)));
    }

    /// An unseeded read contributes the reset value [0,0].
    #[test]
    fn unseeded_read_is_zero_point() {
        let mut g = Graph::new();
        let a = g.add(Op::Read(sid(0)), vec![]);
        let one = g.add(Op::Const(1.0), vec![]);
        let s = g.add(Op::Add, vec![a, one]);
        g.record_def(sid(1), s);
        let r = analyze_ranges(&g, &HashMap::new(), &AnalyzeOptions::default());
        assert_eq!(r.range_of(sid(1)).unwrap(), Interval::point(1.0));
    }

    /// A bounded feedback loop (decaying accumulator) converges.
    #[test]
    fn contracting_feedback_converges() {
        // acc = acc * 0.5 + x, x in [-1, 1]: fixpoint [-2, 2].
        let mut g = Graph::new();
        let acc = g.add(Op::Read(sid(0)), vec![]);
        let half = g.add(Op::Const(0.5), vec![]);
        let x = g.add(Op::Read(sid(1)), vec![]);
        let m = g.add(Op::Mul, vec![acc, half]);
        let s = g.add(Op::Add, vec![m, x]);
        g.record_def(sid(0), s);

        let mut seeds = HashMap::new();
        seeds.insert(sid(1), Interval::new(-1.0, 1.0));
        let r = analyze_ranges(&g, &seeds, &AnalyzeOptions::default());
        assert!(r.converged());
        let acc_range = r.range_of(sid(0)).unwrap();
        assert!(!r.is_exploded(sid(0)));
        // Interval iteration converges to within f64 resolution of [-2, 2].
        assert!(acc_range.lo >= -2.0 - 1e-9 && acc_range.lo <= -1.9);
        assert!(acc_range.hi <= 2.0 + 1e-9 && acc_range.hi >= 1.9);
    }

    /// An expanding feedback loop explodes and is widened.
    #[test]
    fn expanding_feedback_explodes() {
        // acc = acc + x, x in [-1, 1]: diverges.
        let mut g = Graph::new();
        let acc = g.add(Op::Read(sid(0)), vec![]);
        let x = g.add(Op::Read(sid(1)), vec![]);
        let s = g.add(Op::Add, vec![acc, x]);
        g.record_def(sid(0), s);

        let mut seeds = HashMap::new();
        seeds.insert(sid(1), Interval::new(-1.0, 1.0));
        let opts = AnalyzeOptions {
            max_passes: 100,
            widen_after: 16,
        };
        let r = analyze_ranges(&g, &seeds, &opts);
        assert!(r.is_exploded(sid(0)));
        assert!(r.range_of(sid(0)).unwrap().is_exploded());
        assert!(r.exploded_signals().any(|s| s == sid(0)));
        // Widening makes the analysis terminate (converged after widening).
        assert!(r.passes() <= 100);
    }

    /// Seeding the feedback signal (the paper's range() fix) stops the
    /// explosion.
    #[test]
    fn seeding_feedback_prevents_explosion() {
        let mut g = Graph::new();
        let acc = g.add(Op::Read(sid(0)), vec![]);
        let x = g.add(Op::Read(sid(1)), vec![]);
        let s = g.add(Op::Add, vec![acc, x]);
        g.record_def(sid(0), s);

        let mut seeds = HashMap::new();
        seeds.insert(sid(1), Interval::new(-1.0, 1.0));
        seeds.insert(sid(0), Interval::new(-0.2, 0.2)); // the b.range() fix
        let r = analyze_ranges(&g, &seeds, &AnalyzeOptions::default());
        assert!(r.converged());
        assert!(!r.is_exploded(sid(0)));
        assert_eq!(r.range_of(sid(0)).unwrap(), Interval::new(-0.2, 0.2));
    }

    /// Saturating casts bound an otherwise exploding loop.
    #[test]
    fn saturating_cast_bounds_feedback() {
        let dt = fixref_fixed::DType::tc("sat", 8, 5).unwrap(); // saturating
        let mut g = Graph::new();
        let acc = g.add(Op::Read(sid(0)), vec![]);
        let x = g.add(Op::Read(sid(1)), vec![]);
        let s = g.add(Op::Add, vec![acc, x]);
        let c = g.add(Op::Cast(dt.clone()), vec![s]);
        g.record_def(sid(0), c);

        let mut seeds = HashMap::new();
        seeds.insert(sid(1), Interval::new(-1.0, 1.0));
        let r = analyze_ranges(&g, &seeds, &AnalyzeOptions::default());
        assert!(r.converged());
        assert!(!r.is_exploded(sid(0)));
        let range = r.range_of(sid(0)).unwrap();
        assert!(range.lo >= dt.min_value());
        assert!(range.hi <= dt.max_value());
    }

    /// Select covers both branches.
    #[test]
    fn select_unions_branches() {
        let mut g = Graph::new();
        let w = g.add(Op::Read(sid(0)), vec![]);
        let one = g.add(Op::Const(1.0), vec![]);
        let mone = g.add(Op::Const(-1.0), vec![]);
        let sel = g.add(Op::Select, vec![w, one, mone]);
        g.record_def(sid(1), sel);
        let r = analyze_ranges(&g, &HashMap::new(), &AnalyzeOptions::default());
        assert_eq!(r.range_of(sid(1)).unwrap(), Interval::new(-1.0, 1.0));
    }

    /// Multiple defs union.
    #[test]
    fn multiple_defs_union() {
        let mut g = Graph::new();
        let a = g.add(Op::Const(3.0), vec![]);
        let b = g.add(Op::Const(-5.0), vec![]);
        g.record_def(sid(0), a);
        g.record_def(sid(0), b);
        let r = analyze_ranges(&g, &HashMap::new(), &AnalyzeOptions::default());
        assert_eq!(r.range_of(sid(0)).unwrap(), Interval::new(-5.0, 3.0));
    }

    /// Division by a zero-containing range explodes (documented interval
    /// semantics) rather than producing a wrong bound.
    #[test]
    fn division_by_zero_range_is_unbounded() {
        let mut g = Graph::new();
        let a = g.add(Op::Const(1.0), vec![]);
        let d = g.add(Op::Read(sid(0)), vec![]);
        let q = g.add(Op::Div, vec![a, d]);
        g.record_def(sid(1), q);
        let mut seeds = HashMap::new();
        seeds.insert(sid(0), Interval::new(-1.0, 1.0));
        let r = analyze_ranges(&g, &seeds, &AnalyzeOptions::default());
        assert!(r.is_exploded(sid(1)));
    }
}
