//! Zero-dependency scoped worker pool for scenario sweeps, with per-shard
//! fault isolation.
//!
//! [`run_shards_isolated`] evaluates one job per [`Scenario`] across a
//! bounded set of `std::thread::scope` workers and returns structured
//! [`ShardOutcome`]s **in scenario order**, independent of which worker
//! computed which shard. Each attempt runs under
//! [`std::panic::catch_unwind`], so a panicking shard yields
//! [`ShardOutcome::Failed`] instead of killing the scope and its sibling
//! workers; a [`RetryPolicy`] re-runs a failed shard (with the *same*
//! scenario, so a retry that succeeds is bit-identical to a fault-free
//! run) up to a capped number of attempts.
//!
//! [`run_shards`] is the original panic-propagating facade kept for
//! callers that treat any shard failure as fatal (e.g. the baseline
//! search). The job only needs to be `Sync` (shared by reference across
//! workers) and its result `Send`; the `Design` itself is deliberately
//! *not* shared — each job invocation builds a private design on its own
//! thread.

use crate::scenario::Scenario;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// How often — and after what delay — a failed shard is re-attempted.
///
/// The backoff schedule is *deterministic*: exponential doubling from
/// `base_backoff_ms`, capped at `max_backoff_ms`, with SplitMix64-seeded
/// jitter over `(backoff_seed, attempt)` so concurrent retries spread
/// out instead of retrying in lockstep, yet the same seed always
/// reproduces the same schedule. The default policy retries never and
/// sleeps never, so existing callers are unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per shard (first try included). Clamped to ≥ 1.
    pub max_attempts: usize,
    /// Backoff before the first retry, in ms. 0 disables backoff.
    pub base_backoff_ms: u64,
    /// Ceiling on any single backoff delay, in ms.
    pub max_backoff_ms: u64,
    /// Seed the jitter stream is derived from.
    pub backoff_seed: u64,
}

impl Default for RetryPolicy {
    /// One attempt: no retries, no backoff.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            backoff_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `max_attempts` total attempts (min 1), with no
    /// backoff between them.
    pub fn attempts(max_attempts: usize) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// Adds a seeded jittered exponential backoff between attempts:
    /// the delay before retry *n* doubles from `base_ms`, is capped at
    /// `max_ms`, and lands deterministically in the upper half of that
    /// window (`[cap/2, cap]`) per the jitter stream of `seed`.
    pub fn with_backoff(mut self, base_ms: u64, max_ms: u64, seed: u64) -> Self {
        self.base_backoff_ms = base_ms;
        self.max_backoff_ms = max_ms.max(base_ms);
        self.backoff_seed = seed;
        self
    }

    /// The delay in ms before 1-based retry `attempt` (attempt 0 — the
    /// first try — never waits). Deterministic in `(backoff_seed,
    /// attempt)`.
    pub fn backoff_ms(&self, attempt: usize) -> u64 {
        if attempt == 0 || self.base_backoff_ms == 0 {
            return 0;
        }
        // Exponential window, saturating well before u64 overflow.
        let doublings = (attempt - 1).min(32) as u32;
        let cap = self
            .base_backoff_ms
            .saturating_mul(1u64 << doublings)
            .min(self.max_backoff_ms);
        if cap <= 1 {
            return cap;
        }
        // SplitMix64 avalanche over (seed, attempt) — same construction
        // as FaultPlan::retry_seed — picking a point in [cap/2, cap].
        let mut z = self
            .backoff_seed
            .rotate_left(23)
            .wrapping_add((attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let half = cap / 2;
        half + z % (cap - half + 1)
    }

    /// The full backoff schedule: delays before retries `1..max_attempts`
    /// (empty when the policy never retries or never waits).
    pub fn backoff_schedule(&self) -> Vec<u64> {
        (1..self.max_attempts.max(1))
            .map(|a| self.backoff_ms(a))
            .collect()
    }
}

/// Why a shard failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The job panicked; the payload's message was captured.
    Panicked {
        /// The captured panic message (`"<non-string panic payload>"`
        /// when the payload was neither `&str` nor `String`).
        cause: String,
    },
    /// The worker terminated without publishing a result — the
    /// structured replacement for the old "shard produced no result"
    /// second panic.
    MissingResult,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Panicked { cause } => write!(f, "panicked: {cause}"),
            ShardError::MissingResult => f.write_str("produced no result"),
        }
    }
}

/// A shard that failed every permitted attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFailure {
    /// 0-based scenario index of the failed shard.
    pub shard: usize,
    /// Attempts made before giving up.
    pub attempts: usize,
    /// The final attempt's failure.
    pub error: ShardError,
}

impl fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {} {} (after {} attempt(s))",
            self.shard, self.error, self.attempts
        )
    }
}

/// The isolated result of one shard.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardOutcome<T> {
    /// The job returned a value (possibly after retries).
    Completed {
        /// The job's return value.
        value: T,
        /// Attempts it took (1 = first try succeeded).
        attempts: usize,
    },
    /// Every permitted attempt failed.
    Failed(ShardFailure),
}

impl<T> ShardOutcome<T> {
    /// The completed value, discarding attempt metadata; `None` if the
    /// shard failed.
    pub fn value(self) -> Option<T> {
        match self {
            ShardOutcome::Completed { value, .. } => Some(value),
            ShardOutcome::Failed(_) => None,
        }
    }

    /// Whether the shard failed.
    pub fn is_failed(&self) -> bool {
        matches!(self, ShardOutcome::Failed(_))
    }
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `job` for one scenario under `catch_unwind`, retrying per
/// `retry`. The attempt number (0-based) is passed to the job so fault
/// plans can key injections on `(shard, attempt)`.
fn run_one_isolated<T, F>(scenario: &Scenario, retry: RetryPolicy, job: &F) -> ShardOutcome<T>
where
    F: Fn(&Scenario, usize) -> T,
{
    let max_attempts = retry.max_attempts.max(1);
    let mut last_cause = String::new();
    for attempt in 0..max_attempts {
        let backoff = retry.backoff_ms(attempt);
        if backoff > 0 {
            std::thread::sleep(std::time::Duration::from_millis(backoff));
        }
        match catch_unwind(AssertUnwindSafe(|| job(scenario, attempt))) {
            Ok(value) => {
                return ShardOutcome::Completed {
                    value,
                    attempts: attempt + 1,
                }
            }
            Err(payload) => last_cause = panic_message(payload.as_ref()),
        }
    }
    ShardOutcome::Failed(ShardFailure {
        shard: scenario.index,
        attempts: max_attempts,
        error: ShardError::Panicked { cause: last_cause },
    })
}

/// Runs `job` once per scenario on up to `workers` threads with
/// per-shard panic isolation, returning one [`ShardOutcome`] per
/// scenario **in scenario order**.
///
/// With `workers <= 1` (or a single scenario) no threads are spawned at
/// all and the scenarios run sequentially on the caller's thread — the
/// isolation semantics (catch_unwind, retry) are identical on both
/// paths, so the differential conformance suite can compare them.
///
/// Work is distributed by an atomic claim counter, so an expensive shard
/// does not stall the others behind a fixed pre-partition. A panicking
/// job never kills the scope: sibling shards keep running and publish
/// their results regardless (the result mutex recovers from poisoning
/// defensively, although with in-job catch_unwind no worker thread
/// should ever unwind while holding it).
pub fn run_shards_isolated<T, F>(
    scenarios: &[Scenario],
    workers: usize,
    retry: RetryPolicy,
    job: F,
) -> Vec<ShardOutcome<T>>
where
    T: Send,
    F: Fn(&Scenario, usize) -> T + Sync,
{
    if workers <= 1 || scenarios.len() <= 1 {
        return scenarios
            .iter()
            .map(|s| run_one_isolated(s, retry, &job))
            .collect();
    }
    let threads = workers.min(scenarios.len());
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<ShardOutcome<T>>> = Vec::with_capacity(scenarios.len());
    slots.resize_with(scenarios.len(), || None);
    let slots_mutex = std::sync::Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    // Claim-compute-publish loop; results are batched per
                    // claim so the mutex is held only for the placement.
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some(scenario) = scenarios.get(idx) else {
                            break;
                        };
                        let outcome = run_one_isolated(scenario, retry, &job);
                        let mut slots = slots_mutex.lock().unwrap_or_else(|p| p.into_inner());
                        slots[idx] = Some(outcome);
                    }
                })
            })
            .collect();
        // With catch_unwind inside the claim loop a worker thread should
        // never unwind; if one somehow does, its unclaimed slots surface
        // below as structured MissingResult failures instead of a
        // propagated panic killing the surviving shards' results.
        for handle in handles {
            let _ = handle.join();
        }
    });

    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or(ShardOutcome::Failed(ShardFailure {
                shard: i,
                attempts: 0,
                error: ShardError::MissingResult,
            }))
        })
        .collect()
}

/// Runs `job` once per scenario on up to `workers` threads and returns
/// the bare results in scenario order, propagating any shard failure as
/// a panic on the caller's thread.
///
/// This is the original pre-isolation interface, kept for callers where
/// a failed shard is unrecoverable (e.g. the wordlength baseline
/// search). New code that wants graceful degradation should use
/// [`run_shards_isolated`].
pub fn run_shards<T, F>(scenarios: &[Scenario], workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Scenario) -> T + Sync,
{
    run_shards_isolated(scenarios, workers, RetryPolicy::default(), |s, _| job(s))
        .into_iter()
        .map(|outcome| match outcome {
            ShardOutcome::Completed { value, .. } => value,
            ShardOutcome::Failed(failure) => panic!("{failure}"),
        })
        .collect()
}

/// Shard count for tests and CI: reads the `FIXREF_TEST_SHARDS`
/// environment variable, falling back to `default` when unset or
/// unparsable. A value of `0` is treated as `1`.
pub fn shard_count_from_env(default: usize) -> usize {
    match std::env::var("FIXREF_TEST_SHARDS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(default).max(1),
        Err(_) => default.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioSet;

    fn set(n: usize) -> ScenarioSet {
        let seeds: Vec<u64> = (0..n as u64).collect();
        ScenarioSet::grid(&seeds, &[20.0], &[], &[64])
    }

    #[test]
    fn results_come_back_in_scenario_order_for_any_worker_count() {
        let scenarios = set(13);
        let expect: Vec<u64> = scenarios.iter().map(|s| s.seed * 3 + 1).collect();
        for workers in [1, 2, 3, 8, 32] {
            let got = run_shards(scenarios.as_slice(), workers, |s| s.seed * 3 + 1);
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn single_worker_runs_on_the_calling_thread() {
        let scenarios = set(4);
        let caller = std::thread::current().id();
        let ids = run_shards(scenarios.as_slice(), 1, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn many_workers_actually_fan_out() {
        // With more scenarios than workers and a brief stall, at least two
        // distinct threads should claim work (scheduling permitting — on a
        // single-core box this can still pass because scope threads exist
        // regardless of how they are interleaved).
        let scenarios = set(8);
        let ids = run_shards(scenarios.as_slice(), 4, |_| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            std::thread::current().id()
        });
        let caller = std::thread::current().id();
        assert!(ids.iter().all(|&id| id != caller));
    }

    #[test]
    fn worker_panic_propagates() {
        let scenarios = set(3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_shards(scenarios.as_slice(), 2, |s| {
                if s.index == 1 {
                    panic!("boom in shard 1");
                }
                s.index
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn empty_scenario_set_yields_empty_results() {
        let got: Vec<usize> = run_shards(&[], 4, |s| s.index);
        assert!(got.is_empty());
    }

    #[test]
    fn backoff_schedule_is_reproducible_from_the_seed() {
        // Property: over a spread of seeds and shapes, the schedule is a
        // pure function of (seed, base, max, attempts); each delay lands
        // in the jitter window [cap/2, cap] of its exponential cap; and
        // distinct seeds actually de-synchronize somewhere.
        let mut diverged = false;
        for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
            for (base, max) in [(1u64, 8u64), (25, 400), (100, 100), (7, 1_000_000)] {
                let p = RetryPolicy::attempts(6).with_backoff(base, max, seed);
                let a = p.backoff_schedule();
                let b = p.backoff_schedule();
                assert_eq!(a, b, "seed {seed} base {base}: schedule not stable");
                assert_eq!(a.len(), 5);
                for (i, &delay) in a.iter().enumerate() {
                    let cap = base.saturating_mul(1 << i).min(max.max(base));
                    assert!(
                        delay >= cap / 2 && delay <= cap,
                        "seed {seed} base {base} retry {}: {delay} outside [{}, {cap}]",
                        i + 1,
                        cap / 2
                    );
                }
                let other = RetryPolicy::attempts(6).with_backoff(base, max, seed ^ 0x5555);
                if other.backoff_schedule() != a {
                    diverged = true;
                }
            }
        }
        assert!(diverged, "different seeds never changed the jitter");
    }

    #[test]
    fn default_policy_never_waits_and_attempt_zero_is_free() {
        let p = RetryPolicy::attempts(4);
        assert_eq!(p.backoff_ms(0), 0);
        assert_eq!(p.backoff_schedule(), vec![0, 0, 0]);
        let seeded = p.with_backoff(10, 80, 9);
        assert_eq!(seeded.backoff_ms(0), 0, "the first try never waits");
        assert!(seeded.backoff_ms(1) >= 5 && seeded.backoff_ms(1) <= 10);
    }

    #[test]
    fn isolated_failure_leaves_siblings_intact() {
        let scenarios = set(5);
        for workers in [1, 2, 8] {
            let outcomes = run_shards_isolated(
                scenarios.as_slice(),
                workers,
                RetryPolicy::default(),
                |s, _| {
                    if s.index == 2 {
                        panic!("injected fault in shard 2");
                    }
                    s.seed * 10
                },
            );
            assert_eq!(outcomes.len(), 5, "workers={workers}");
            for (i, outcome) in outcomes.iter().enumerate() {
                if i == 2 {
                    let ShardOutcome::Failed(failure) = outcome else {
                        panic!("shard 2 should have failed");
                    };
                    assert_eq!(failure.shard, 2);
                    assert_eq!(failure.attempts, 1);
                    assert_eq!(
                        failure.error,
                        ShardError::Panicked {
                            cause: "injected fault in shard 2".into()
                        }
                    );
                } else {
                    assert_eq!(
                        *outcome,
                        ShardOutcome::Completed {
                            value: i as u64 * 10,
                            attempts: 1
                        },
                        "workers={workers} shard={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn retry_recovers_a_transient_fault() {
        use std::sync::atomic::AtomicUsize;
        let scenarios = set(3);
        let tries = AtomicUsize::new(0);
        let outcomes = run_shards_isolated(
            scenarios.as_slice(),
            1,
            RetryPolicy::attempts(3),
            |s, attempt| {
                if s.index == 1 {
                    tries.fetch_add(1, Ordering::Relaxed);
                    if attempt < 2 {
                        panic!("transient fault on attempt {attempt}");
                    }
                }
                s.index
            },
        );
        assert_eq!(tries.load(Ordering::Relaxed), 3);
        assert_eq!(
            outcomes[1],
            ShardOutcome::Completed {
                value: 1,
                attempts: 3
            }
        );
        assert_eq!(
            outcomes[0],
            ShardOutcome::Completed {
                value: 0,
                attempts: 1
            }
        );
    }

    #[test]
    fn retry_exhaustion_reports_the_last_cause() {
        let scenarios = set(2);
        let outcomes = run_shards_isolated(
            scenarios.as_slice(),
            2,
            RetryPolicy::attempts(2),
            |s, attempt| {
                if s.index == 0 {
                    panic!("persistent fault attempt {attempt}");
                }
                s.index
            },
        );
        let ShardOutcome::Failed(failure) = &outcomes[0] else {
            panic!("shard 0 should have failed");
        };
        assert_eq!(failure.attempts, 2);
        assert_eq!(
            failure.error,
            ShardError::Panicked {
                cause: "persistent fault attempt 1".into()
            }
        );
        assert!(!outcomes[1].is_failed());
    }

    #[test]
    fn outcome_value_accessor() {
        let completed: ShardOutcome<u32> = ShardOutcome::Completed {
            value: 9,
            attempts: 1,
        };
        assert_eq!(completed.value(), Some(9));
        let failed: ShardOutcome<u32> = ShardOutcome::Failed(ShardFailure {
            shard: 0,
            attempts: 1,
            error: ShardError::MissingResult,
        });
        assert!(failed.is_failed());
        assert_eq!(failed.value(), None);
        assert_eq!(
            ShardFailure {
                shard: 3,
                attempts: 2,
                error: ShardError::MissingResult,
            }
            .to_string(),
            "shard 3 produced no result (after 2 attempt(s))"
        );
    }

    #[test]
    fn shard_count_env_parsing() {
        // Only exercises the fallback path: mutating the environment is
        // racy under the multi-threaded test harness, so the env-set path
        // is covered by the CI matrix instead.
        assert_eq!(shard_count_from_env(3), 3);
        assert_eq!(shard_count_from_env(0), 1);
    }
}
