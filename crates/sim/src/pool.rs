//! Zero-dependency scoped worker pool for scenario sweeps.
//!
//! [`run_shards`] evaluates one job per [`Scenario`] across a bounded set
//! of `std::thread::scope` workers and returns the results **in scenario
//! order**, independent of which worker computed which shard. The job
//! only needs to be `Sync` (shared by reference across workers) and its
//! result `Send`; the `Design` itself is deliberately *not* shared — each
//! job invocation builds a private design on its own thread.

use crate::scenario::Scenario;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `job` once per scenario on up to `workers` threads and returns
/// the results in scenario order.
///
/// With `workers <= 1` (or a single scenario) no threads are spawned at
/// all and the scenarios run sequentially on the caller's thread — this
/// is the path the differential conformance suite uses as its baseline.
///
/// Work is distributed by an atomic claim counter, so an expensive shard
/// does not stall the others behind a fixed pre-partition. If a job
/// panics, the panic is propagated to the caller after the scope joins.
pub fn run_shards<T, F>(scenarios: &[Scenario], workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Scenario) -> T + Sync,
{
    if workers <= 1 || scenarios.len() <= 1 {
        return scenarios.iter().map(&job).collect();
    }
    let threads = workers.min(scenarios.len());
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(scenarios.len());
    slots.resize_with(scenarios.len(), || None);
    let slots_mutex = std::sync::Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    // Claim-compute-publish loop; results are batched per
                    // claim so the mutex is held only for the placement.
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some(scenario) = scenarios.get(idx) else {
                            break;
                        };
                        let result = job(scenario);
                        let mut slots = slots_mutex.lock().expect("worker panicked");
                        slots[idx] = Some(result);
                    }
                })
            })
            .collect();
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });

    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.unwrap_or_else(|| panic!("shard {i} produced no result")))
        .collect()
}

/// Shard count for tests and CI: reads the `FIXREF_TEST_SHARDS`
/// environment variable, falling back to `default` when unset or
/// unparsable. A value of `0` is treated as `1`.
pub fn shard_count_from_env(default: usize) -> usize {
    match std::env::var("FIXREF_TEST_SHARDS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(default).max(1),
        Err(_) => default.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioSet;

    fn set(n: usize) -> ScenarioSet {
        let seeds: Vec<u64> = (0..n as u64).collect();
        ScenarioSet::grid(&seeds, &[20.0], &[], &[64])
    }

    #[test]
    fn results_come_back_in_scenario_order_for_any_worker_count() {
        let scenarios = set(13);
        let expect: Vec<u64> = scenarios.iter().map(|s| s.seed * 3 + 1).collect();
        for workers in [1, 2, 3, 8, 32] {
            let got = run_shards(scenarios.as_slice(), workers, |s| s.seed * 3 + 1);
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn single_worker_runs_on_the_calling_thread() {
        let scenarios = set(4);
        let caller = std::thread::current().id();
        let ids = run_shards(scenarios.as_slice(), 1, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn many_workers_actually_fan_out() {
        // With more scenarios than workers and a brief stall, at least two
        // distinct threads should claim work (scheduling permitting — on a
        // single-core box this can still pass because scope threads exist
        // regardless of how they are interleaved).
        let scenarios = set(8);
        let ids = run_shards(scenarios.as_slice(), 4, |_| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            std::thread::current().id()
        });
        let caller = std::thread::current().id();
        assert!(ids.iter().all(|&id| id != caller));
    }

    #[test]
    fn worker_panic_propagates() {
        let scenarios = set(3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_shards(scenarios.as_slice(), 2, |s| {
                if s.index == 1 {
                    panic!("boom in shard 1");
                }
                s.index
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn empty_scenario_set_yields_empty_results() {
        let got: Vec<usize> = run_shards(&[], 4, |s| s.index);
        assert!(got.is_empty());
    }

    #[test]
    fn shard_count_env_parsing() {
        // Only exercises the fallback path: mutating the environment is
        // racy under the multi-threaded test harness, so the env-set path
        // is covered by the CI matrix instead.
        assert_eq!(shard_count_from_env(3), 3);
        assert_eq!(shard_count_from_env(0), 1);
    }
}
