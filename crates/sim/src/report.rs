//! Per-signal monitoring reports.

use std::fmt;

use fixref_fixed::{DType, ErrorStats, Interval, RangeStats};

use crate::design::{SignalId, SignalKind};

/// Everything the monitors learned about one signal during a simulation —
/// the raw material of the refinement rules.
#[derive(Debug, Clone)]
pub struct SignalReport {
    /// The signal's id.
    pub id: SignalId,
    /// The signal's name.
    pub name: String,
    /// Wire or register.
    pub kind: SignalKind,
    /// The type active during the run (`None` = floating point).
    pub dtype: Option<DType>,
    /// Explicit `range()` annotation, if any.
    pub range_override: Option<Interval>,
    /// Explicit `error()` annotation (σ), if any.
    pub error_override: Option<f64>,
    /// Statistic-based observed range (pre-quantization values).
    pub stat: RangeStats,
    /// Quasi-analytically propagated range.
    pub prop: Interval,
    /// Consumed error statistics (float-vs-fixed difference of incoming
    /// values, paper Fig. 3's `e_c`).
    pub consumed: ErrorStats,
    /// Produced error statistics (difference after assignment
    /// quantization / error injection, paper Fig. 3's `e_p`).
    pub produced: ErrorStats,
    /// Number of assignments that overflowed the signal's type.
    pub overflows: u64,
    /// Number of reads.
    pub reads: u64,
    /// Number of assignments (the tables' `#n`).
    pub writes: u64,
    /// Finest LSB position used by any assigned quantized value
    /// (`Some(0)` for a ±1 slicer output). `None` when no nonzero value
    /// was assigned or a value needed an LSB below −128.
    pub finest_lsb: Option<i32>,
}

impl SignalReport {
    /// The effective propagated range: the explicit annotation when
    /// present, otherwise the propagated interval.
    pub fn effective_prop(&self) -> Interval {
        self.range_override.unwrap_or(self.prop)
    }

    /// Whether the signal is floating point (no type assigned).
    pub fn is_floating(&self) -> bool {
        self.dtype.is_none()
    }

    /// Whether this signal showed a *precision loss*: produced error
    /// exceeding consumed error (paper §5.2: "If e_p > e_c a precision
    /// loss due to quantization occurs").
    pub fn precision_loss(&self) -> bool {
        self.produced.std() > self.consumed.std() * (1.0 + 1e-9) + 1e-18
    }
}

impl fmt::Display for SignalReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:?}, {}): #w={} #r={} {} prop={} {} ovf={}",
            self.name,
            self.kind,
            self.dtype
                .as_ref()
                .map(|d| d.to_string())
                .unwrap_or_else(|| "float".to_string()),
            self.writes,
            self.reads,
            self.stat,
            self.prop,
            self.produced,
            self.overflows
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank() -> SignalReport {
        SignalReport {
            id: SignalId(0),
            name: "x".into(),
            kind: SignalKind::Wire,
            dtype: None,
            range_override: None,
            error_override: None,
            stat: RangeStats::new(),
            prop: Interval::new(-1.0, 1.0),
            consumed: ErrorStats::new(),
            produced: ErrorStats::new(),
            overflows: 0,
            reads: 0,
            writes: 0,
            finest_lsb: None,
        }
    }

    #[test]
    fn effective_prop_prefers_override() {
        let mut r = blank();
        assert_eq!(r.effective_prop(), Interval::new(-1.0, 1.0));
        r.range_override = Some(Interval::new(-0.2, 0.2));
        assert_eq!(r.effective_prop(), Interval::new(-0.2, 0.2));
    }

    #[test]
    fn floating_and_precision_loss_flags() {
        let mut r = blank();
        assert!(r.is_floating());
        assert!(!r.precision_loss());
        for i in 0..100 {
            r.consumed.record(0.001 * ((i % 3) as f64 - 1.0));
            r.produced.record(0.01 * ((i % 3) as f64 - 1.0));
        }
        assert!(r.precision_loss());
    }

    #[test]
    fn display_includes_name_and_counts() {
        let r = blank();
        let s = r.to_string();
        assert!(s.contains('x'));
        assert!(s.contains("float"));
    }
}
