//! Scenario descriptors for the parallel scenario-sweep engine.
//!
//! A [`Scenario`] names one independent simulation condition — stimulus
//! seed, channel SNR, channel impulse response and sample count — and a
//! [`ScenarioSet`] is an ordered grid of them. The sweep engine runs one
//! `Design` per scenario (each on its own worker thread) and folds the
//! per-shard statistics back in *scenario-index order*, so the merged
//! result is a pure function of the set, never of worker scheduling.

/// One independent simulation condition of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Position of this scenario in its [`ScenarioSet`]. Shard results are
    /// folded in ascending `index` order, which is what makes the merge
    /// deterministic for any worker count.
    pub index: usize,
    /// Stimulus / noise seed for this shard's generators.
    pub seed: u64,
    /// Channel signal-to-noise ratio in dB.
    pub snr_db: f64,
    /// Channel impulse response taps; empty means an ideal channel.
    pub channel_taps: Vec<f64>,
    /// Number of stimulus samples to simulate.
    pub samples: usize,
    /// Explicit per-input stimulus overriding the seeded generators:
    /// `(input signal name, one value per tick)`. Empty for ordinary
    /// swept scenarios; populated when a scenario replays a concrete
    /// witness (e.g. a model-checker counterexample). Runners that honor
    /// it drive the named inputs from these streams for
    /// `stimulus_len()` ticks instead of generating `samples` samples.
    pub stimulus: Vec<(String, Vec<f64>)>,
}

impl Scenario {
    /// Short human-readable tag used in journals and bench reports,
    /// e.g. `"s3 seed=7 snr=28dB n=4000"`.
    pub fn label(&self) -> String {
        format!(
            "s{} seed={} snr={}dB n={}",
            self.index, self.seed, self.snr_db, self.samples
        )
    }

    /// Whether this scenario carries an explicit witness stimulus.
    pub fn has_stimulus(&self) -> bool {
        !self.stimulus.is_empty()
    }

    /// The explicit stimulus stream for one input signal, if present.
    pub fn stimulus_for(&self, name: &str) -> Option<&[f64]> {
        self.stimulus
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }

    /// Number of ticks covered by the explicit stimulus (the longest
    /// stream; 0 without one).
    pub fn stimulus_len(&self) -> usize {
        self.stimulus
            .iter()
            .map(|(_, v)| v.len())
            .max()
            .unwrap_or(0)
    }
}

/// An ordered set of [`Scenario`]s — the unit of work of a sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioSet {
    scenarios: Vec<Scenario>,
}

impl ScenarioSet {
    /// A single-scenario set with an ideal channel. With one scenario the
    /// sweep engine reproduces the sequential flow bit-identically.
    pub fn single(seed: u64, snr_db: f64, samples: usize) -> Self {
        Self::grid(&[seed], &[snr_db], &[], &[samples])
    }

    /// A single-scenario set that replays an explicit witness stimulus:
    /// the named input streams drive the design for exactly the witness
    /// length. This is how a model-checker counterexample re-enters the
    /// sweep engine as an adversarial scenario.
    pub fn replay(seed: u64, stimulus: Vec<(String, Vec<f64>)>) -> Self {
        let samples = stimulus.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
        Self {
            scenarios: vec![Scenario {
                index: 0,
                seed,
                snr_db: f64::INFINITY, // noiseless: the witness is exact
                channel_taps: Vec::new(),
                samples,
                stimulus,
            }],
        }
    }

    /// Cartesian grid over seeds x SNRs x channel profiles x sample
    /// counts, indexed in that nesting order (seeds outermost). An empty
    /// `channels` slice contributes one ideal (no-taps) channel rather
    /// than an empty grid.
    pub fn grid(
        seeds: &[u64],
        snrs_db: &[f64],
        channels: &[Vec<f64>],
        sample_counts: &[usize],
    ) -> Self {
        let ideal = [Vec::new()];
        let channels: &[Vec<f64>] = if channels.is_empty() {
            &ideal
        } else {
            channels
        };
        let mut scenarios = Vec::new();
        for &seed in seeds {
            for &snr_db in snrs_db {
                for taps in channels {
                    for &samples in sample_counts {
                        scenarios.push(Scenario {
                            index: scenarios.len(),
                            seed,
                            snr_db,
                            channel_taps: taps.clone(),
                            samples,
                            stimulus: Vec::new(),
                        });
                    }
                }
            }
        }
        Self { scenarios }
    }

    /// Builds a set from explicit scenarios, reassigning `index` in
    /// vector order so the fold order is always well-formed regardless
    /// of what the caller put there (e.g. a deserialized spec).
    pub fn from_scenarios(mut scenarios: Vec<Scenario>) -> Self {
        for (i, s) in scenarios.iter_mut().enumerate() {
            s.index = i;
        }
        Self { scenarios }
    }

    /// Number of scenarios in the set.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Scenario at `index`, if present.
    pub fn get(&self, index: usize) -> Option<&Scenario> {
        self.scenarios.get(index)
    }

    /// The scenarios, in index order.
    pub fn as_slice(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Iterator over the scenarios in index order.
    pub fn iter(&self) -> std::slice::Iter<'_, Scenario> {
        self.scenarios.iter()
    }
}

impl<'a> IntoIterator for &'a ScenarioSet {
    type Item = &'a Scenario;
    type IntoIter = std::slice::Iter<'a, Scenario>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_orders_scenarios_and_assigns_contiguous_indices() {
        let set = ScenarioSet::grid(&[1, 2], &[20.0, 28.0], &[vec![], vec![0.9, 0.1]], &[100]);
        assert_eq!(set.len(), 8);
        for (i, s) in set.iter().enumerate() {
            assert_eq!(s.index, i);
        }
        // Seeds vary slowest.
        assert_eq!(set.get(0).unwrap().seed, 1);
        assert_eq!(set.get(4).unwrap().seed, 2);
        // SNR varies next.
        assert_eq!(set.get(0).unwrap().snr_db, 20.0);
        assert_eq!(set.get(2).unwrap().snr_db, 28.0);
        // Channel varies fastest (sample_counts has one entry).
        assert!(set.get(0).unwrap().channel_taps.is_empty());
        assert_eq!(set.get(1).unwrap().channel_taps, vec![0.9, 0.1]);
    }

    #[test]
    fn empty_channel_list_means_one_ideal_channel() {
        let set = ScenarioSet::grid(&[7], &[28.0], &[], &[4000]);
        assert_eq!(set.len(), 1);
        assert!(set.get(0).unwrap().channel_taps.is_empty());
    }

    #[test]
    fn single_is_a_one_scenario_grid() {
        let set = ScenarioSet::single(7, 28.0, 4000);
        assert_eq!(set.len(), 1);
        let s = set.get(0).unwrap();
        assert_eq!((s.seed, s.snr_db, s.samples), (7, 28.0, 4000));
        assert_eq!(s.label(), "s0 seed=7 snr=28dB n=4000");
        assert!(!s.has_stimulus());
        assert_eq!(s.stimulus_len(), 0);
    }

    #[test]
    fn replay_set_carries_the_witness_streams() {
        let set = ScenarioSet::replay(
            3,
            vec![
                ("x".into(), vec![1.0, -1.0, 1.0]),
                ("gain".into(), vec![0.5]),
            ],
        );
        assert_eq!(set.len(), 1);
        let s = set.get(0).unwrap();
        assert!(s.has_stimulus());
        assert_eq!(s.samples, 3);
        assert_eq!(s.stimulus_len(), 3);
        assert_eq!(s.stimulus_for("x"), Some(&[1.0, -1.0, 1.0][..]));
        assert_eq!(s.stimulus_for("gain"), Some(&[0.5][..]));
        assert_eq!(s.stimulus_for("missing"), None);
    }
}
