//! The design environment: a dual fixed-point/floating-point simulation
//! engine with range and error monitoring.
//!
//! This crate reproduces Sections 2–4 of *"A Methodology and Design
//! Environment for DSP ASIC Fixed Point Refinement"* (Cmar et al., DATE
//! 1999): a C++-style object-oriented hardware description layer in which
//! the *same* algorithm description simultaneously
//!
//! 1. executes a **fixed-point** simulation (quantization happens only at
//!    signal assignment, all arithmetic is floating point — paper §2.2),
//! 2. executes a **floating-point** reference simulation through the same
//!    control decisions (steered by the fixed-point path — paper §4.2),
//! 3. performs **range monitoring** (statistic min/max per signal) and
//!    **quasi-analytical range propagation** (interval arithmetic through
//!    every operator — paper §4.1),
//! 4. collects **error statistics** (`m̄`, `σ`, `|e|max` of the
//!    float-vs-fixed difference, both *consumed* and *produced* — paper
//!    §4.2, Fig. 3), and
//! 5. records a **signal-flow graph** for the fully *analytical* range
//!    estimation and for VHDL generation.
//!
//! # Vocabulary mapping
//!
//! | paper (C++)            | here (Rust)                                 |
//! |------------------------|---------------------------------------------|
//! | `sig a("a", T1);`      | `let a = d.sig_typed("a", t1);`             |
//! | `sig a("a");`          | `let a = d.sig("a");` (floating point)      |
//! | `reg b("b", T1);`      | `let b = d.reg_typed("b", t1);`             |
//! | `sigarray v("v", N);`  | `let v = d.sig_array("v", N);`              |
//! | `c = a * b;`           | `c.set(a.get() * b.get());`                 |
//! | `cast<T>(a*b)`         | `(a.get() * b.get()).cast(&t)`              |
//! | `a.range(-1.5, 1.5)`   | `a.range(-1.5, 1.5)`                        |
//! | `a.error(0.0156)`      | `a.error_sigma(...)` / `a.error_lsb(-6)`    |
//! | clock edge             | `d.tick()` (commits all `Reg` assignments)  |
//!
//! # Example: a quantized multiply-accumulate
//!
//! ```
//! use fixref_fixed::DType;
//! use fixref_sim::Design;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let d = Design::new();
//! let t: DType = "<8,6,tc,st,rd>".parse()?;
//! let x = d.sig_typed("x", t.clone());
//! let acc = d.sig("acc"); // still floating point
//!
//! for i in 0..100 {
//!     x.set((i as f64 * 0.11).sin());
//!     acc.set(acc.get() + x.get() * 0.5);
//! }
//!
//! let report = d.report_for(&x);
//! assert_eq!(report.writes, 100);
//! assert!(report.stat.max() <= 1.0);
//! // The dual simulation tracked the input-quantization error:
//! assert!(d.report_for(&acc).produced.std() > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! The engine is deliberately single-threaded per [`Design`] (handles are
//! `Rc`-based and not `Send`), matching the sequential semantics of the
//! paper's simulation engine; run independent designs on independent
//! threads for parallelism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod design;
pub mod fault;
pub mod graph;
pub mod pool;
pub mod report;
pub mod scenario;
pub mod spec;
pub mod tape;
pub mod trace;
pub mod value;

pub use analyze::{
    analyze_ranges, analyze_ranges_affine, analyze_ranges_with, AnalyzeOptions, RangeAnalysis,
    RangeMemo,
};
pub use design::replay_compiled_batch;
pub use design::{
    Design, OverflowEvent, Reg, RegArray, Sig, SigArray, SignalAnnotation, SignalId, SignalKind,
    SignalRef, SignalStats, UnknownSignalError,
};
pub use fault::FaultPlan;
pub use graph::{Graph, NodeId, Op};
pub use pool::{
    run_shards, run_shards_isolated, shard_count_from_env, RetryPolicy, ShardError, ShardFailure,
    ShardOutcome,
};
pub use report::SignalReport;
pub use scenario::{Scenario, ScenarioSet};
pub use spec::{
    scenario_set_from_json, scenario_set_from_value, scenario_set_to_json, DesignSpec, SpecError,
};
pub use tape::{
    BoundTrace, CompiledProgram, CycleKind, ExecTrace, InputSample, Instr, Segment, TraceStep,
};
pub use trace::Trace;
pub use value::Value;
