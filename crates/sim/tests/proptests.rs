//! Randomized tests of the dual-path simulation engine's invariants,
//! driven by the in-tree deterministic PRNG (seeded sweeps replacing the
//! original proptest harness; same invariants, no external deps).

use fixref_fixed::{DType, OverflowMode, Rng64, RoundingMode, Signedness};
use fixref_sim::{Design, SignalRef, Value};

const CASES: usize = 96;

fn pick_dtype(rng: &mut Rng64) -> DType {
    let n = 2 + rng.below(19) as i32;
    let f = -4 + rng.below(21) as i32;
    let o = match rng.below(3) {
        0 => OverflowMode::Wrap,
        1 => OverflowMode::Saturate,
        _ => OverflowMode::Error,
    };
    DType::new(
        "p",
        n,
        f,
        Signedness::TwosComplement,
        o,
        RoundingMode::Round,
    )
    .expect("valid dtype")
}

/// A tiny arithmetic program over three signals, as data.
#[derive(Debug, Clone)]
enum Step {
    SetInput(f64),
    AddMul { k: f64, c: f64 },
    NegAbs,
    MinMax { lo: f64, hi: f64 },
    Select,
}

fn pick_step(rng: &mut Rng64) -> Step {
    match rng.below(5) {
        0 => Step::SetInput(rng.uniform(-2.0, 2.0)),
        1 => Step::AddMul {
            k: rng.uniform(-1.5, 1.5),
            c: rng.uniform(-1.0, 1.0),
        },
        2 => Step::NegAbs,
        3 => Step::MinMax {
            lo: rng.uniform(-1.0, 0.0),
            hi: rng.uniform(0.0, 1.0),
        },
        _ => Step::Select,
    }
}

fn pick_steps(rng: &mut Rng64, lo: usize, hi: usize) -> Vec<Step> {
    let len = lo + rng.below((hi - lo) as u64) as usize;
    (0..len).map(|_| pick_step(rng)).collect()
}

fn run_program(steps: &[Step], dtype: Option<DType>) -> Design {
    let d = Design::with_seed(99);
    let x = match &dtype {
        Some(t) => d.sig_typed("x", t.clone()),
        None => d.sig("x"),
    };
    let y = d.sig("y");
    for s in steps {
        match s {
            Step::SetInput(v) => x.set(*v),
            Step::AddMul { k, c } => y.set(x.get() * *k + *c),
            Step::NegAbs => y.set((-x.get()).abs()),
            Step::MinMax { lo, hi } => y.set(x.get().max(Value::from(*lo)).min(Value::from(*hi))),
            Step::Select => y.set(x.get().select_positive(1.0.into(), (-1.0).into())),
        }
    }
    d
}

/// With no types anywhere, the two paths are identical everywhere.
#[test]
fn untyped_paths_never_diverge() {
    let mut rng = Rng64::seed_from_u64(0x51D0_0001);
    for _ in 0..CASES {
        let steps = pick_steps(&mut rng, 1, 60);
        let d = run_program(&steps, None);
        for r in d.reports() {
            assert_eq!(r.consumed.max_abs(), 0.0, "{} consumed", r.name);
            assert_eq!(r.produced.max_abs(), 0.0, "{} produced", r.name);
        }
    }
}

/// The fixed path of a typed signal always sits on its grid and
/// inside its range (any overflow mode).
#[test]
fn typed_fixed_path_stays_on_grid() {
    let mut rng = Rng64::seed_from_u64(0x51D0_0002);
    for _ in 0..CASES {
        let steps = pick_steps(&mut rng, 1, 60);
        let t = pick_dtype(&mut rng);
        let d = run_program(&steps, Some(t.clone()));
        let id = d.find("x").expect("declared");
        let (_, fix) = d.peek(id);
        assert!(t.is_representable(fix), "{fix} not representable in {t}");
    }
}

/// The statistic range always covers the propagated-interval
/// *intersection* with reality: every observed value lies inside the
/// union of statistic and is below the propagated bound when that
/// bound is finite and no annotation overrides it.
#[test]
fn prop_interval_covers_observations() {
    let mut rng = Rng64::seed_from_u64(0x51D0_0003);
    for _ in 0..CASES {
        let steps = pick_steps(&mut rng, 1, 60);
        let d = run_program(&steps, None);
        for r in d.reports() {
            if let Some(stat) = r.stat.interval() {
                if r.range_override.is_none() && r.prop.is_bounded() {
                    assert!(
                        r.prop.contains_interval(&stat),
                        "{}: prop {} misses stat {:?}",
                        r.name,
                        r.prop,
                        stat
                    );
                }
            }
        }
    }
}

/// Counters are exact: writes equals the number of set calls issued
/// to that signal.
#[test]
fn write_counters_exact() {
    let mut rng = Rng64::seed_from_u64(0x51D0_0004);
    for _ in 0..CASES {
        let steps = pick_steps(&mut rng, 1, 60);
        let d = run_program(&steps, None);
        let sets_x = steps
            .iter()
            .filter(|s| matches!(s, Step::SetInput(_)))
            .count() as u64;
        let sets_y = steps.len() as u64 - sets_x;
        assert_eq!(d.report_by_id(d.find("x").expect("x")).writes, sets_x);
        assert_eq!(d.report_by_id(d.find("y").expect("y")).writes, sets_y);
    }
}

/// reset_stats clears everything observable while values persist.
#[test]
fn reset_stats_is_complete() {
    let mut rng = Rng64::seed_from_u64(0x51D0_0005);
    for _ in 0..CASES {
        let steps = pick_steps(&mut rng, 1, 40);
        let d = run_program(&steps, None);
        let id = d.find("y").expect("y");
        let before = d.peek(id);
        d.reset_stats();
        let r = d.report_by_id(id);
        assert_eq!(r.writes, 0);
        assert_eq!(r.reads, 0);
        assert!(r.stat.is_empty());
        assert_eq!(r.produced.count(), 0);
        assert_eq!(r.overflows, 0);
        assert_eq!(d.peek(id), before);
    }
}

/// Register semantics: a chain of registers is an exact delay line
/// under any input sequence.
#[test]
fn register_chain_is_exact_delay() {
    let mut rng = Rng64::seed_from_u64(0x51D0_0006);
    for _ in 0..CASES {
        let len = 4 + rng.below(36) as usize;
        let inputs: Vec<f64> = (0..len).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let d = Design::new();
        let regs = d.reg_array("r", 3);
        let mut history = Vec::new();
        for &v in &inputs {
            regs.at(0).set(v);
            for i in 1..3 {
                regs.at(i).set(regs.at(i - 1).get());
            }
            d.tick();
            history.push(v);
            let n = history.len();
            for k in 0..3usize {
                let expect = if n > k { history[n - 1 - k] } else { 0.0 };
                assert_eq!(regs.at(k).get().flt(), expect, "tap {} at step {}", k, n);
            }
        }
    }
}

/// Graph recording never changes simulated values.
#[test]
fn recording_is_observationally_transparent() {
    let mut rng = Rng64::seed_from_u64(0x51D0_0007);
    for _ in 0..CASES {
        let steps = pick_steps(&mut rng, 1, 40);
        let t = pick_dtype(&mut rng);
        let a = run_program(&steps, Some(t.clone()));
        let b = {
            let d = Design::with_seed(99);
            let x = d.sig_typed("x", t.clone());
            let y = d.sig("y");
            d.record_graph(true);
            for s in &steps {
                match s {
                    Step::SetInput(v) => x.set(*v),
                    Step::AddMul { k, c } => y.set(x.get() * *k + *c),
                    Step::NegAbs => y.set((-x.get()).abs()),
                    Step::MinMax { lo, hi } => {
                        y.set(x.get().max(Value::from(*lo)).min(Value::from(*hi)))
                    }
                    Step::Select => y.set(x.get().select_positive(1.0.into(), (-1.0).into())),
                }
            }
            d
        };
        for (ra, rb) in a.reports().into_iter().zip(b.reports()) {
            assert_eq!(a.peek(ra.id), b.peek(rb.id));
            assert_eq!(ra.writes, rb.writes);
            assert_eq!(ra.prop, rb.prop);
        }
        assert!(!b.graph().is_empty() || steps.iter().all(|s| matches!(s, Step::SetInput(_))));
    }
}

/// Saturating input types absorb any input: the fixed path is always
/// within range and overflow events are only counted, never panic.
#[test]
fn saturating_input_absorbs_everything() {
    let mut rng = Rng64::seed_from_u64(0x51D0_0008);
    for _ in 0..CASES {
        let len = 1 + rng.below(49) as usize;
        let vals: Vec<f64> = (0..len).map(|_| rng.uniform(-100.0, 100.0)).collect();
        let d = Design::new();
        let t = DType::tc("t", 8, 4).expect("valid");
        let x = d.sig_typed("x", t.clone());
        for &v in &vals {
            x.set(v);
            let fix = x.get().fix();
            assert!(fix >= t.min_value() && fix <= t.max_value());
        }
        let expected_overflows = vals
            .iter()
            .filter(|v| {
                **v > t.max_value() + t.resolution() / 2.0
                    || **v < t.min_value() - t.resolution() / 2.0
            })
            .count() as u64;
        assert_eq!(d.report_for(&x).overflows, expected_overflows);
    }
}

/// Error injection honors the requested sigma regardless of the data.
#[test]
fn error_injection_bounded_by_sqrt3_sigma() {
    let mut rng = Rng64::seed_from_u64(0x51D0_0009);
    for _ in 0..CASES {
        let sigma = rng.uniform(0.001, 0.5);
        let len = 10 + rng.below(90) as usize;
        let vals: Vec<f64> = (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let d = Design::with_seed(5);
        let a = d.sig("a");
        a.error_sigma(sigma);
        for &v in &vals {
            a.set(v);
            let err = a.get().flt() - a.get().fix();
            assert!(
                err.abs() <= sigma * 3f64.sqrt() + 1e-12,
                "err {err} sigma {sigma}"
            );
        }
        let r = d.report_for(&a);
        assert!(r.produced.max_abs() <= sigma * 3f64.sqrt() + 1e-12);
    }
}
