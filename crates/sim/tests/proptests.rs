//! Property-based tests of the dual-path simulation engine's invariants.

use fixref_fixed::{DType, OverflowMode, RoundingMode, Signedness};
use fixref_sim::{Design, SignalRef, Value};
use proptest::prelude::*;

fn arb_dtype() -> impl Strategy<Value = DType> {
    (
        2i32..=20,
        -4i32..=16,
        prop_oneof![
            Just(OverflowMode::Wrap),
            Just(OverflowMode::Saturate),
            Just(OverflowMode::Error)
        ],
    )
        .prop_map(|(n, f, o)| {
            DType::new(
                "p",
                n,
                f,
                Signedness::TwosComplement,
                o,
                RoundingMode::Round,
            )
            .expect("valid dtype")
        })
}

/// A tiny arithmetic program over three signals, as data.
#[derive(Debug, Clone)]
enum Step {
    SetInput(f64),
    AddMul { k: f64, c: f64 },
    NegAbs,
    MinMax { lo: f64, hi: f64 },
    Select,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (-2.0f64..2.0).prop_map(Step::SetInput),
        ((-1.5f64..1.5), (-1.0f64..1.0)).prop_map(|(k, c)| Step::AddMul { k, c }),
        Just(Step::NegAbs),
        ((-1.0f64..0.0), (0.0f64..1.0)).prop_map(|(lo, hi)| Step::MinMax { lo, hi }),
        Just(Step::Select),
    ]
}

fn run_program(steps: &[Step], dtype: Option<DType>) -> Design {
    let d = Design::with_seed(99);
    let x = match &dtype {
        Some(t) => d.sig_typed("x", t.clone()),
        None => d.sig("x"),
    };
    let y = d.sig("y");
    for s in steps {
        match s {
            Step::SetInput(v) => x.set(*v),
            Step::AddMul { k, c } => y.set(x.get() * *k + *c),
            Step::NegAbs => y.set((-x.get()).abs()),
            Step::MinMax { lo, hi } => y.set(x.get().max(Value::from(*lo)).min(Value::from(*hi))),
            Step::Select => y.set(x.get().select_positive(1.0.into(), (-1.0).into())),
        }
    }
    d
}

proptest! {
    /// With no types anywhere, the two paths are identical everywhere.
    #[test]
    fn untyped_paths_never_diverge(steps in prop::collection::vec(arb_step(), 1..60)) {
        let d = run_program(&steps, None);
        for r in d.reports() {
            prop_assert_eq!(r.consumed.max_abs(), 0.0, "{} consumed", r.name);
            prop_assert_eq!(r.produced.max_abs(), 0.0, "{} produced", r.name);
        }
    }

    /// The fixed path of a typed signal always sits on its grid and
    /// inside its range (any overflow mode).
    #[test]
    fn typed_fixed_path_stays_on_grid(
        steps in prop::collection::vec(arb_step(), 1..60),
        t in arb_dtype(),
    ) {
        let d = run_program(&steps, Some(t.clone()));
        let id = d.find("x").expect("declared");
        let (_, fix) = d.peek(id);
        prop_assert!(t.is_representable(fix), "{fix} not representable in {t}");
    }

    /// The statistic range always covers the propagated-interval
    /// *intersection* with reality: every observed value lies inside the
    /// union of statistic and is below the propagated bound when that
    /// bound is finite and no annotation overrides it.
    #[test]
    fn prop_interval_covers_observations(steps in prop::collection::vec(arb_step(), 1..60)) {
        let d = run_program(&steps, None);
        for r in d.reports() {
            if let Some(stat) = r.stat.interval() {
                if r.range_override.is_none() && r.prop.is_bounded() {
                    prop_assert!(
                        r.prop.contains_interval(&stat),
                        "{}: prop {} misses stat {:?}",
                        r.name, r.prop, stat
                    );
                }
            }
        }
    }

    /// Counters are exact: writes equals the number of set calls issued
    /// to that signal.
    #[test]
    fn write_counters_exact(steps in prop::collection::vec(arb_step(), 1..60)) {
        let d = run_program(&steps, None);
        let sets_x = steps.iter().filter(|s| matches!(s, Step::SetInput(_))).count() as u64;
        let sets_y = steps.len() as u64 - sets_x;
        prop_assert_eq!(d.report_by_id(d.find("x").expect("x")).writes, sets_x);
        prop_assert_eq!(d.report_by_id(d.find("y").expect("y")).writes, sets_y);
    }

    /// reset_stats clears everything observable while values persist.
    #[test]
    fn reset_stats_is_complete(steps in prop::collection::vec(arb_step(), 1..40)) {
        let d = run_program(&steps, None);
        let id = d.find("y").expect("y");
        let before = d.peek(id);
        d.reset_stats();
        let r = d.report_by_id(id);
        prop_assert_eq!(r.writes, 0);
        prop_assert_eq!(r.reads, 0);
        prop_assert!(r.stat.is_empty());
        prop_assert_eq!(r.produced.count(), 0);
        prop_assert_eq!(r.overflows, 0);
        prop_assert_eq!(d.peek(id), before);
    }

    /// Register semantics: a chain of registers is an exact delay line
    /// under any input sequence.
    #[test]
    fn register_chain_is_exact_delay(inputs in prop::collection::vec(-2.0f64..2.0, 4..40)) {
        let d = Design::new();
        let regs = d.reg_array("r", 3);
        let mut history = Vec::new();
        for &v in &inputs {
            regs.at(0).set(v);
            for i in 1..3 {
                regs.at(i).set(regs.at(i - 1).get());
            }
            d.tick();
            history.push(v);
            let n = history.len();
            for k in 0..3usize {
                let expect = if n > k { history[n - 1 - k] } else { 0.0 };
                prop_assert_eq!(regs.at(k).get().flt(), expect, "tap {} at step {}", k, n);
            }
        }
    }

    /// Graph recording never changes simulated values.
    #[test]
    fn recording_is_observationally_transparent(
        steps in prop::collection::vec(arb_step(), 1..40),
        t in arb_dtype(),
    ) {
        let a = run_program(&steps, Some(t.clone()));
        let b = {
            let d = Design::with_seed(99);
            let x = d.sig_typed("x", t.clone());
            let y = d.sig("y");
            d.record_graph(true);
            for s in &steps {
                match s {
                    Step::SetInput(v) => x.set(*v),
                    Step::AddMul { k, c } => y.set(x.get() * *k + *c),
                    Step::NegAbs => y.set((-x.get()).abs()),
                    Step::MinMax { lo, hi } =>
                        y.set(x.get().max(Value::from(*lo)).min(Value::from(*hi))),
                    Step::Select =>
                        y.set(x.get().select_positive(1.0.into(), (-1.0).into())),
                }
            }
            d
        };
        for (ra, rb) in a.reports().into_iter().zip(b.reports()) {
            prop_assert_eq!(a.peek(ra.id), b.peek(rb.id));
            prop_assert_eq!(ra.writes, rb.writes);
            prop_assert_eq!(ra.prop, rb.prop);
        }
        prop_assert!(!b.graph().is_empty() || steps.iter().all(|s| matches!(s, Step::SetInput(_))));
    }

    /// Saturating input types absorb any input: the fixed path is always
    /// within range and overflow events are only counted, never panic.
    #[test]
    fn saturating_input_absorbs_everything(vals in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        let d = Design::new();
        let t = DType::tc("t", 8, 4).expect("valid");
        let x = d.sig_typed("x", t.clone());
        for &v in &vals {
            x.set(v);
            let fix = x.get().fix();
            prop_assert!(fix >= t.min_value() && fix <= t.max_value());
        }
        let expected_overflows = vals
            .iter()
            .filter(|v| **v > t.max_value() + t.resolution() / 2.0 || **v < t.min_value() - t.resolution() / 2.0)
            .count() as u64;
        prop_assert_eq!(d.report_for(&x).overflows, expected_overflows);
    }

    /// Error injection honors the requested sigma regardless of the data.
    #[test]
    fn error_injection_bounded_by_sqrt3_sigma(
        sigma in 0.001f64..0.5,
        vals in prop::collection::vec(-1.0f64..1.0, 10..100),
    ) {
        let d = Design::with_seed(5);
        let a = d.sig("a");
        a.error_sigma(sigma);
        for &v in &vals {
            a.set(v);
            let err = a.get().flt() - a.get().fix();
            prop_assert!(err.abs() <= sigma * 3f64.sqrt() + 1e-12, "err {err} sigma {sigma}");
        }
        let r = d.report_for(&a);
        prop_assert!(r.produced.max_abs() <= sigma * 3f64.sqrt() + 1e-12);
    }
}
