//! End-to-end tests of the dual-path simulation engine.

use fixref_fixed::{DType, Interval, OverflowMode, RoundingMode, Signedness};
use fixref_sim::{analyze_ranges, Design, SignalRef};
use std::collections::HashMap;

fn tc(n: i32, f: i32, o: OverflowMode) -> DType {
    DType::new(
        "t",
        n,
        f,
        Signedness::TwosComplement,
        o,
        RoundingMode::Round,
    )
    .unwrap()
}

#[test]
fn wire_assignment_is_immediate() {
    let d = Design::new();
    let a = d.sig("a");
    a.set(1.25);
    assert_eq!(a.get().flt(), 1.25);
    assert_eq!(a.get().fix(), 1.25);
}

#[test]
fn register_assignment_waits_for_tick() {
    let d = Design::new();
    let r = d.reg("r");
    r.set(2.0);
    assert_eq!(r.get().flt(), 0.0);
    d.tick();
    assert_eq!(r.get().flt(), 2.0);
    assert_eq!(d.cycle(), 1);
    // Overwriting before the tick keeps only the last value.
    r.set(3.0);
    r.set(4.0);
    d.tick();
    assert_eq!(r.get().flt(), 4.0);
}

#[test]
fn delay_line_shift_with_registers() {
    // d[0] <- x; d[i] <- d[i-1]; all reads see pre-tick values, so the
    // paper's delay line works in any statement order.
    let d = Design::new();
    let line = d.reg_array("d", 3);
    for step in 0..5 {
        line.at(0).set(step as f64);
        for i in 1..3 {
            line.at(i).set(line.at(i - 1).get());
        }
        d.tick();
    }
    // After 5 steps feeding 0,1,2,3,4: d = [4, 3, 2]
    assert_eq!(line.at(0).get().flt(), 4.0);
    assert_eq!(line.at(1).get().flt(), 3.0);
    assert_eq!(line.at(2).get().flt(), 2.0);
}

#[test]
fn typed_signal_quantizes_fixed_path_only() {
    let d = Design::new();
    let t = tc(7, 5, OverflowMode::Saturate);
    let x = d.sig_typed("x", t);
    x.set(0.71); // q = 23/32 = 0.71875
    let v = x.get();
    assert_eq!(v.flt(), 0.71);
    assert!((v.fix() - 0.71875).abs() < 1e-12);
    assert!((v.error() - (0.71 - 0.71875)).abs() < 1e-12);
}

#[test]
fn quantization_error_propagates_through_dataflow() {
    let d = Design::new();
    let t = tc(7, 5, OverflowMode::Saturate);
    let x = d.sig_typed("x", t);
    let y = d.sig("y"); // floating: carries the input's error forward
    x.set(0.7);
    y.set(x.get() * 2.0);
    let v = y.get();
    assert!((v.flt() - 1.4).abs() < 1e-12);
    assert!((v.fix() - 2.0 * 0.6875).abs() < 1e-12);
    // y's consumed and produced errors are equal (no own quantization).
    let r = d.report_for(&y);
    assert!((r.consumed.max_abs() - r.produced.max_abs()).abs() < 1e-15);
}

#[test]
fn stat_range_records_pre_quantization_values() {
    let d = Design::new();
    let t = tc(7, 5, OverflowMode::Saturate); // range [-2, 1.96875]
    let x = d.sig_typed("x", t);
    x.set(3.5); // saturates to 1.96875, but the monitor must see 3.5
    let r = d.report_for(&x);
    assert_eq!(r.stat.max(), 3.5);
    assert_eq!(r.overflows, 1);
    assert!((x.get().fix() - 1.96875).abs() < 1e-12);
}

#[test]
fn overflow_events_only_for_error_mode() {
    let d = Design::new();
    let sat = d.sig_typed("sat", tc(7, 5, OverflowMode::Saturate));
    let err = d.sig_typed("err", tc(7, 5, OverflowMode::Error));
    sat.set(5.0);
    err.set(5.0);
    let events = d.take_overflow_events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].name, "err");
    assert_eq!(events[0].value, 5.0);
    // Drained.
    assert!(d.take_overflow_events().is_empty());
    // Both counted overflows in their reports.
    assert_eq!(d.report_for(&sat).overflows, 1);
    assert_eq!(d.report_for(&err).overflows, 1);
}

#[test]
fn range_propagation_through_expressions() {
    let d = Design::new();
    let a = d.sig("a");
    let b = d.sig("b");
    let y = d.sig("y");
    a.range(-1.0, 1.0);
    b.range(0.0, 2.0);
    a.set(0.1);
    b.set(0.2);
    y.set(a.get() * b.get() + 1.0);
    let r = d.report_for(&y);
    // a*b in [-2, 2], +1 -> [-1, 3]
    assert_eq!(r.prop, Interval::new(-1.0, 3.0));
}

#[test]
fn prop_grows_by_union_across_assignments() {
    let d = Design::new();
    let y = d.sig("y");
    y.set(1.0);
    y.set(-3.0);
    y.set(2.0);
    assert_eq!(d.report_for(&y).prop, Interval::new(-3.0, 2.0));
    assert_eq!(
        d.report_for(&y).stat.interval().unwrap(),
        Interval::new(-3.0, 2.0)
    );
}

#[test]
fn typed_signal_prop_starts_at_type_range() {
    let d = Design::new();
    let t = tc(7, 5, OverflowMode::Saturate);
    let x = d.sig_typed("x", t.clone());
    let r = d.report_for(&x);
    assert_eq!(r.prop, Interval::from_dtype(&t));
}

#[test]
fn range_override_pins_propagation_and_reads() {
    let d = Design::new();
    let x = d.sig("x");
    x.range(-1.5, 1.5);
    x.set(7.0); // outside the override: prop must stay pinned
    assert_eq!(d.report_for(&x).effective_prop(), Interval::new(-1.5, 1.5));
    assert_eq!(x.get().interval(), Interval::new(-1.5, 1.5));
    // The statistic still sees the truth.
    assert_eq!(d.report_for(&x).stat.max(), 7.0);
}

#[test]
fn saturating_type_clamps_incoming_interval() {
    let d = Design::new();
    let t = tc(7, 5, OverflowMode::Saturate);
    let x = d.sig("x");
    let y = d.sig_typed("y", t.clone());
    x.range(-100.0, 100.0);
    x.set(0.0);
    y.set(x.get());
    let r = d.report_for(&y);
    assert!(r.prop.hi <= t.max_value() + 1e-12);
    assert!(r.prop.lo >= t.min_value() - 1e-12);
}

#[test]
fn feedback_explodes_without_annotation() {
    // acc = acc + x with x in [-1, 1]: the propagated range grows every
    // iteration — the paper's MSB explosion.
    let d = Design::new();
    let x = d.sig("x");
    let acc = d.sig("acc");
    x.range(-1.0, 1.0);
    let mut widths = Vec::new();
    for i in 0..20 {
        x.set(((i * 37) % 11) as f64 / 11.0 - 0.5);
        acc.set(acc.get() + x.get());
        widths.push(d.report_for(&acc).prop.width());
    }
    assert!(widths.windows(2).all(|w| w[1] >= w[0]));
    assert!(widths.last().unwrap() > &20.0);
}

#[test]
fn error_injection_breaks_divergence_with_requested_sigma() {
    let d = Design::with_seed(42);
    let a = d.sig("a");
    let sigma = 0.0156 / 12f64.sqrt() * 12f64.sqrt(); // = 0.0156
    a.error_sigma(sigma);
    for i in 0..20000 {
        a.set(i as f64 * 1e-4);
    }
    let r = d.report_for(&a);
    assert!(r.error_override.is_some());
    // Produced error is the injected uniform noise: mean ~ 0, std ~ sigma.
    assert!(r.produced.mean().abs() < sigma * 0.05);
    assert!((r.produced.std() - sigma).abs() / sigma < 0.05);
    // Consumed error is still the true incoming difference (zero here).
    assert_eq!(r.consumed.max_abs(), 0.0);
}

#[test]
fn error_lsb_maps_to_uniform_sigma() {
    let d = Design::with_seed(7);
    let a = d.sig("a");
    a.error_lsb(-6);
    for _ in 0..20000 {
        a.set(0.0);
    }
    let expected = (-6f64).exp2() / 12f64.sqrt();
    let got = d.report_for(&a).produced.std();
    assert!(
        (got - expected).abs() / expected < 0.05,
        "std {got} vs {expected}"
    );
}

#[test]
fn error_injection_is_deterministic_per_seed() {
    let run = |seed| {
        let d = Design::with_seed(seed);
        let a = d.sig("a");
        a.error_sigma(0.01);
        let mut out = Vec::new();
        for _ in 0..50 {
            a.set(0.0);
            out.push(a.get().flt());
        }
        out
    };
    assert_eq!(run(1), run(1));
    assert_ne!(run(1), run(2));
}

#[test]
fn control_decisions_steered_by_fixed_path() {
    let d = Design::new();
    let t = tc(7, 5, OverflowMode::Saturate);
    let w = d.sig_typed("w", t);
    let y = d.sig("y");
    // Value 0.01 quantizes to 0.0313? No: q(0.01*32=0.32) -> 0 -> fix 0.
    // flt = 0.01 (positive), fix = 0.0 (not positive): the slicer must
    // follow the FIXED decision on both paths.
    w.set(0.01);
    let v = w.get();
    assert!(v.flt() > 0.0);
    assert_eq!(v.fix(), 0.0);
    y.set(v.select_positive(1.0.into(), (-1.0).into()));
    assert_eq!(y.get().flt(), -1.0);
    assert_eq!(y.get().fix(), -1.0);
}

#[test]
fn counters_track_reads_and_writes() {
    let d = Design::new();
    let a = d.sig("a");
    a.set(1.0);
    a.set(2.0);
    let _ = a.get();
    let _ = a.get();
    let _ = a.get();
    let r = d.report_for(&a);
    assert_eq!(r.writes, 2);
    assert_eq!(r.reads, 3);
}

#[test]
fn reset_stats_keeps_values_and_annotations() {
    let d = Design::new();
    let t = tc(7, 5, OverflowMode::Saturate);
    let a = d.sig_typed("a", t.clone());
    a.range(-1.0, 1.0);
    a.error_sigma(0.01);
    a.set(0.5);
    d.reset_stats();
    let r = d.report_for(&a);
    assert_eq!(r.writes, 0);
    assert!(r.stat.is_empty());
    assert_eq!(r.prop, Interval::from_dtype(&t)); // re-seeded from type
    assert_eq!(r.range_override, Some(Interval::new(-1.0, 1.0)));
    assert_eq!(r.error_override, Some(0.01));
    assert_eq!(a.get().fix(), 0.5); // value survived
}

#[test]
fn reset_state_zeroes_values_and_cycle() {
    let d = Design::new();
    let r = d.reg("r");
    r.set(5.0);
    d.tick();
    assert_eq!(d.cycle(), 1);
    d.reset_state();
    assert_eq!(d.cycle(), 0);
    assert_eq!(r.get().flt(), 0.0);
    // Stats survived reset_state.
    assert_eq!(d.report_for(&r).writes, 1);
}

#[test]
fn graph_recording_and_analytical_ranges_match_quasi_analytical() {
    let d = Design::new();
    d.record_graph(true);
    let x = d.sig("x");
    let y = d.sig("y");
    x.range(-1.0, 1.0);
    for i in 0..10 {
        x.set((i as f64 - 5.0) / 10.0);
        y.set(x.get() * 0.5 + 0.25);
    }
    let g = d.graph();
    assert!(!g.is_empty());
    let mut seeds = HashMap::new();
    let xid = d.find("x").unwrap();
    seeds.insert(xid, Interval::new(-1.0, 1.0));
    let analysis = analyze_ranges(&g, &seeds, &Default::default());
    let yid = d.find("y").unwrap();
    assert_eq!(analysis.range_of(yid).unwrap(), Interval::new(-0.25, 0.75));
    // Quasi-analytical agreed.
    assert_eq!(d.report_by_id(yid).prop, Interval::new(-0.25, 0.75));
}

#[test]
fn graph_interning_keeps_loops_compact() {
    let d = Design::new();
    d.record_graph(true);
    let x = d.sig("x");
    let y = d.sig("y");
    for _ in 0..1000 {
        x.set(0.5);
        y.set(x.get() * 2.0 + 1.0);
    }
    // 1000 iterations of the same statement intern to a handful of nodes.
    assert!(d.graph().len() < 10, "graph grew to {}", d.graph().len());
}

#[test]
fn recording_toggle_controls_graph_growth() {
    let d = Design::new();
    let x = d.sig("x");
    x.set(1.0);
    assert!(d.graph().is_empty());
    d.record_graph(true);
    assert!(d.is_recording());
    x.set(2.0);
    assert!(!d.graph().is_empty());
    d.clear_graph();
    assert!(d.graph().is_empty());
}

#[test]
fn find_and_names() {
    let d = Design::new();
    let a = d.sig("alpha");
    let arr = d.sig_array("v", 2);
    assert_eq!(d.find("alpha"), Some(a.id()));
    assert_eq!(d.find("v[1]"), Some(arr.at(1).id()));
    assert_eq!(d.find("missing"), None);
    assert_eq!(a.name(), "alpha");
    assert_eq!(d.num_signals(), 3);
}

#[test]
#[should_panic(expected = "duplicate signal name")]
fn duplicate_names_rejected() {
    let d = Design::new();
    let _a = d.sig("a");
    let _b = d.sig("a");
}

#[test]
#[should_panic(expected = "different design")]
fn cross_design_report_rejected() {
    let d1 = Design::new();
    let d2 = Design::new();
    let a = d1.sig("a");
    let _ = d2.report_for(&a);
}

#[test]
fn set_dtype_reinitializes_prop() {
    let d = Design::new();
    let a = d.sig("a");
    a.set(5.0);
    assert_eq!(d.report_for(&a).prop, Interval::point(5.0));
    let t = tc(7, 5, OverflowMode::Saturate);
    a.set_dtype(Some(t.clone()));
    assert_eq!(d.report_for(&a).prop, Interval::from_dtype(&t));
    assert_eq!(a.dtype().unwrap().n(), 7);
    a.set_dtype(None);
    assert!(a.dtype().is_none());
}

#[test]
fn arrays_share_types_and_iterate() {
    let d = Design::new();
    let t = tc(8, 6, OverflowMode::Saturate);
    let arr = d.sig_array("c", 3);
    arr.set_dtype_all(Some(t.clone()));
    assert!(arr.iter().all(|s| s.dtype().is_some()));
    assert_eq!(arr.len(), 3);
    assert!(!arr.is_empty());
    for s in &arr {
        s.set(0.25);
    }
    assert!(arr.iter().all(|s| s.get().fix() == 0.25));

    let regs = d.reg_array_typed("r", 2, t);
    regs.set_dtype_all(None);
    assert!(regs.iter().all(|r| r.dtype().is_none()));
    assert_eq!(regs.len(), 2);
    for r in &regs {
        r.set(1.0);
    }
    d.tick();
    assert!(regs.iter().all(|r| r.get().flt() == 1.0));
}

#[test]
fn cast_records_in_graph_and_clamps() {
    let d = Design::new();
    d.record_graph(true);
    let t = tc(7, 5, OverflowMode::Saturate);
    let x = d.sig("x");
    let y = d.sig("y");
    x.range(-100.0, 100.0);
    x.set(0.7);
    y.set(x.get().cast(&t));
    assert!((y.get().fix() - 0.6875).abs() < 1e-12);
    assert_eq!(y.get().flt(), 0.7);
    // Graph contains the cast node.
    let g = d.graph();
    let has_cast = g
        .iter()
        .any(|(_, n)| matches!(n.op, fixref_sim::Op::Cast(_)));
    assert!(has_cast);
}

#[test]
fn untyped_signals_have_equal_paths_forever() {
    // A design with no types anywhere: the dual paths must never diverge.
    let d = Design::new();
    let x = d.sig("x");
    let acc = d.reg("acc");
    for i in 0..100 {
        x.set((i as f64 * 0.37).sin());
        acc.set(acc.get() * 0.9 + x.get());
        d.tick();
        let v = acc.get();
        assert_eq!(v.flt(), v.fix());
    }
    let r = d.report_for(&acc);
    assert_eq!(r.consumed.max_abs(), 0.0);
    assert_eq!(r.produced.max_abs(), 0.0);
}

#[test]
fn granularity_tracks_finest_lsb() {
    let d = Design::new();
    let y = d.sig("y");
    y.set(1.0);
    y.set(-1.0);
    assert_eq!(d.report_for(&y).finest_lsb, Some(0));
    y.set(0.25); // odd * 2^-2
    assert_eq!(d.report_for(&y).finest_lsb, Some(-2));
    y.set(6.0); // 3 * 2^1, coarser: min stays -2
    assert_eq!(d.report_for(&y).finest_lsb, Some(-2));
    y.set(0.0); // zero carries no granularity information
    assert_eq!(d.report_for(&y).finest_lsb, Some(-2));
    // Every finite f64 is a dyadic rational: 0.1 is m * 2^-55, so the
    // granularity drops to the float's true LSB — correctly signalling
    // that this signal is not naturally coarse.
    y.set(0.1);
    assert_eq!(d.report_for(&y).finest_lsb, Some(-55));
}

#[test]
fn vcd_sanitizes_hostile_signal_names() {
    // Signal names with spaces, `$` (VCD keyword lead), backslashes,
    // control characters and non-ASCII must still yield a parseable VCD
    // header: every `$var` name non-empty, printable-ASCII, no whitespace.
    let d = Design::new();
    let hostile = [
        "a b",
        "clk$end",
        "path\\sig",
        "tab\there",
        "caf\u{e9}",
        "v[3]",
    ];
    for name in hostile {
        d.sig(name).set(0.5);
    }
    let mut tr = fixref_sim::Trace::all(&d);
    tr.sample(&d);
    d.tick();
    tr.sample(&d);

    let mut out = Vec::new();
    tr.write_vcd(&mut out).unwrap();
    let text = String::from_utf8(out).unwrap();

    let mut vars = 0;
    for line in text.lines().take_while(|l| !l.contains("$enddefinitions")) {
        let Some(rest) = line.strip_prefix("$var real 64 ") else {
            continue;
        };
        vars += 1;
        // "$var real 64 <code> <name> $end": exactly three fields left.
        let fields: Vec<&str> = rest.split(' ').collect();
        assert_eq!(fields.len(), 3, "malformed var line: {line:?}");
        let name = fields[1];
        assert!(!name.is_empty());
        assert!(
            name.chars().all(|c| c.is_ascii_graphic()),
            "unprintable identifier in {line:?}"
        );
        assert!(!name.contains('$'), "keyword lead survived in {line:?}");
        assert!(fields[2] == "$end", "header line not terminated: {line:?}");
    }
    // Two vars (flt + fix) per hostile signal.
    assert_eq!(vars, 2 * hostile.len());
}
