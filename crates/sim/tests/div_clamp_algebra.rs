//! Seeded-sweep property tests for the division range clamp.
//!
//! Interval division by a zero-straddling divisor is unbounded, which
//! used to drown every signal downstream of a divider in `UNBOUNDED`
//! ranges. The range analysis now clamps such quotients to the *declared
//! type* of the dividend when one exists (an `Op::Cast` feeding the
//! division) — the designer-facing bound the refinement rules already
//! trust. These properties pin the clamp's algebra across random seeded
//! dividend/divisor intervals and declared types:
//!
//! * a zero-straddling divisor behind a `Cast` dividend always clamps,
//!   and the clamped range never leaves the declared type's interval;
//! * a divisor bounded away from zero never clamps, and the analyzed
//!   quotient contains every sampled concrete quotient (soundness);
//! * clamped ranges keep downstream propagation bounded;
//! * the memoized analysis replays the clamp bit-identically.

use std::collections::HashMap;

use fixref_fixed::{DType, Interval, Rng64};
use fixref_sim::{
    analyze_ranges, analyze_ranges_with, AnalyzeOptions, Graph, Op, RangeMemo, SignalId,
};

fn sid(i: u32) -> SignalId {
    SignalId::from_raw(i)
}

/// A random declared type `<w, iw, tc>` with at least one fractional bit.
fn random_dtype(rng: &mut Rng64, tag: u64) -> DType {
    let w = 4 + rng.below(9) as i32; // 4..=12
    let iw = 1 + rng.below((w - 2) as u64) as i32; // 1..w-1
    DType::tc(format!("T{tag}"), w, iw).expect("generated dtype is valid")
}

/// `a` (signal 0) cast to `dt`, divided by `d` (signal 1), defining `q`
/// (signal 2): the clamp's target shape.
fn div_graph(dt: &DType) -> Graph {
    let mut g = Graph::new();
    let a = g.add(Op::Read(sid(0)), vec![]);
    let cast = g.add(Op::Cast(dt.clone()), vec![a]);
    let d = g.add(Op::Read(sid(1)), vec![]);
    let q = g.add(Op::Div, vec![cast, d]);
    g.record_def(sid(2), q);
    g
}

fn seeds(a: Interval, d: Interval) -> HashMap<SignalId, Interval> {
    HashMap::from([(sid(0), a), (sid(1), d)])
}

/// A random interval with both endpoints in `[-mag, mag]`.
fn random_interval(rng: &mut Rng64, mag: f64) -> Interval {
    let x = rng.uniform(-mag, mag);
    let y = rng.uniform(-mag, mag);
    Interval::new(x.min(y), x.max(y))
}

/// A random interval straddling zero: `[-lo_mag, hi_mag]` with both
/// magnitudes positive.
fn straddling_interval(rng: &mut Rng64, mag: f64) -> Interval {
    Interval::new(-rng.uniform(0.001, mag), rng.uniform(0.001, mag))
}

#[test]
fn zero_straddling_divisor_always_clamps_to_the_declared_type() {
    for seed in 0..64u64 {
        let mut rng = Rng64::seed_from_u64(seed.wrapping_mul(0x9E37_79B9) + 1);
        let dt = random_dtype(&mut rng, seed);
        let bounds = Interval::from_dtype(&dt);
        let g = div_graph(&dt);
        let analysis = analyze_ranges(
            &g,
            &seeds(
                random_interval(&mut rng, 8.0),
                straddling_interval(&mut rng, 4.0),
            ),
            &AnalyzeOptions::default(),
        );
        let q = analysis.range_of(sid(2)).expect("q is defined");
        assert!(
            analysis.is_clamped(sid(2)),
            "seed {seed}: zero-straddling divisor must clamp"
        );
        assert!(!q.is_exploded(), "seed {seed}: clamped range is bounded");
        assert!(
            q.lo >= bounds.lo && q.hi <= bounds.hi,
            "seed {seed}: clamp left the declared type: {q:?} vs {bounds:?}"
        );
    }
}

#[test]
fn divisor_bounded_away_from_zero_never_clamps_and_is_sound() {
    for seed in 0..64u64 {
        let mut rng = Rng64::seed_from_u64(seed * 3 + 17);
        let dt = random_dtype(&mut rng, seed);
        let g = div_graph(&dt);
        let a = random_interval(&mut rng, 8.0);
        // Strictly positive or strictly negative divisor.
        let lo = rng.uniform(0.25, 2.0);
        let hi = lo + rng.uniform(0.0, 4.0);
        let d = if seed % 2 == 0 {
            Interval::new(lo, hi)
        } else {
            Interval::new(-hi, -lo)
        };
        let analysis = analyze_ranges(&g, &seeds(a, d), &AnalyzeOptions::default());
        let q = analysis.range_of(sid(2)).expect("q is defined");
        assert!(
            !analysis.is_clamped(sid(2)),
            "seed {seed}: nonzero divisor must not clamp"
        );
        assert_eq!(analysis.clamped_signals().count(), 0, "seed {seed}");

        // Soundness by sampling: every concrete quotient of the *cast*
        // dividend lies inside the analyzed interval (the cast narrows
        // `a` to the declared type before the division).
        let cast = a.clamp_to(&Interval::from_dtype(&dt));
        let tol = 1e-9;
        for i in 0..=8 {
            let av = cast.lo + (cast.hi - cast.lo) * f64::from(i) / 8.0;
            for j in 0..=8 {
                let dv = d.lo + (d.hi - d.lo) * f64::from(j) / 8.0;
                let qv = av / dv;
                assert!(
                    qv >= q.lo - tol && qv <= q.hi + tol,
                    "seed {seed}: {av}/{dv} = {qv} escapes {q:?}"
                );
            }
        }
    }
}

#[test]
fn clamped_ranges_keep_downstream_propagation_bounded() {
    for seed in 0..32u64 {
        let mut rng = Rng64::seed_from_u64(seed + 411);
        let dt = random_dtype(&mut rng, seed);
        let bounds = Interval::from_dtype(&dt);
        let mut g = Graph::new();
        let a = g.add(Op::Read(sid(0)), vec![]);
        let cast = g.add(Op::Cast(dt.clone()), vec![a]);
        let d = g.add(Op::Read(sid(1)), vec![]);
        let q = g.add(Op::Div, vec![cast, d]);
        g.record_def(sid(2), q);
        // y = q * q rides on the clamped range.
        let qr = g.add(Op::Read(sid(2)), vec![]);
        let qr2 = g.add(Op::Read(sid(2)), vec![]);
        let y = g.add(Op::Mul, vec![qr, qr2]);
        g.record_def(sid(3), y);

        let analysis = analyze_ranges(
            &g,
            &seeds(
                random_interval(&mut rng, 8.0),
                straddling_interval(&mut rng, 2.0),
            ),
            &AnalyzeOptions::default(),
        );
        let yr = analysis.range_of(sid(3)).expect("y is defined");
        assert!(!yr.is_exploded(), "seed {seed}: downstream stayed bounded");
        let m = bounds.lo.abs().max(bounds.hi.abs());
        assert!(
            yr.hi <= m * m + 1e-9,
            "seed {seed}: q*q bound {yr:?} exceeds {}",
            m * m
        );
    }
}

#[test]
fn memoized_rerun_replays_the_clamp_bit_identically() {
    let mut memo = RangeMemo::new();
    for seed in 0..16u64 {
        let mut rng = Rng64::seed_from_u64(seed + 90);
        let dt = random_dtype(&mut rng, seed);
        let g = div_graph(&dt);
        let s = seeds(
            random_interval(&mut rng, 8.0),
            straddling_interval(&mut rng, 4.0),
        );
        let first = analyze_ranges_with(&g, &s, &AnalyzeOptions::default(), &mut memo, None);
        let misses = memo.misses();
        let second = analyze_ranges_with(&g, &s, &AnalyzeOptions::default(), &mut memo, None);
        assert_eq!(memo.misses(), misses, "seed {seed}: rerun must hit");
        assert!(memo.hits() > 0, "seed {seed}");
        assert_eq!(
            first.is_clamped(sid(2)),
            second.is_clamped(sid(2)),
            "seed {seed}: clamp flag replays"
        );
        let (a, b) = (
            first.range_of(sid(2)).expect("defined"),
            second.range_of(sid(2)).expect("defined"),
        );
        assert_eq!(a.lo.to_bits(), b.lo.to_bits(), "seed {seed}");
        assert_eq!(a.hi.to_bits(), b.hi.to_bits(), "seed {seed}");
    }
}

#[test]
fn const_dividend_without_a_declared_type_stays_unbounded() {
    // The clamp's scope is deliberate: only a dividend with a declared
    // type (an `Op::Cast`) offers a designer-trusted bound. A bare
    // constant dividend over a zero-straddling divisor still explodes.
    let mut g = Graph::new();
    let one = g.add(Op::Const(1.0), vec![]);
    let d = g.add(Op::Read(sid(0)), vec![]);
    let q = g.add(Op::Div, vec![one, d]);
    g.record_def(sid(1), q);
    let analysis = analyze_ranges(
        &g,
        &HashMap::from([(sid(0), Interval::new(-1.0, 1.0))]),
        &AnalyzeOptions::default(),
    );
    assert!(analysis.is_exploded(sid(1)));
    assert!(!analysis.is_clamped(sid(1)));
}
