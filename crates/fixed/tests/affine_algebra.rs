//! Seeded-sweep property tests for affine-arithmetic soundness.
//!
//! The affine propagator in `fixref-sim` intersects affine and interval
//! envelopes, which is only sound if every [`AffineForm`] operation is
//! itself conservative: a concrete evaluation of the operand forms,
//! combined with the true arithmetic, must land inside the result form's
//! concretization — *and* inside the corresponding [`Interval`] result,
//! so both envelopes are simultaneously valid.
//!
//! Each property runs over 64 seeds in the style of
//! `crates/sim/tests/div_clamp_algebra.rs`: random forms over a small
//! shared symbol pool (so correlations actually occur), random concrete
//! noise assignments, exact containment assertions tagged with the seed.

use fixref_fixed::{
    quantize, AffineForm, DType, Interval, OverflowMode, Rng64, RoundingMode, Signedness,
};

const SEEDS: u64 = 64;
/// Slack for f64 roundoff in the concrete evaluation path (the envelopes
/// themselves are compared exactly).
const EVAL_TOL: f64 = 1e-9;

/// A random affine form over symbols `0..pool`, returned with one concrete
/// evaluation point drawn from the shared assignment `eps`.
fn random_form(rng: &mut Rng64, pool: u32, eps: &[f64]) -> (AffineForm, f64) {
    let center = rng.symmetric(4.0);
    let mut form = AffineForm::constant(center);
    let mut value = center;
    let terms = (rng.next_u64() % 4) as usize;
    for _ in 0..terms {
        let sym = (rng.next_u64() % pool as u64) as u32;
        let coeff = rng.symmetric(2.0);
        // Build `form + coeff·ε_sym` from primitives: a fresh unit
        // interval anchored on `sym`, scaled by the coefficient.
        let unit = AffineForm::from_interval(&Interval::new(-1.0, 1.0), sym);
        form = form.add(&unit.scale(coeff));
        value += coeff * eps[sym as usize];
    }
    (form, value)
}

/// A random concrete assignment of the symbol pool to `[-1, 1]`.
fn random_eps(rng: &mut Rng64, pool: u32) -> Vec<f64> {
    (0..pool).map(|_| rng.symmetric(1.0)).collect()
}

fn assert_inside(itv: &Interval, v: f64, seed: u64, ctx: &str) {
    assert!(
        itv.contains(v) || (v - itv.lo).abs() <= EVAL_TOL || (v - itv.hi).abs() <= EVAL_TOL,
        "seed {seed}: {ctx}: concrete value {v} escapes envelope {itv}"
    );
}

fn random_dtype(rng: &mut Rng64, tag: u64) -> DType {
    let w = 4 + (rng.next_u64() % 9) as i32; // 4..=12 bits
    let iw = (rng.next_u64() % (w as u64)) as i32;
    let overflow = match rng.next_u64() % 3 {
        0 => OverflowMode::Wrap,
        1 => OverflowMode::Saturate,
        _ => OverflowMode::Error,
    };
    let rounding = if rng.next_u64().is_multiple_of(2) {
        RoundingMode::Round
    } else {
        RoundingMode::Floor
    };
    DType::new(
        format!("T{tag}"),
        w,
        w - iw,
        Signedness::TwosComplement,
        overflow,
        rounding,
    )
    .expect("constructed widths are valid")
}

#[test]
fn add_sub_mul_keep_concrete_values_inside_both_envelopes() {
    for seed in 0..SEEDS {
        let mut rng = Rng64::seed_from_u64(seed.wrapping_mul(0x9E37_79B9) + 1);
        let pool = 4;
        let eps = random_eps(&mut rng, pool);
        let (a, av) = random_form(&mut rng, pool, &eps);
        let (b, bv) = random_form(&mut rng, pool, &eps);
        let (ai, bi) = (a.to_interval(), b.to_interval());

        let cases: [(&str, AffineForm, Interval, f64); 4] = [
            ("add", a.add(&b), ai + bi, av + bv),
            ("sub", a.sub(&b), ai - bi, av - bv),
            ("mul", a.mul(&b), ai * bi, av * bv),
            ("neg", a.neg(), -ai, -av),
        ];
        for (name, form, itv, concrete) in cases {
            let affine_itv = form.to_interval();
            assert_inside(&affine_itv, concrete, seed, name);
            assert_inside(&itv, concrete, seed, &format!("{name} (interval)"));
        }
    }
}

#[test]
fn correlated_subtraction_is_exact_and_interval_is_not() {
    for seed in 0..SEEDS {
        let mut rng = Rng64::seed_from_u64(seed.wrapping_mul(0xDA7E_1999) + 1);
        let pool = 3;
        let eps = random_eps(&mut rng, pool);
        let (a, av) = random_form(&mut rng, pool, &eps);
        let diff = a.sub(&a);
        let itv = diff.to_interval();
        assert!(
            itv.width() <= EVAL_TOL,
            "seed {seed}: x - x should collapse, got {itv}"
        );
        assert_inside(&itv, av - av, seed, "x - x");
        // The interval answer is the sound-but-loose baseline the affine
        // form must stay inside of.
        let ai = a.to_interval();
        assert!(
            (ai - ai).contains_interval(&itv),
            "seed {seed}: affine result {itv} not inside interval result"
        );
    }
}

fn contains_with_slack(outer: &Interval, inner: &Interval) -> bool {
    // Ulp-scale slack: the affine envelope reconstructs endpoints as
    // center ± radius, which can differ from direct endpoint arithmetic
    // in the last bit. The combined propagator intersects both, so this
    // slack never leaks into analysis results.
    let tol = EVAL_TOL * (1.0 + outer.max_abs());
    outer.lo - tol <= inner.lo && inner.hi <= outer.hi + tol
}

#[test]
fn affine_envelope_of_linear_ops_is_inside_the_interval_envelope() {
    // For the linear ops (add/sub/scale) affine arithmetic is at least as
    // tight as interval arithmetic; this is the `affine ⊆ interval`
    // direction the combined propagator asserts per definition.
    for seed in 0..SEEDS {
        let mut rng = Rng64::seed_from_u64(seed.wrapping_mul(0x0A11_CAFE) + 1);
        let pool = 4;
        let eps = random_eps(&mut rng, pool);
        let (a, _) = random_form(&mut rng, pool, &eps);
        let (b, _) = random_form(&mut rng, pool, &eps);
        let (ai, bi) = (a.to_interval(), b.to_interval());
        let k = rng.symmetric(3.0);

        let sum = a.add(&b).to_interval();
        assert!(
            contains_with_slack(&(ai + bi), &sum),
            "seed {seed}: add: {sum} vs {}",
            ai + bi
        );
        let diff = a.sub(&b).to_interval();
        assert!(
            contains_with_slack(&(ai - bi), &diff),
            "seed {seed}: sub: {diff} vs {}",
            ai - bi
        );
        let scaled = a.scale(k).to_interval();
        assert!(
            contains_with_slack(&(ai * Interval::point(k)), &scaled),
            "seed {seed}: scale by {k}: {scaled}"
        );
    }
}

#[test]
fn quantize_envelope_contains_the_bit_exact_quantizer_output() {
    for seed in 0..SEEDS {
        let mut rng = Rng64::seed_from_u64(seed.wrapping_mul(0x5EED_0007) + 1);
        let pool = 3;
        let eps = random_eps(&mut rng, pool);
        let (a, av) = random_form(&mut rng, pool, &eps);
        let dt = random_dtype(&mut rng, seed);
        let q = a.quantize(&dt, pool + seed as u32);
        let itv = q.to_interval();

        let out = quantize(av, &dt);
        // Wrap aliasing is a hazard tracked separately (FXL004 / the
        // checker), not a bound the range analysis claims — so the
        // envelope promise only holds when no overflow occurred.
        if !out.overflowed {
            assert_inside(&itv, out.value, seed, "quantize");
        }
        // Saturating types must still bound the clamped output.
        if dt.overflow() == OverflowMode::Saturate {
            assert_inside(&itv, out.value, seed, "quantize (saturated)");
            let repr = Interval::from_dtype(&dt);
            assert!(
                repr.lo <= itv.lo + EVAL_TOL || itv.lo >= repr.lo - EVAL_TOL,
                "seed {seed}: saturated envelope {itv} below representable {repr}"
            );
        }
    }
}

#[test]
fn random_expression_trees_stay_sound_under_shared_symbols() {
    // Deep random expressions over a *shared* pool: the acid test that
    // residual bookkeeping composes (every internal node is conservative).
    for seed in 0..SEEDS {
        let mut rng = Rng64::seed_from_u64(seed.wrapping_mul(0xB16_B00B5) + 1);
        let pool = 4;
        let eps = random_eps(&mut rng, pool);
        let (mut form, mut value) = random_form(&mut rng, pool, &eps);
        for depth in 0..6 {
            let (rhs, rv) = random_form(&mut rng, pool, &eps);
            match rng.next_u64() % 4 {
                0 => {
                    form = form.add(&rhs);
                    value += rv;
                }
                1 => {
                    form = form.sub(&rhs);
                    value -= rv;
                }
                2 => {
                    form = form.mul(&rhs);
                    value *= rv;
                }
                _ => {
                    let k = rng.symmetric(1.5);
                    form = form.scale(k).offset(rv);
                    value = value * k + rv;
                }
            }
            let itv = form.to_interval();
            // Relative tolerance: deep products grow large and f64 error
            // grows with magnitude.
            let tol = EVAL_TOL * (1.0 + value.abs());
            assert!(
                itv.contains(value)
                    || (value - itv.lo).abs() <= tol
                    || (value - itv.hi).abs() <= tol,
                "seed {seed}: depth {depth}: {value} escapes {itv}"
            );
        }
    }
}
