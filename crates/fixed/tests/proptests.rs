//! Randomized property tests for the fixed-point algebra, driven by the
//! in-tree deterministic PRNG (the container has no crates.io access, so
//! the original proptest harness was replaced by seeded sweeps that
//! exercise the same invariants).

use fixref_fixed::{
    msb_for_range, quantize, DType, Fixed, Interval, OverflowMode, Rng64, RoundingMode, Signedness,
};

const CASES: usize = 256;

fn pick_signedness(rng: &mut Rng64) -> Signedness {
    match rng.below(2) {
        0 => Signedness::TwosComplement,
        _ => Signedness::Unsigned,
    }
}

fn pick_overflow(rng: &mut Rng64) -> OverflowMode {
    match rng.below(3) {
        0 => OverflowMode::Wrap,
        1 => OverflowMode::Saturate,
        _ => OverflowMode::Error,
    }
}

fn pick_rounding(rng: &mut Rng64) -> RoundingMode {
    match rng.below(2) {
        0 => RoundingMode::Round,
        _ => RoundingMode::Floor,
    }
}

fn pick_dtype(rng: &mut Rng64) -> DType {
    let n = 1 + rng.below(24) as i32;
    let f = -8 + rng.below(33) as i32;
    DType::new(
        "p",
        n,
        f,
        pick_signedness(rng),
        pick_overflow(rng),
        pick_rounding(rng),
    )
    .expect("valid dtype")
}

fn pick_interval(rng: &mut Rng64) -> Interval {
    let a = rng.uniform(-1e6, 1e6);
    let b = rng.uniform(-1e6, 1e6);
    Interval::new(a.min(b), a.max(b))
}

/// Quantization output is always representable and idempotent.
#[test]
fn quantize_idempotent_and_representable() {
    let mut rng = Rng64::seed_from_u64(0x51DE_0001);
    for _ in 0..CASES {
        let x = rng.uniform(-1e9, 1e9);
        let dt = pick_dtype(&mut rng);
        let q = quantize(x, &dt);
        assert!(q.value >= dt.min_value() - 1e-12);
        assert!(q.value <= dt.max_value() + 1e-12);
        assert!(
            dt.is_representable(q.value),
            "{} not representable in {}",
            q.value,
            dt
        );
        let q2 = quantize(q.value, &dt);
        assert_eq!(q2.value, q.value);
        assert!(!q2.overflowed);
        assert_eq!(q2.rounding_error, 0.0);
    }
}

/// Without overflow, the quantization error is bounded by the step
/// (round: half step; floor: full step, one-sided).
#[test]
fn quantize_error_bounded() {
    let mut rng = Rng64::seed_from_u64(0x51DE_0002);
    for _ in 0..CASES {
        let x = rng.uniform(-1e6, 1e6);
        let n = 2 + rng.below(39) as i32;
        let f = -4 + rng.below(25) as i32;
        let r = pick_rounding(&mut rng);
        let dt = DType::new(
            "p",
            n,
            f,
            Signedness::TwosComplement,
            OverflowMode::Saturate,
            r,
        )
        .expect("valid");
        let q = quantize(x, &dt);
        if !q.overflowed {
            let step = dt.resolution();
            let e = q.value - x;
            match r {
                RoundingMode::Round => assert!(
                    e.abs() <= step / 2.0 + 1e-12 * step,
                    "|{e}| > step/2 = {}",
                    step / 2.0
                ),
                RoundingMode::Floor => assert!(
                    e <= 1e-12 * step && -e <= step * (1.0 + 1e-12),
                    "floor error {e} outside (-step, 0]"
                ),
            }
        }
    }
}

/// Quantization is monotonic: x <= y implies Q(x) <= Q(y), for
/// saturating types.
#[test]
fn quantize_monotonic() {
    let mut rng = Rng64::seed_from_u64(0x51DE_0003);
    for _ in 0..CASES {
        let a = rng.uniform(-1e6, 1e6);
        let b = rng.uniform(-1e6, 1e6);
        let n = 2 + rng.below(31) as i32;
        let f = -4 + rng.below(21) as i32;
        let dt = DType::new(
            "p",
            n,
            f,
            Signedness::TwosComplement,
            OverflowMode::Saturate,
            RoundingMode::Round,
        )
        .expect("valid");
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        assert!(quantize(x, &dt).value <= quantize(y, &dt).value);
    }
}

/// The floating-point quantization model agrees exactly with the
/// bit-true mantissa model.
#[test]
fn float_model_matches_bit_true() {
    let mut rng = Rng64::seed_from_u64(0x51DE_0004);
    for _ in 0..CASES {
        let x = rng.uniform(-1e6, 1e6);
        let dt = pick_dtype(&mut rng);
        let q = quantize(x, &dt);
        let f = Fixed::from_f64(x, dt.clone());
        assert_eq!(q.mantissa, f.mantissa());
        assert_eq!(q.value, f.to_f64());
    }
}

/// Bit-true add/sub/mul on small formats are exact (no information
/// loss thanks to format growth).
#[test]
fn bit_true_ops_exact() {
    let mut rng = Rng64::seed_from_u64(0x51DE_0005);
    for _ in 0..CASES {
        let am = -128 + rng.below(256) as i64;
        let bm = -128 + rng.below(256) as i64;
        let fa = -2 + rng.below(13) as i32;
        let fb = -2 + rng.below(13) as i32;
        let ta = DType::tc("a", 8, fa).expect("valid");
        let tb = DType::tc("b", 8, fb).expect("valid");
        let a = Fixed::from_mantissa(am, ta);
        let b = Fixed::from_mantissa(bm, tb);
        let (av, bv) = (a.to_f64(), b.to_f64());
        assert_eq!(a.checked_add(&b).expect("fits").to_f64(), av + bv);
        assert_eq!(a.checked_sub(&b).expect("fits").to_f64(), av - bv);
        assert_eq!(a.checked_mul(&b).expect("fits").to_f64(), av * bv);
        assert_eq!(a.checked_neg().expect("fits").to_f64(), -av);
    }
}

/// Interval addition/multiplication soundness: the op applied to member
/// points lands inside the propagated interval.
#[test]
fn interval_ops_sound() {
    let mut rng = Rng64::seed_from_u64(0x51DE_0006);
    for _ in 0..CASES {
        let ia = pick_interval(&mut rng);
        let ib = pick_interval(&mut rng);
        let ta = rng.next_f64();
        let tb = rng.next_f64();
        let a = ia.lo + ta * (ia.hi - ia.lo);
        let b = ib.lo + tb * (ib.hi - ib.lo);
        let eps = 1e-6 * (1.0 + a.abs() + b.abs() + (a * b).abs());
        let sum = ia + ib;
        assert!(sum.lo - eps <= a + b && a + b <= sum.hi + eps);
        let dif = ia - ib;
        assert!(dif.lo - eps <= a - b && a - b <= dif.hi + eps);
        let prd = ia * ib;
        assert!(
            prd.lo - eps <= a * b && a * b <= prd.hi + eps,
            "{} * {} = {} outside {}",
            a,
            b,
            a * b,
            prd
        );
        let neg = -ia;
        assert!(neg.contains(-a));
        let abs = ia.abs();
        assert!(abs.lo - eps <= a.abs() && a.abs() <= abs.hi + eps);
    }
}

/// Union is commutative, associative enough, and contains both operands.
#[test]
fn interval_union_covers() {
    let mut rng = Rng64::seed_from_u64(0x51DE_0007);
    for _ in 0..CASES {
        let ia = pick_interval(&mut rng);
        let ib = pick_interval(&mut rng);
        let u = ia.union(&ib);
        assert!(u.contains_interval(&ia));
        assert!(u.contains_interval(&ib));
        assert_eq!(u, ib.union(&ia));
    }
}

/// msb_for_range returns the minimal covering MSB for tc ranges.
#[test]
fn msb_minimal_covering() {
    let mut rng = Rng64::seed_from_u64(0x51DE_0008);
    for _ in 0..CASES {
        let a = rng.uniform(-1e6, 1e6);
        let b = rng.uniform(-1e6, 1e6);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        if lo == 0.0 && hi == 0.0 {
            continue;
        }
        let m = msb_for_range(lo, hi, Signedness::TwosComplement).expect("some");
        let pow = (m as f64).exp2();
        assert!(-pow <= lo && hi < pow);
        let pow1 = ((m - 1) as f64).exp2();
        assert!(
            !(-pow1 <= lo && hi < pow1),
            "msb {} not minimal for [{},{}]",
            m,
            lo,
            hi
        );
    }
}

/// A dtype constructed from the decided msb represents the whole range.
#[test]
fn msb_yields_covering_dtype() {
    let mut rng = Rng64::seed_from_u64(0x51DE_0009);
    for _ in 0..CASES {
        let a = rng.uniform(-1e3, 1e3);
        let b = rng.uniform(-1e3, 1e3);
        let f = rng.below(17) as i32;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        if lo == 0.0 && hi == 0.0 {
            continue;
        }
        let m = msb_for_range(lo, hi, Signedness::TwosComplement).expect("some");
        if !(m + f + 1 >= 1 && m + f < 63) {
            continue;
        }
        let dt = DType::from_positions(
            "p",
            m,
            -f,
            Signedness::TwosComplement,
            OverflowMode::Error,
            RoundingMode::Round,
        )
        .expect("valid");
        // Quantizing the endpoints must not overflow (rounding can nudge hi
        // past max by < 1 step; use floor for the check).
        let dtf = dt.with_rounding(RoundingMode::Floor);
        assert!(!quantize(lo.max(dt.min_value()), &dtf).overflowed);
        assert!(!quantize(hi, &dtf).overflowed);
    }
}

/// Wrap-mode quantization is periodic in the modulus.
#[test]
fn wrap_periodicity() {
    let mut rng = Rng64::seed_from_u64(0x51DE_000A);
    for _ in 0..CASES {
        let x = rng.uniform(-1e4, 1e4);
        let n = 2 + rng.below(15) as i32;
        let dt = DType::new(
            "p",
            n,
            0,
            Signedness::TwosComplement,
            OverflowMode::Wrap,
            RoundingMode::Round,
        )
        .expect("valid");
        let modulus = (n as f64).exp2();
        let q1 = quantize(x, &dt);
        let q2 = quantize(x + modulus, &dt);
        assert_eq!(q1.mantissa, q2.mantissa);
    }
}

/// Cast through a wider type then back is the identity for in-range
/// representable values.
#[test]
fn cast_widen_narrow_roundtrip() {
    let narrow = DType::tc("n", 7, 5).expect("valid");
    let wide = DType::tc("w", 20, 10).expect("valid");
    for m in -64i64..=63 {
        let x = Fixed::from_mantissa(m, narrow.clone());
        let back = x.cast(wide.clone()).cast(narrow.clone());
        assert_eq!(back.mantissa(), m);
    }
}
