//! Property-based tests for the fixed-point algebra.

use fixref_fixed::{
    msb_for_range, quantize, DType, Fixed, Interval, OverflowMode, RoundingMode, Signedness,
};
use proptest::prelude::*;

fn arb_signedness() -> impl Strategy<Value = Signedness> {
    prop_oneof![Just(Signedness::TwosComplement), Just(Signedness::Unsigned)]
}

fn arb_overflow() -> impl Strategy<Value = OverflowMode> {
    prop_oneof![
        Just(OverflowMode::Wrap),
        Just(OverflowMode::Saturate),
        Just(OverflowMode::Error)
    ]
}

fn arb_rounding() -> impl Strategy<Value = RoundingMode> {
    prop_oneof![Just(RoundingMode::Round), Just(RoundingMode::Floor)]
}

fn arb_dtype() -> impl Strategy<Value = DType> {
    (
        1i32..=24,
        -8i32..=24,
        arb_signedness(),
        arb_overflow(),
        arb_rounding(),
    )
        .prop_map(|(n, f, s, o, r)| DType::new("p", n, f, s, o, r).expect("valid dtype"))
}

fn arb_interval() -> impl Strategy<Value = Interval> {
    (-1e6f64..1e6, -1e6f64..1e6).prop_map(|(a, b)| Interval::new(a.min(b), a.max(b)))
}

proptest! {
    /// Quantization output is always representable and idempotent.
    #[test]
    fn quantize_idempotent_and_representable(x in -1e9f64..1e9, dt in arb_dtype()) {
        let q = quantize(x, &dt);
        prop_assert!(q.value >= dt.min_value() - 1e-12);
        prop_assert!(q.value <= dt.max_value() + 1e-12);
        prop_assert!(dt.is_representable(q.value), "{} not representable in {}", q.value, dt);
        let q2 = quantize(q.value, &dt);
        prop_assert_eq!(q2.value, q.value);
        prop_assert!(!q2.overflowed);
        prop_assert_eq!(q2.rounding_error, 0.0);
    }

    /// Without overflow, the quantization error is bounded by the step
    /// (round: half step; floor: full step, one-sided).
    #[test]
    fn quantize_error_bounded(x in -1e6f64..1e6, n in 2i32..=40, f in -4i32..=20,
                              r in arb_rounding()) {
        let dt = DType::new("p", n, f, Signedness::TwosComplement, OverflowMode::Saturate, r)
            .expect("valid");
        let q = quantize(x, &dt);
        if !q.overflowed {
            let step = dt.resolution();
            let e = q.value - x;
            match r {
                RoundingMode::Round => prop_assert!(e.abs() <= step / 2.0 + 1e-12 * step,
                    "|{e}| > step/2 = {}", step / 2.0),
                RoundingMode::Floor => prop_assert!(e <= 1e-12 * step && -e <= step * (1.0 + 1e-12),
                    "floor error {e} outside (-step, 0]"),
            }
        }
    }

    /// Quantization is monotonic: x <= y implies Q(x) <= Q(y), for
    /// saturating types.
    #[test]
    fn quantize_monotonic(a in -1e6f64..1e6, b in -1e6f64..1e6, n in 2i32..=32, f in -4i32..=16) {
        let dt = DType::new("p", n, f, Signedness::TwosComplement,
                            OverflowMode::Saturate, RoundingMode::Round).expect("valid");
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(quantize(x, &dt).value <= quantize(y, &dt).value);
    }

    /// The floating-point quantization model agrees exactly with the
    /// bit-true mantissa model.
    #[test]
    fn float_model_matches_bit_true(x in -1e6f64..1e6, dt in arb_dtype()) {
        let q = quantize(x, &dt);
        let f = Fixed::from_f64(x, dt.clone());
        prop_assert_eq!(q.mantissa, f.mantissa());
        prop_assert_eq!(q.value, f.to_f64());
    }

    /// Bit-true add/sub/mul on small formats are exact (no information
    /// loss thanks to format growth).
    #[test]
    fn bit_true_ops_exact(am in -128i64..=127, bm in -128i64..=127,
                          fa in -2i32..=10, fb in -2i32..=10) {
        let ta = DType::tc("a", 8, fa).expect("valid");
        let tb = DType::tc("b", 8, fb).expect("valid");
        let a = Fixed::from_mantissa(am, ta);
        let b = Fixed::from_mantissa(bm, tb);
        let (av, bv) = (a.to_f64(), b.to_f64());
        prop_assert_eq!(a.checked_add(&b).expect("fits").to_f64(), av + bv);
        prop_assert_eq!(a.checked_sub(&b).expect("fits").to_f64(), av - bv);
        prop_assert_eq!(a.checked_mul(&b).expect("fits").to_f64(), av * bv);
        prop_assert_eq!(a.checked_neg().expect("fits").to_f64(), -av);
    }

    /// Interval addition/multiplication soundness: the op applied to member
    /// points lands inside the propagated interval.
    #[test]
    fn interval_ops_sound(ia in arb_interval(), ib in arb_interval(),
                          ta in 0.0f64..=1.0, tb in 0.0f64..=1.0) {
        let a = ia.lo + ta * (ia.hi - ia.lo);
        let b = ib.lo + tb * (ib.hi - ib.lo);
        let eps = 1e-6 * (1.0 + a.abs() + b.abs() + (a * b).abs());
        let sum = ia + ib;
        prop_assert!(sum.lo - eps <= a + b && a + b <= sum.hi + eps);
        let dif = ia - ib;
        prop_assert!(dif.lo - eps <= a - b && a - b <= dif.hi + eps);
        let prd = ia * ib;
        prop_assert!(prd.lo - eps <= a * b && a * b <= prd.hi + eps,
            "{} * {} = {} outside {}", a, b, a * b, prd);
        let neg = -ia;
        prop_assert!(neg.contains(-a));
        let abs = ia.abs();
        prop_assert!(abs.lo - eps <= a.abs() && a.abs() <= abs.hi + eps);
    }

    /// Union is commutative, associative enough, and contains both operands.
    #[test]
    fn interval_union_covers(ia in arb_interval(), ib in arb_interval()) {
        let u = ia.union(&ib);
        prop_assert!(u.contains_interval(&ia));
        prop_assert!(u.contains_interval(&ib));
        prop_assert_eq!(u, ib.union(&ia));
    }

    /// msb_for_range returns the minimal covering MSB for tc ranges.
    #[test]
    fn msb_minimal_covering(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assume!(lo != 0.0 || hi != 0.0);
        let m = msb_for_range(lo, hi, Signedness::TwosComplement).expect("some");
        let pow = (m as f64).exp2();
        prop_assert!(-pow <= lo && hi < pow);
        let pow1 = ((m - 1) as f64).exp2();
        prop_assert!(!(-pow1 <= lo && hi < pow1), "msb {} not minimal for [{},{}]", m, lo, hi);
    }

    /// A dtype constructed from the decided msb represents the whole range.
    #[test]
    fn msb_yields_covering_dtype(a in -1e3f64..1e3, b in -1e3f64..1e3, f in 0i32..=16) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assume!(lo != 0.0 || hi != 0.0);
        let m = msb_for_range(lo, hi, Signedness::TwosComplement).expect("some");
        prop_assume!(m + f + 1 >= 1 && m + f < 63);
        let dt = DType::from_positions("p", m, -f, Signedness::TwosComplement,
                                       OverflowMode::Error, RoundingMode::Round).expect("valid");
        // Quantizing the endpoints must not overflow (rounding can nudge hi
        // past max by < 1 step; use floor for the check).
        let dtf = dt.with_rounding(RoundingMode::Floor);
        prop_assert!(!quantize(lo.max(dt.min_value()), &dtf).overflowed);
        prop_assert!(!quantize(hi, &dtf).overflowed);
    }

    /// Wrap-mode quantization is periodic in the modulus.
    #[test]
    fn wrap_periodicity(x in -1e4f64..1e4, n in 2i32..=16) {
        let dt = DType::new("p", n, 0, Signedness::TwosComplement,
                            OverflowMode::Wrap, RoundingMode::Round).expect("valid");
        let modulus = (n as f64).exp2();
        let q1 = quantize(x, &dt);
        let q2 = quantize(x + modulus, &dt);
        prop_assert_eq!(q1.mantissa, q2.mantissa);
    }

    /// Cast through a wider type then back is the identity for in-range
    /// representable values.
    #[test]
    fn cast_widen_narrow_roundtrip(m in -64i64..=63) {
        let narrow = DType::tc("n", 7, 5).expect("valid");
        let wide = DType::tc("w", 20, 10).expect("valid");
        let x = Fixed::from_mantissa(m, narrow.clone());
        let back = x.cast(wide).cast(narrow);
        prop_assert_eq!(back.mantissa(), m);
    }
}
