//! Seeded-sweep property tests for the parallel merge algebra.
//!
//! The scenario-sweep engine folds per-shard `RangeStats` / `ErrorStats`
//! into one merged accumulator, so the refinement rules see *one* virtual
//! simulation regardless of how many shards produced it. That is only
//! sound if the merge is a faithful homomorphism of streaming:
//!
//! * `merge(a, b)` must equal recording the concatenated stream `a ++ b`
//!   (min/max/count exact; mean/std within 1e-12 — Welford's parallel
//!   combination is numerically stable but not bit-identical to the
//!   streaming order for arbitrary splits);
//! * merge must be associative (shard fold order must not matter);
//! * the empty accumulator must be a (left and right) identity — and
//!   *exactly* so, since bit-identity of the 1-shard sweep against the
//!   sequential flow rides on `merge(empty, x) == x`.

use fixref_fixed::{ErrorStats, RangeStats, Rng64};

const MEAN_STD_TOL: f64 = 1e-12;

/// Deterministic error-like stream: mixture of smooth quantization noise,
/// occasional large excursions, exact zeros and sign flips.
fn stream(seed: u64, len: usize) -> Vec<f64> {
    let mut rng = Rng64::seed_from_u64(seed);
    (0..len)
        .map(|i| {
            let base = rng.symmetric(0.015625); // ~LSB -6 noise
            match i % 17 {
                0 => 0.0,           // exact samples
                5 => base * 1000.0, // excursion
                11 => -base.abs(),  // sign bias
                _ => base,
            }
        })
        .collect()
}

fn range_of(xs: &[f64]) -> RangeStats {
    let mut r = RangeStats::new();
    for &x in xs {
        r.record(x);
    }
    r
}

fn errors_of(xs: &[f64]) -> ErrorStats {
    let mut e = ErrorStats::new();
    for &x in xs {
        e.record(x);
    }
    e
}

fn assert_range_eq(got: &RangeStats, want: &RangeStats, ctx: &str) {
    assert_eq!(got.count(), want.count(), "{ctx}: count");
    assert_eq!(got.try_min(), want.try_min(), "{ctx}: min must be exact");
    assert_eq!(got.try_max(), want.try_max(), "{ctx}: max must be exact");
}

fn assert_error_close(got: &ErrorStats, want: &ErrorStats, ctx: &str) {
    assert_eq!(got.count(), want.count(), "{ctx}: count");
    assert_eq!(
        got.max_abs(),
        want.max_abs(),
        "{ctx}: max_abs must be exact"
    );
    assert!(
        (got.mean() - want.mean()).abs() <= MEAN_STD_TOL,
        "{ctx}: mean {} vs {}",
        got.mean(),
        want.mean()
    );
    assert!(
        (got.std() - want.std()).abs() <= MEAN_STD_TOL,
        "{ctx}: std {} vs {}",
        got.std(),
        want.std()
    );
}

#[test]
fn merge_equals_streaming_concatenation_across_seeds_and_splits() {
    for seed in 0..32u64 {
        let xs = stream(seed.wrapping_mul(0x9E37_79B9) + 1, 700);
        // Sweep split points including degenerate ones (empty halves).
        for split in [0usize, 1, 7, 350, 699, 700] {
            let (lhs, rhs) = xs.split_at(split);
            let whole_r = range_of(&xs);
            let whole_e = errors_of(&xs);

            let mut merged_r = range_of(lhs);
            merged_r.merge(&range_of(rhs));
            assert_range_eq(&merged_r, &whole_r, &format!("seed {seed} split {split}"));

            let mut merged_e = errors_of(lhs);
            merged_e.merge(&errors_of(rhs));
            assert_error_close(&merged_e, &whole_e, &format!("seed {seed} split {split}"));
        }
    }
}

#[test]
fn merge_is_associative_over_shard_partitions() {
    for seed in 0..16u64 {
        let xs = stream(seed + 41, 600);
        let parts: Vec<&[f64]> = xs.chunks(xs.len() / 3 + 1).collect();
        assert_eq!(parts.len(), 3);

        // ((a . b) . c)
        let mut left_r = range_of(parts[0]);
        left_r.merge(&range_of(parts[1]));
        left_r.merge(&range_of(parts[2]));
        let mut left_e = errors_of(parts[0]);
        left_e.merge(&errors_of(parts[1]));
        left_e.merge(&errors_of(parts[2]));

        // (a . (b . c))
        let mut tail_r = range_of(parts[1]);
        tail_r.merge(&range_of(parts[2]));
        let mut right_r = range_of(parts[0]);
        right_r.merge(&tail_r);
        let mut tail_e = errors_of(parts[1]);
        tail_e.merge(&errors_of(parts[2]));
        let mut right_e = errors_of(parts[0]);
        right_e.merge(&tail_e);

        assert_range_eq(&left_r, &right_r, &format!("seed {seed} assoc"));
        assert_error_close(&left_e, &right_e, &format!("seed {seed} assoc"));
    }
}

#[test]
fn empty_is_an_exact_identity() {
    for seed in 0..16u64 {
        let xs = stream(seed * 3 + 5, 250);
        let x_r = range_of(&xs);
        let x_e = errors_of(&xs);

        // merge(x, empty) == x, bitwise.
        let mut right_r = x_r;
        right_r.merge(&RangeStats::new());
        assert_eq!(right_r, x_r, "seed {seed}: range right identity");
        let mut right_e = x_e;
        right_e.merge(&ErrorStats::new());
        assert_eq!(right_e, x_e, "seed {seed}: error right identity");

        // merge(empty, x) == x, bitwise — this is what makes the 1-shard
        // sweep bit-identical to the sequential flow.
        let mut left_r = RangeStats::new();
        left_r.merge(&x_r);
        assert_eq!(left_r, x_r, "seed {seed}: range left identity");
        let mut left_e = ErrorStats::new();
        left_e.merge(&x_e);
        assert_eq!(left_e, x_e, "seed {seed}: error left identity");
    }
}

#[test]
fn shard_fold_in_scenario_order_is_split_invariant() {
    // The pool guarantees fold order == scenario order; the *number of
    // workers* only changes which thread computed each shard. The merged
    // result must therefore be bit-identical however the same shards were
    // computed — model that by folding the identical shard list twice.
    let shards: Vec<Vec<f64>> = (0..8).map(|s| stream(900 + s, 300)).collect();
    let fold = || {
        let mut r = RangeStats::new();
        let mut e = ErrorStats::new();
        for sh in &shards {
            r.merge(&range_of(sh));
            e.merge(&errors_of(sh));
        }
        (r, e)
    };
    let (r1, e1) = fold();
    let (r2, e2) = fold();
    assert_eq!(r1, r2);
    assert_eq!(e1, e2);
}

#[test]
fn nan_observations_merge_like_they_stream() {
    // RangeStats counts NaN without moving extremes; the merge must keep
    // that bookkeeping consistent with streaming.
    let mut whole = RangeStats::new();
    for &x in &[1.0, f64::NAN, -2.0] {
        whole.record(x);
    }
    let mut a = RangeStats::new();
    a.record(1.0);
    let mut b = RangeStats::new();
    b.record(f64::NAN);
    b.record(-2.0);
    a.merge(&b);
    assert_eq!(a.count(), whole.count());
    assert_eq!(a.try_min(), whole.try_min());
    assert_eq!(a.try_max(), whole.try_max());
}
