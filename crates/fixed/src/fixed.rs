//! Bit-true fixed-point values.
//!
//! The simulation engine follows the paper and computes in floating point,
//! quantizing only at assignments. [`Fixed`] is the *bit-true* companion: an
//! integer mantissa plus a [`DType`], with hardware-exact add/sub/mul whose
//! result formats grow the way RTL datapaths do. It is used to
//! cross-validate the floating-point quantization model (see the property
//! tests) and by the VHDL back-end to compute literal encodings.

use std::cmp::Ordering;
use std::fmt;

use crate::dtype::{DType, OverflowMode, RoundingMode, Signedness};
use crate::error::DTypeError;

/// A bit-true fixed-point value: integer mantissa `m` with value
/// `m · 2^lsb` in the format of its [`DType`].
#[derive(Debug, Clone)]
pub struct Fixed {
    mantissa: i64,
    dtype: DType,
}

impl Fixed {
    /// Creates a value from a raw mantissa.
    ///
    /// # Panics
    ///
    /// Panics if `mantissa` is outside the dtype's mantissa range.
    pub fn from_mantissa(mantissa: i64, dtype: DType) -> Self {
        assert!(
            (dtype.min_mantissa()..=dtype.max_mantissa()).contains(&mantissa),
            "mantissa {mantissa} out of range for {dtype}"
        );
        Fixed { mantissa, dtype }
    }

    /// Quantizes a floating-point value into the given format.
    pub fn from_f64(x: f64, dtype: DType) -> Self {
        let q = dtype.quantize(x);
        Fixed {
            mantissa: q.mantissa,
            dtype,
        }
    }

    /// Zero in the given format.
    pub fn zero(dtype: DType) -> Self {
        Fixed { mantissa: 0, dtype }
    }

    /// The raw mantissa.
    pub fn mantissa(&self) -> i64 {
        self.mantissa
    }

    /// The value's format.
    pub fn dtype(&self) -> &DType {
        &self.dtype
    }

    /// The real value `mantissa · 2^lsb`.
    pub fn to_f64(&self) -> f64 {
        self.mantissa as f64 * self.dtype.resolution()
    }

    /// The unsigned bit pattern of the mantissa in `n` bits (two's
    /// complement encoding for negative mantissas) — what the VHDL
    /// back-end prints.
    pub fn bits(&self) -> u64 {
        let n = self.dtype.n() as u32;
        (self.mantissa as u64) & (u64::MAX >> (64 - n))
    }

    /// Bit-true addition. The result format is the smallest format that
    /// holds every possible sum: `lsb = min(lsbs)`, `msb = max(msbs) + 1`,
    /// two's complement if either operand is.
    ///
    /// # Errors
    ///
    /// Returns [`DTypeError`] when the required result wordlength exceeds
    /// 63 bits.
    pub fn checked_add(&self, rhs: &Fixed) -> Result<Fixed, DTypeError> {
        let (a, b, dt) = align(self, rhs, 1)?;
        Ok(Fixed {
            mantissa: a + b,
            dtype: dt,
        })
    }

    /// Bit-true subtraction with the same growth rule as
    /// [`Fixed::checked_add`]; the result is always two's complement.
    ///
    /// # Errors
    ///
    /// Returns [`DTypeError`] when the required result wordlength exceeds
    /// 63 bits.
    pub fn checked_sub(&self, rhs: &Fixed) -> Result<Fixed, DTypeError> {
        let (a, b, dt) = align(self, rhs, 1)?;
        let dt = DType::new(
            format!("({}-{})", self.dtype.name(), rhs.dtype.name()),
            dt.n(),
            dt.f(),
            Signedness::TwosComplement,
            dt.overflow(),
            dt.rounding(),
        )?;
        Ok(Fixed {
            mantissa: a - b,
            dtype: dt,
        })
    }

    /// Bit-true multiplication: `lsb = lsb_a + lsb_b`,
    /// `msb = msb_a + msb_b + 1` (the classic full-precision multiplier
    /// output format).
    ///
    /// # Errors
    ///
    /// Returns [`DTypeError`] when the required result wordlength exceeds
    /// 63 bits.
    pub fn checked_mul(&self, rhs: &Fixed) -> Result<Fixed, DTypeError> {
        let msb = self.dtype.msb() + rhs.dtype.msb() + 1;
        let lsb = self.dtype.lsb() + rhs.dtype.lsb();
        let signed = self.dtype.signedness() == Signedness::TwosComplement
            || rhs.dtype.signedness() == Signedness::TwosComplement;
        let dt = DType::from_positions(
            format!("({}*{})", self.dtype.name(), rhs.dtype.name()),
            msb,
            lsb,
            if signed {
                Signedness::TwosComplement
            } else {
                Signedness::Unsigned
            },
            OverflowMode::Error,
            RoundingMode::Round,
        )?;
        let p = self.mantissa as i128 * rhs.mantissa as i128;
        debug_assert!(p >= dt.min_mantissa() as i128 && p <= dt.max_mantissa() as i128);
        Ok(Fixed {
            mantissa: p as i64,
            dtype: dt,
        })
    }

    /// Bit-true negation (result is two's complement one bit wider to hold
    /// `-min`).
    ///
    /// # Errors
    ///
    /// Returns [`DTypeError`] when the required result wordlength exceeds
    /// 63 bits.
    pub fn checked_neg(&self) -> Result<Fixed, DTypeError> {
        let dt = DType::from_positions(
            format!("(-{})", self.dtype.name()),
            self.dtype.msb() + 1,
            self.dtype.lsb(),
            Signedness::TwosComplement,
            self.dtype.overflow(),
            self.dtype.rounding(),
        )?;
        Ok(Fixed {
            mantissa: -self.mantissa,
            dtype: dt,
        })
    }

    /// Requantizes ("casts") into another format, applying that format's
    /// rounding and overflow modes — the paper's explicit `cast` operator
    /// for intermediate results.
    pub fn cast(&self, dtype: DType) -> Fixed {
        Fixed::from_f64(self.to_f64(), dtype)
    }

    /// Arithmetic shift by `k` bit positions (positive = left / multiply by
    /// `2^k`). The value is unchanged; only the format moves, so this is
    /// exact.
    ///
    /// # Errors
    ///
    /// Returns [`DTypeError`] when the shifted format is invalid.
    pub fn shifted(&self, k: i32) -> Result<Fixed, DTypeError> {
        let dt = DType::from_positions(
            format!("({}<<{k})", self.dtype.name()),
            self.dtype.msb() + k,
            self.dtype.lsb() + k,
            self.dtype.signedness(),
            self.dtype.overflow(),
            self.dtype.rounding(),
        )?;
        Ok(Fixed {
            mantissa: self.mantissa,
            dtype: dt,
        })
    }
}

/// Aligns two mantissas to a common format with `growth` extra MSBs.
fn align(a: &Fixed, b: &Fixed, growth: i32) -> Result<(i64, i64, DType), DTypeError> {
    let lsb = a.dtype.lsb().min(b.dtype.lsb());
    let msb = a.dtype.msb().max(b.dtype.msb()) + growth;
    let signed = a.dtype.signedness() == Signedness::TwosComplement
        || b.dtype.signedness() == Signedness::TwosComplement;
    let dt = DType::new(
        format!("({}+{})", a.dtype.name(), b.dtype.name()),
        msb - lsb + 1,
        -lsb,
        if signed {
            Signedness::TwosComplement
        } else {
            Signedness::Unsigned
        },
        OverflowMode::Error,
        RoundingMode::Round,
    )?;
    let sa = a.dtype.lsb() - lsb;
    let sb = b.dtype.lsb() - lsb;
    Ok((a.mantissa << sa, b.mantissa << sb, dt))
}

impl PartialEq for Fixed {
    /// Numeric equality across formats (e.g. `1.0` in `<4,1>` equals `1.0`
    /// in `<8,5>`).
    fn eq(&self, other: &Self) -> bool {
        self.partial_cmp(other) == Some(Ordering::Equal)
    }
}

impl PartialOrd for Fixed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        // Compare exactly by aligning mantissas in i128.
        let lsb = self.dtype.lsb().min(other.dtype.lsb());
        let a = (self.mantissa as i128) << (self.dtype.lsb() - lsb);
        let b = (other.mantissa as i128) << (other.dtype.lsb() - lsb);
        a.partial_cmp(&b)
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.to_f64(), self.dtype)
    }
}

impl fmt::Binary for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.dtype.n() as usize;
        write!(f, "{:0width$b}", self.bits(), width = n)
    }
}

impl fmt::LowerHex for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.bits())
    }
}

impl fmt::UpperHex for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:X}", self.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tc(n: i32, f: i32) -> DType {
        DType::tc("t", n, f).unwrap()
    }

    #[test]
    fn roundtrip_f64() {
        let t = tc(7, 5);
        let x = Fixed::from_f64(0.71875, t.clone());
        assert_eq!(x.mantissa(), 23);
        assert_eq!(x.to_f64(), 0.71875);
        assert_eq!(Fixed::zero(t).to_f64(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_mantissa_range_checked() {
        let _ = Fixed::from_mantissa(64, tc(7, 5));
    }

    #[test]
    fn bits_two_complement_encoding() {
        let t = tc(7, 5);
        assert_eq!(Fixed::from_mantissa(-1, t.clone()).bits(), 0b111_1111);
        assert_eq!(Fixed::from_mantissa(-64, t.clone()).bits(), 0b100_0000);
        assert_eq!(Fixed::from_mantissa(63, t).bits(), 0b011_1111);
    }

    #[test]
    fn add_grows_one_bit_and_is_exact() {
        let a = Fixed::from_f64(1.5, tc(7, 5));
        let b = Fixed::from_f64(1.96875, tc(7, 5));
        let s = a.checked_add(&b).unwrap();
        assert_eq!(s.to_f64(), 1.5 + 1.96875); // no overflow: grew a bit
        assert_eq!(s.dtype().msb(), 2);
        assert_eq!(s.dtype().lsb(), -5);
    }

    #[test]
    fn add_mixed_formats_aligns_lsb() {
        let a = Fixed::from_f64(0.75, tc(8, 2)); // lsb -2
        let b = Fixed::from_f64(0.0625, tc(8, 4)); // lsb -4
        let s = a.checked_add(&b).unwrap();
        assert_eq!(s.dtype().lsb(), -4);
        assert_eq!(s.to_f64(), 0.8125);
    }

    #[test]
    fn sub_is_exact_and_signed() {
        let a = Fixed::from_f64(0.5, tc(7, 5));
        let b = Fixed::from_f64(1.0, tc(7, 5));
        let d = a.checked_sub(&b).unwrap();
        assert_eq!(d.to_f64(), -0.5);
        assert_eq!(d.dtype().signedness(), Signedness::TwosComplement);
    }

    #[test]
    fn mul_full_precision() {
        let a = Fixed::from_f64(-1.5, tc(7, 5));
        let b = Fixed::from_f64(1.25, tc(7, 5));
        let p = a.checked_mul(&b).unwrap();
        assert_eq!(p.to_f64(), -1.875);
        assert_eq!(p.dtype().lsb(), -10);
        assert_eq!(p.dtype().msb(), 3);
        // Extremes never overflow the grown format.
        let mn = Fixed::from_mantissa(-64, tc(7, 5));
        let p = mn.checked_mul(&mn).unwrap();
        assert_eq!(p.to_f64(), 4.0);
    }

    #[test]
    fn growth_beyond_63_bits_rejected() {
        let wide = DType::tc("w", 62, 0).unwrap();
        let a = Fixed::from_f64(1000.0, wide.clone());
        assert!(a.checked_mul(&a).is_err());
        let b = Fixed::from_f64(1.0, DType::tc("x", 63, 0).unwrap());
        assert!(b.checked_add(&b).is_err());
    }

    #[test]
    fn neg_handles_min_value() {
        let t = tc(7, 5);
        let mn = Fixed::from_mantissa(-64, t);
        let n = mn.checked_neg().unwrap();
        assert_eq!(n.to_f64(), 2.0); // representable thanks to growth
    }

    #[test]
    fn cast_requantizes_with_target_modes() {
        let a = Fixed::from_f64(1.999, tc(16, 10));
        let narrow = tc(7, 5); // saturating
        let c = a.cast(narrow);
        assert!((c.to_f64() - (2.0 - 0.03125)).abs() < 1e-12);
        // Floor mode cast truncates.
        let fl = DType::new(
            "fl",
            7,
            5,
            Signedness::TwosComplement,
            OverflowMode::Saturate,
            RoundingMode::Floor,
        )
        .unwrap();
        let c = Fixed::from_f64(0.99, tc(16, 10)).cast(fl);
        assert!((c.to_f64() - 0.96875).abs() < 1e-12);
    }

    #[test]
    fn shift_is_exact_format_move() {
        let a = Fixed::from_f64(0.75, tc(8, 4));
        let s = a.shifted(2).unwrap();
        assert_eq!(s.to_f64(), 3.0);
        assert_eq!(s.mantissa(), a.mantissa());
        let s = a.shifted(-3).unwrap();
        assert!((s.to_f64() - 0.09375).abs() < 1e-15);
    }

    #[test]
    fn cross_format_comparison() {
        let a = Fixed::from_f64(1.0, tc(4, 1));
        let b = Fixed::from_f64(1.0, tc(8, 5));
        assert_eq!(a, b);
        let c = Fixed::from_f64(1.5, tc(8, 5));
        assert!(a < c);
        assert!(c > b);
    }

    #[test]
    fn formatting() {
        let t = tc(7, 5);
        let x = Fixed::from_mantissa(-1, t);
        assert_eq!(format!("{x:b}"), "1111111");
        assert_eq!(format!("{x:x}"), "7f");
        assert_eq!(format!("{x:X}"), "7F");
        assert!(x.to_string().contains("<7,5,tc"));
    }

    #[test]
    fn bit_true_matches_float_model() {
        // The f64 quantization model and the bit-true mantissa must agree
        // over a dense sweep.
        let t = tc(10, 6);
        let mut x = -9.0;
        while x < 9.0 {
            let q = t.quantize(x);
            let f = Fixed::from_f64(x, t.clone());
            assert_eq!(q.mantissa, f.mantissa(), "at {x}");
            assert_eq!(q.value, f.to_f64(), "at {x}");
            x += 0.0371;
        }
    }
}
