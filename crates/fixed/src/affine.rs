//! Affine arithmetic — the correlation-tracking refinement of
//! [`Interval`] range propagation.
//!
//! Plain interval arithmetic treats every operand as independent, so the
//! expression `acc - acc * mu` widens by `(1 + mu) * width(acc)` even
//! though the true output width is `(1 - mu) * width(acc)` — which is
//! exactly why the analytical fixpoint of `analyze_ranges` rails to
//! [`Interval::UNBOUNDED`] on feedback loops written in that additive
//! style. An [`AffineForm`] represents a quantity as
//!
//! ```text
//! x̂ = c + Σᵢ aᵢ·εᵢ + r·ε*     with εᵢ, ε* ∈ [-1, 1]
//! ```
//!
//! — a center `c`, first-order coefficients `aᵢ` over shared *noise
//! symbols* `εᵢ`, and a non-negative residual `r` over an anonymous
//! symbol. Two forms that share a symbol are correlated: `x̂ - x̂` is
//! exactly zero, `x̂ - x̂·mu` has width `(1 - mu)·width(x̂)`. That is the
//! tightening affine arithmetic buys over intervals (Stolfi & de
//! Figueiredo's classic construction, applied here to the paper's §4.1
//! range propagation).
//!
//! Soundness contract: [`AffineForm::to_interval`] always contains every
//! value the form can take, and every operation here is *conservative* —
//! the result form's concretization contains the true image of the
//! operand concretizations. Nonlinear operations (multiplication,
//! absolute value, min/max, …) push the curvature into the residual.
//! Note that affine multiplication of *independent* operands can be
//! looser than interval multiplication (`[0,2]·[0,2]` concretizes to
//! `[-2, 4]` affinely but `[0, 4]` as intervals), so a combined
//! propagator should intersect both envelopes; see
//! `fixref_sim::analyze_ranges_affine`.

use std::fmt;

use crate::dtype::{DType, OverflowMode};
use crate::interval::Interval;

/// Allocator for fresh noise-symbol identifiers.
///
/// Symbols are plain `u32`s; forms built from the same allocator share
/// correlation structure. The allocator is deterministic (a counter), so
/// analyses that create symbols in a sorted order are reproducible.
#[derive(Debug, Clone, Default)]
pub struct NoiseSymbols {
    next: u32,
}

impl NoiseSymbols {
    /// A fresh allocator starting at symbol 0.
    pub fn new() -> Self {
        NoiseSymbols::default()
    }

    /// Allocates the next unused symbol id.
    pub fn fresh(&mut self) -> u32 {
        let s = self.next;
        self.next += 1;
        s
    }

    /// Number of symbols allocated so far.
    pub fn len(&self) -> usize {
        self.next as usize
    }

    /// Whether no symbol has been allocated yet.
    pub fn is_empty(&self) -> bool {
        self.next == 0
    }
}

/// An affine form `c + Σ aᵢ·εᵢ + r·ε*` over shared noise symbols.
///
/// Terms are kept sorted by symbol id with no zero coefficients, so
/// equality and iteration are canonical. A form with a non-finite center,
/// coefficient or residual concretizes to [`Interval::UNBOUNDED`] — the
/// honest "I know nothing" answer, mirroring interval explosion.
#[derive(Debug, Clone, PartialEq)]
pub struct AffineForm {
    center: f64,
    /// `(symbol, coefficient)` pairs, sorted by symbol, no zeros.
    terms: Vec<(u32, f64)>,
    /// Non-negative residual radius over an anonymous symbol.
    resid: f64,
}

impl AffineForm {
    /// The constant form `c` (no uncertainty).
    pub fn constant(c: f64) -> Self {
        AffineForm {
            center: c,
            terms: Vec::new(),
            resid: 0.0,
        }
    }

    /// A form spanning `itv`, anchored on the noise symbol `symbol`:
    /// `mid(itv) + rad(itv)·ε_symbol`. An empty interval becomes the
    /// constant 0 (the simulation reset value); an exploded interval
    /// becomes the unbounded form.
    pub fn from_interval(itv: &Interval, symbol: u32) -> Self {
        if itv.is_empty() {
            return AffineForm::constant(0.0);
        }
        if !itv.lo.is_finite() || !itv.hi.is_finite() {
            return AffineForm::top();
        }
        let mid = (itv.lo + itv.hi) / 2.0;
        // Round the radius up so mid ± rad still covers the endpoints
        // after the f64 midpoint rounding.
        let rad = (itv.hi - mid).max(mid - itv.lo);
        let mut terms = Vec::new();
        if rad > 0.0 {
            terms.push((symbol, rad));
        }
        AffineForm {
            center: mid,
            terms,
            resid: 0.0,
        }
    }

    /// The unbounded form (concretizes to [`Interval::UNBOUNDED`]).
    pub fn top() -> Self {
        AffineForm {
            center: 0.0,
            terms: Vec::new(),
            resid: f64::INFINITY,
        }
    }

    /// Whether the form carries any infinite or NaN component.
    pub fn is_finite(&self) -> bool {
        self.center.is_finite()
            && self.resid.is_finite()
            && self.terms.iter().all(|(_, a)| a.is_finite())
    }

    /// The center `c`.
    pub fn center(&self) -> f64 {
        self.center
    }

    /// Total deviation radius `Σ|aᵢ| + r`.
    pub fn radius(&self) -> f64 {
        self.terms.iter().map(|(_, a)| a.abs()).sum::<f64>() + self.resid
    }

    /// The coefficient of a symbol (0 when absent).
    pub fn coefficient(&self, symbol: u32) -> f64 {
        self.terms
            .binary_search_by_key(&symbol, |&(s, _)| s)
            .map(|i| self.terms[i].1)
            .unwrap_or(0.0)
    }

    /// The tightest interval containing every value of the form.
    pub fn to_interval(&self) -> Interval {
        if !self.is_finite() {
            return Interval::UNBOUNDED;
        }
        let r = self.radius();
        // r can overflow to inf even with finite components.
        if !(self.center - r).is_finite() || !(self.center + r).is_finite() {
            return Interval::UNBOUNDED;
        }
        Interval::new(self.center - r, self.center + r)
    }

    /// Evaluates the form at a concrete assignment of noise symbols
    /// (absent symbols read as 0, the residual term reads `resid_eps`).
    /// Every `eps` and `resid_eps` must lie in `[-1, 1]` for the result
    /// to be a point of the form.
    pub fn eval(&self, eps: &dyn Fn(u32) -> f64, resid_eps: f64) -> f64 {
        let mut v = self.center;
        for &(s, a) in &self.terms {
            v += a * eps(s);
        }
        v + self.resid * resid_eps
    }

    /// Merges term lists with `f(a, b)` applied per symbol.
    fn zip_terms(&self, other: &AffineForm, f: impl Fn(f64, f64) -> f64) -> Vec<(u32, f64)> {
        let mut out = Vec::with_capacity(self.terms.len() + other.terms.len());
        let (mut i, mut j) = (0, 0);
        while i < self.terms.len() || j < other.terms.len() {
            let next = match (self.terms.get(i), other.terms.get(j)) {
                (Some(&(sa, a)), Some(&(sb, b))) => {
                    if sa == sb {
                        i += 1;
                        j += 1;
                        (sa, f(a, b))
                    } else if sa < sb {
                        i += 1;
                        (sa, f(a, 0.0))
                    } else {
                        j += 1;
                        (sb, f(0.0, b))
                    }
                }
                (Some(&(sa, a)), None) => {
                    i += 1;
                    (sa, f(a, 0.0))
                }
                (None, Some(&(sb, b))) => {
                    j += 1;
                    (sb, f(0.0, b))
                }
                (None, None) => break,
            };
            if next.1 != 0.0 {
                out.push(next);
            }
        }
        out
    }

    /// `self + other` (exact in affine arithmetic, up to f64 rounding
    /// absorbed into the residual).
    pub fn add(&self, other: &AffineForm) -> AffineForm {
        AffineForm {
            center: self.center + other.center,
            terms: self.zip_terms(other, |a, b| a + b),
            resid: self.resid + other.resid,
        }
        .denan()
    }

    /// `self - other`. Shared symbols cancel: `x.sub(&x)` is exactly the
    /// constant 0 (plus residuals).
    pub fn sub(&self, other: &AffineForm) -> AffineForm {
        AffineForm {
            center: self.center - other.center,
            terms: self.zip_terms(other, |a, b| a - b),
            resid: self.resid + other.resid,
        }
        .denan()
    }

    /// `-self` (exact).
    pub fn neg(&self) -> AffineForm {
        AffineForm {
            center: -self.center,
            terms: self.terms.iter().map(|&(s, a)| (s, -a)).collect(),
            resid: self.resid,
        }
    }

    /// `self * k` for a constant `k` (exact).
    pub fn scale(&self, k: f64) -> AffineForm {
        if k == 0.0 {
            return AffineForm::constant(0.0);
        }
        AffineForm {
            center: self.center * k,
            terms: self
                .terms
                .iter()
                .map(|&(s, a)| (s, a * k))
                .filter(|&(_, a)| a != 0.0)
                .collect(),
            resid: self.resid * k.abs(),
        }
        .denan()
    }

    /// `self + k` for a constant `k` (exact).
    pub fn offset(&self, k: f64) -> AffineForm {
        AffineForm {
            center: self.center + k,
            terms: self.terms.clone(),
            resid: self.resid,
        }
        .denan()
    }

    /// `self * other`: linear part is exact, the quadratic cross term is
    /// pushed into the residual (`R₁·R₂ + |c₁|·r₂ + |c₂|·r₁` with `Rᵢ`
    /// the operand radii) — the standard conservative affine product.
    pub fn mul(&self, other: &AffineForm) -> AffineForm {
        // Fast path: multiplying by an exact constant stays exact.
        if other.terms.is_empty() && other.resid == 0.0 {
            return self.scale(other.center);
        }
        if self.terms.is_empty() && self.resid == 0.0 {
            return other.scale(self.center);
        }
        let r1 = self.radius();
        let r2 = other.radius();
        let terms = self.zip_terms(other, |a, b| self.center.mul_add(b, other.center * a));
        AffineForm {
            center: self.center * other.center,
            terms,
            resid: r1 * r2 + self.center.abs() * other.resid + other.center.abs() * self.resid,
        }
        .denan()
    }

    /// Clamps the form into `bounds` — the effect of a saturating cast.
    /// Clamping is nonlinear, so correlation survives only when the form
    /// provably stays inside the bounds; otherwise the result is a fresh
    /// uncorrelated form over the clamped interval, anchored on `symbol`.
    pub fn clamp_to(&self, bounds: &Interval, symbol: u32) -> AffineForm {
        let itv = self.to_interval();
        if bounds.contains_interval(&itv) {
            return self.clone();
        }
        AffineForm::from_interval(&itv.clamp_to(bounds), symbol)
    }

    /// The effect of quantizing the form through `dtype`: widens by half
    /// an LSB of rounding slack (a full LSB for floor rounding, which is
    /// biased but still bounded by one step), then saturating types clamp
    /// to the representable range. Wrap and error modes only add the
    /// rounding slack — aliasing is a *hazard*, not a bound, and the
    /// range analysis reports it separately.
    pub fn quantize(&self, dtype: &DType, symbol: u32) -> AffineForm {
        let step = dtype.resolution();
        let widened = AffineForm {
            center: self.center,
            terms: self.terms.clone(),
            resid: self.resid + step,
        }
        .denan();
        if dtype.overflow() == OverflowMode::Saturate {
            widened.clamp_to(&Interval::from_dtype(dtype), symbol)
        } else {
            widened
        }
    }

    /// NaN components (e.g. `0 · ∞`) degrade the whole form to
    /// [`AffineForm::top`] — mirroring [`Interval`]'s denan policy.
    fn denan(self) -> AffineForm {
        if self.center.is_nan() || self.resid.is_nan() || self.terms.iter().any(|(_, a)| a.is_nan())
        {
            AffineForm::top()
        } else {
            self
        }
    }
}

impl fmt::Display for AffineForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.center)?;
        for &(s, a) in &self.terms {
            write!(f, " {} {}·ε{}", if a < 0.0 { "-" } else { "+" }, a.abs(), s)?;
        }
        if self.resid != 0.0 {
            write!(f, " ± {}", self.resid)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_and_interval_forms_concretize_back() {
        assert_eq!(
            AffineForm::constant(2.5).to_interval(),
            Interval::point(2.5)
        );
        let mut syms = NoiseSymbols::new();
        let x = AffineForm::from_interval(&Interval::new(-1.0, 3.0), syms.fresh());
        assert_eq!(x.to_interval(), Interval::new(-1.0, 3.0));
        assert_eq!(x.center(), 1.0);
        assert_eq!(x.radius(), 2.0);
    }

    #[test]
    fn shared_symbols_cancel_in_subtraction() {
        let x = AffineForm::from_interval(&Interval::new(-1.0, 1.0), 0);
        let diff = x.sub(&x);
        assert_eq!(diff.to_interval(), Interval::point(0.0));
        // Independent symbols do not cancel.
        let y = AffineForm::from_interval(&Interval::new(-1.0, 1.0), 1);
        assert_eq!(x.sub(&y).to_interval(), Interval::new(-2.0, 2.0));
    }

    #[test]
    fn leaky_feedback_contracts_where_intervals_widen() {
        // acc - acc*0.25: true width factor 0.75; intervals give 1.25.
        let acc = AffineForm::from_interval(&Interval::new(-2.0, 2.0), 0);
        let leaked = acc.sub(&acc.scale(0.25));
        assert_eq!(leaked.to_interval(), Interval::new(-1.5, 1.5));
        let itv = Interval::new(-2.0, 2.0);
        let interval_answer = itv - itv * Interval::point(0.25);
        assert_eq!(interval_answer, Interval::new(-2.5, 2.5));
    }

    #[test]
    fn multiplication_is_conservative() {
        let x = AffineForm::from_interval(&Interval::new(0.0, 2.0), 0);
        let sq = x.mul(&x);
        // x² over [0,2] is [0,4]; the affine product must contain it.
        let itv = sq.to_interval();
        assert!(itv.contains_interval(&Interval::new(0.0, 4.0)), "{itv}");
    }

    #[test]
    fn mul_by_constant_is_exact() {
        let x = AffineForm::from_interval(&Interval::new(-1.0, 3.0), 0);
        let k = AffineForm::constant(-2.0);
        assert_eq!(x.mul(&k).to_interval(), Interval::new(-6.0, 2.0));
        assert_eq!(k.mul(&x).to_interval(), Interval::new(-6.0, 2.0));
    }

    #[test]
    fn eval_stays_inside_the_concretization() {
        let x = AffineForm::from_interval(&Interval::new(-1.0, 2.0), 0);
        let y = AffineForm::from_interval(&Interval::new(0.5, 1.5), 1);
        let expr = x.mul(&y).add(&x.scale(0.5)).offset(-0.25);
        let itv = expr.to_interval();
        for i in 0..=10 {
            let e0 = -1.0 + 0.2 * i as f64;
            for j in 0..=10 {
                let e1 = -1.0 + 0.2 * j as f64;
                let eps = move |s: u32| if s == 0 { e0 } else { e1 };
                // The affine product is conservative, so evaluating the
                // *operands* concretely and combining must stay inside.
                let xv = x.eval(&eps, 0.0);
                let yv = y.eval(&eps, 0.0);
                let concrete = xv * yv + 0.5 * xv - 0.25;
                assert!(itv.contains(concrete), "{concrete} outside {itv}");
            }
        }
    }

    #[test]
    fn clamp_preserves_correlation_only_when_inside() {
        let x = AffineForm::from_interval(&Interval::new(-0.5, 0.5), 0);
        let inside = x.clamp_to(&Interval::new(-1.0, 1.0), 7);
        assert_eq!(inside, x, "no clamp needed: form unchanged");
        let outside = x.clamp_to(&Interval::new(-0.25, 0.25), 7);
        assert_eq!(outside.to_interval(), Interval::new(-0.25, 0.25));
        assert_eq!(outside.coefficient(0), 0.0, "correlation dropped");
    }

    #[test]
    fn quantize_widens_by_a_step_and_saturates() {
        let dt: DType = "<6,4,tc,st,rd>".parse().expect("valid");
        let x = AffineForm::from_interval(&Interval::new(-0.5, 0.5), 0);
        let q = x.quantize(&dt, 9);
        let itv = q.to_interval();
        assert!(itv.contains_interval(&Interval::new(-0.5, 0.5)));
        assert!(itv.lo >= dt.min_value() && itv.hi <= dt.max_value());
        // A huge form saturates to the representable range.
        let big = AffineForm::from_interval(&Interval::new(-100.0, 100.0), 1);
        assert_eq!(
            big.quantize(&dt, 9).to_interval(),
            Interval::from_dtype(&dt)
        );
    }

    #[test]
    fn non_finite_components_degrade_to_top() {
        let top = AffineForm::top();
        assert!(!top.is_finite());
        assert_eq!(top.to_interval(), Interval::UNBOUNDED);
        let x = AffineForm::from_interval(&Interval::UNBOUNDED, 0);
        assert_eq!(x.to_interval(), Interval::UNBOUNDED);
        let zero = AffineForm::constant(0.0);
        // 0 · top concretizes soundly (0·∞ handled by denan, not NaN).
        let p = zero.mul(&top);
        assert!(p.to_interval().contains(0.0));
    }

    #[test]
    fn noise_symbol_allocator_is_a_counter() {
        let mut syms = NoiseSymbols::new();
        assert!(syms.is_empty());
        assert_eq!(syms.fresh(), 0);
        assert_eq!(syms.fresh(), 1);
        assert_eq!(syms.len(), 2);
    }
}
