//! The assignment-time quantization kernel.
//!
//! In the paper's environment "all operations are performed with floating
//! point arithmetic. Only when assigning a signal, the quantization is
//! performed" (Section 2.2). [`quantize`] is that single point of
//! quantization: it scales the value by `2^f`, applies the LSB rounding
//! mode, then applies the MSB overflow mode, and reports what happened so
//! the monitors can collect statistics.

use crate::dtype::{DType, OverflowMode, RoundingMode, Signedness};
use crate::error::OverflowError;

/// The result of quantizing one value through a [`DType`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantized {
    /// The representable value after rounding and overflow handling.
    pub value: f64,
    /// The scaled integer mantissa of `value` (i.e. `value / 2^lsb`).
    pub mantissa: i64,
    /// Whether the rounded value fell outside the representable range
    /// (regardless of overflow mode).
    pub overflowed: bool,
    /// The rounding error `value_after_rounding - input` *before* overflow
    /// handling; useful for precision diagnostics.
    pub rounding_error: f64,
}

impl Quantized {
    /// Converts to a `Result`, failing with [`OverflowError`] when the value
    /// overflowed — the contract of [`OverflowMode::Error`].
    ///
    /// # Errors
    ///
    /// Returns [`OverflowError`] when [`Quantized::overflowed`] is true.
    pub fn into_checked(self, dtype: &DType) -> Result<f64, OverflowError> {
        if self.overflowed {
            Err(OverflowError {
                value: self.value,
                min: dtype.min_value(),
                max: dtype.max_value(),
                dtype: dtype.name().to_string(),
            })
        } else {
            Ok(self.value)
        }
    }
}

/// Quantizes `x` through `dtype`.
///
/// The pipeline is: scale by `2^f` → round per [`RoundingMode`] → handle
/// overflow per [`OverflowMode`] → rescale. Non-finite inputs saturate to
/// the nearest representable extreme (NaN maps to 0) and are flagged as
/// overflow.
///
/// Note that [`OverflowMode::Error`] *saturates* the returned value after
/// flagging, so a simulation can continue while the event is recorded; use
/// [`Quantized::into_checked`] to turn the flag into an error.
///
/// # Example
///
/// ```
/// use fixref_fixed::{quantize, DType};
///
/// # fn main() -> Result<(), fixref_fixed::DTypeError> {
/// let t = DType::tc("t", 7, 5)?;
/// let q = quantize(0.70, &t);
/// assert_eq!(q.mantissa, 22);            // round(0.70 * 32) = round(22.4) = 22
/// let q = quantize(0.71, &t);            // round(22.72) = 23
/// assert!((q.value - 23.0 / 32.0).abs() < 1e-12);
/// assert!(!q.overflowed);
/// let q = quantize(5.0, &t);             // saturates at 2 - 2^-5
/// assert!(q.overflowed);
/// assert!((q.value - (2.0 - 1.0 / 32.0)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn quantize(x: f64, dtype: &DType) -> Quantized {
    let step = dtype.resolution();
    let min_m = dtype.min_mantissa();
    let max_m = dtype.max_mantissa();

    if x.is_nan() {
        let m = 0i64.clamp(min_m, max_m);
        return Quantized {
            value: m as f64 * step,
            mantissa: m,
            overflowed: true,
            rounding_error: f64::NAN,
        };
    }
    if x.is_infinite() {
        let m = if x > 0.0 { max_m } else { min_m };
        return Quantized {
            value: m as f64 * step,
            mantissa: m,
            overflowed: true,
            rounding_error: f64::INFINITY,
        };
    }

    let scaled = x / step;
    let rounded = match dtype.rounding() {
        RoundingMode::Round => (scaled + 0.5).floor(),
        RoundingMode::Floor => scaled.floor(),
    };
    let rounding_error = rounded * step - x;

    // Mantissa may exceed i64 for extreme inputs; clamp through f64 first.
    let in_range = rounded >= min_m as f64 && rounded <= max_m as f64;
    let mantissa = if in_range {
        rounded as i64
    } else {
        match dtype.overflow() {
            OverflowMode::Saturate | OverflowMode::Error => {
                if rounded > max_m as f64 {
                    max_m
                } else {
                    min_m
                }
            }
            OverflowMode::Wrap => wrap_mantissa(rounded, dtype),
        }
    };

    Quantized {
        value: mantissa as f64 * step,
        mantissa,
        overflowed: !in_range,
        rounding_error,
    }
}

/// Two's-complement / unsigned wrap of an out-of-range scaled value into the
/// `n`-bit mantissa range.
fn wrap_mantissa(rounded: f64, dtype: &DType) -> i64 {
    let n = dtype.n();
    let modulus = (n as f64).exp2();
    // Euclidean remainder in f64 is exact for |rounded| < 2^52, which covers
    // every mantissa a 63-bit type can produce from finite inputs after the
    // division below; fall back to clamping for pathological magnitudes.
    if rounded.abs() >= 2f64.powi(52) {
        return if rounded > 0.0 {
            dtype.max_mantissa()
        } else {
            dtype.min_mantissa()
        };
    }
    let mut r = rounded.rem_euclid(modulus);
    if dtype.signedness() == Signedness::TwosComplement && r >= modulus / 2.0 {
        r -= modulus;
    }
    r as i64
}

/// Computes the MSB position required to hold the range `[min, max]` — the
/// paper's Section 5.1 function `C(min, max)`.
///
/// For two's complement the result is the smallest `m` with
/// `-2^m <= min` and `max < 2^m`; for unsigned it is the smallest `m` with
/// `max < 2^(m+1)` (and `min` must be non-negative to be representable at
/// all — a negative `min` falls back to the two's-complement answer so the
/// caller can detect the signedness mismatch by comparison).
///
/// Returns `None` for an empty or all-zero range (any MSB works) and for
/// non-finite bounds (range explosion; the caller reports it as such).
///
/// # Example
///
/// ```
/// use fixref_fixed::{msb_for_range, Signedness};
///
/// assert_eq!(msb_for_range(-1.5, 1.5, Signedness::TwosComplement), Some(1));
/// assert_eq!(msb_for_range(-2.0, 1.0, Signedness::TwosComplement), Some(1));
/// assert_eq!(msb_for_range(-0.11, 1.2, Signedness::TwosComplement), Some(1));
/// assert_eq!(msb_for_range(0.0, 0.9, Signedness::Unsigned), Some(-1));
/// assert_eq!(msb_for_range(0.0, 0.0, Signedness::TwosComplement), None);
/// ```
pub fn msb_for_range(min: f64, max: f64, signedness: Signedness) -> Option<i32> {
    if !min.is_finite() || !max.is_finite() || min > max {
        return None;
    }
    if min == 0.0 && max == 0.0 {
        return None;
    }
    match signedness {
        Signedness::TwosComplement => {
            // Smallest m with -2^m <= min and max < 2^m. Using strict
            // max < 2^m is the conservative reading of `max <= 2^m - 2^lsb`.
            let mut m = msb_candidate(min.abs().max(max.abs()));
            while !(-((m as f64).exp2()) <= min && max < (m as f64).exp2()) {
                m += 1;
            }
            // Tighten: the candidate may be one too large when min is
            // exactly a negative power of two and dominates.
            while m > i32::MIN + 1
                && -(((m - 1) as f64).exp2()) <= min
                && max < ((m - 1) as f64).exp2()
            {
                m -= 1;
            }
            Some(m)
        }
        Signedness::Unsigned => {
            if min < 0.0 {
                return msb_for_range(min, max, Signedness::TwosComplement);
            }
            let mut m = msb_candidate(max) - 1;
            while max >= ((m + 1) as f64).exp2() {
                m += 1;
            }
            while max < (m as f64).exp2() {
                m -= 1;
            }
            Some(m)
        }
    }
}

/// Initial MSB guess for magnitude `a > 0`: `ceil(log2(a))`.
fn msb_candidate(a: f64) -> i32 {
    debug_assert!(a > 0.0);
    a.log2().ceil() as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::{OverflowMode, RoundingMode, Signedness};

    fn t(n: i32, f: i32, o: OverflowMode, r: RoundingMode) -> DType {
        DType::new("t", n, f, Signedness::TwosComplement, o, r).unwrap()
    }

    #[test]
    fn rounding_round_half_up() {
        let ty = t(8, 3, OverflowMode::Saturate, RoundingMode::Round);
        // step = 0.125; 0.4375 scaled = 3.5 -> rounds to 4 (half up).
        let q = quantize(0.4375, &ty);
        assert_eq!(q.mantissa, 4);
        assert_eq!(q.value, 0.5);
        // -0.4375 scaled = -3.5 -> floor(-3.0) = -3 (half-up toward +inf).
        let q = quantize(-0.4375, &ty);
        assert_eq!(q.mantissa, -3);
    }

    #[test]
    fn rounding_floor_truncates_down() {
        let ty = t(8, 3, OverflowMode::Saturate, RoundingMode::Floor);
        assert_eq!(quantize(0.49, &ty).mantissa, 3); // 3.92 -> 3
        assert_eq!(quantize(-0.49, &ty).mantissa, -4); // -3.92 -> -4
    }

    #[test]
    fn rounding_error_reported() {
        let ty = t(8, 3, OverflowMode::Saturate, RoundingMode::Floor);
        let q = quantize(0.49, &ty);
        assert!((q.rounding_error - (0.375 - 0.49)).abs() < 1e-15);
        assert!(!q.overflowed);
    }

    #[test]
    fn saturation_clamps_and_flags() {
        let ty = t(7, 5, OverflowMode::Saturate, RoundingMode::Round);
        let q = quantize(10.0, &ty);
        assert!(q.overflowed);
        assert_eq!(q.mantissa, 63);
        let q = quantize(-10.0, &ty);
        assert!(q.overflowed);
        assert_eq!(q.mantissa, -64);
    }

    #[test]
    fn error_mode_flags_and_saturates() {
        let ty = t(7, 5, OverflowMode::Error, RoundingMode::Round);
        let q = quantize(3.0, &ty);
        assert!(q.overflowed);
        assert_eq!(q.mantissa, 63);
        assert!(q.into_checked(&ty).is_err());
        let q = quantize(0.5, &ty);
        assert_eq!(q.into_checked(&ty).unwrap(), 0.5);
    }

    #[test]
    fn wrap_mode_two_complement() {
        // n=4, f=0: range [-8, 7], modulus 16.
        let ty = t(4, 0, OverflowMode::Wrap, RoundingMode::Round);
        assert_eq!(quantize(8.0, &ty).mantissa, -8);
        assert_eq!(quantize(9.0, &ty).mantissa, -7);
        assert_eq!(quantize(-9.0, &ty).mantissa, 7);
        assert_eq!(quantize(16.0, &ty).mantissa, 0);
        assert_eq!(quantize(23.0, &ty).mantissa, 7);
        assert!(quantize(8.0, &ty).overflowed);
        assert!(!quantize(7.0, &ty).overflowed);
    }

    #[test]
    fn wrap_mode_unsigned() {
        let ty = DType::new(
            "u",
            4,
            0,
            Signedness::Unsigned,
            OverflowMode::Wrap,
            RoundingMode::Floor,
        )
        .unwrap();
        assert_eq!(quantize(16.0, &ty).mantissa, 0);
        assert_eq!(quantize(17.0, &ty).mantissa, 1);
        assert_eq!(quantize(-1.0, &ty).mantissa, 15);
    }

    #[test]
    fn exact_values_pass_through() {
        let ty = t(7, 5, OverflowMode::Error, RoundingMode::Round);
        for m in -64..=63i64 {
            let x = m as f64 / 32.0;
            let q = quantize(x, &ty);
            assert_eq!(q.mantissa, m);
            assert_eq!(q.value, x);
            assert!(!q.overflowed);
            assert_eq!(q.rounding_error, 0.0);
        }
    }

    #[test]
    fn non_finite_inputs() {
        let ty = t(7, 5, OverflowMode::Saturate, RoundingMode::Round);
        let q = quantize(f64::NAN, &ty);
        assert!(q.overflowed);
        assert_eq!(q.mantissa, 0);
        let q = quantize(f64::INFINITY, &ty);
        assert_eq!(q.mantissa, 63);
        let q = quantize(f64::NEG_INFINITY, &ty);
        assert_eq!(q.mantissa, -64);
    }

    #[test]
    fn huge_magnitude_wrap_falls_back_to_clamp() {
        let ty = t(8, -200, OverflowMode::Wrap, RoundingMode::Round);
        let q = quantize(f64::MAX, &ty);
        assert!(q.overflowed);
        assert!(q.mantissa == ty.max_mantissa() || q.mantissa == ty.min_mantissa());
    }

    #[test]
    fn msb_for_range_tc_cases() {
        use Signedness::TwosComplement as Tc;
        assert_eq!(msb_for_range(-1.0, 0.999, Tc), Some(0));
        assert_eq!(msb_for_range(-1.0, 1.0, Tc), Some(1)); // max == 2^0 not allowed
        assert_eq!(msb_for_range(-2.0, 0.0, Tc), Some(1));
        assert_eq!(msb_for_range(-0.2, 0.2, Tc), Some(-2));
        assert_eq!(msb_for_range(-0.11, 0.11, Tc), Some(-3));
        assert_eq!(msb_for_range(0.0, 3.3, Tc), Some(2));
        assert_eq!(msb_for_range(-100.0, 7.0, Tc), Some(7));
    }

    #[test]
    fn msb_for_range_unsigned_cases() {
        use Signedness::Unsigned as Ns;
        assert_eq!(msb_for_range(0.0, 0.5, Ns), Some(-1)); // 0.5 < 2^0
        assert_eq!(msb_for_range(0.0, 1.0, Ns), Some(0));
        assert_eq!(msb_for_range(0.0, 3.9, Ns), Some(1));
        assert_eq!(msb_for_range(0.0, 4.0, Ns), Some(2));
        // negative min falls back to tc answer
        assert_eq!(
            msb_for_range(-1.0, 4.0, Ns),
            msb_for_range(-1.0, 4.0, Signedness::TwosComplement)
        );
    }

    #[test]
    fn msb_for_range_degenerate() {
        use Signedness::TwosComplement as Tc;
        assert_eq!(msb_for_range(0.0, 0.0, Tc), None);
        assert_eq!(msb_for_range(1.0, 0.0, Tc), None);
        assert_eq!(msb_for_range(f64::NEG_INFINITY, 1.0, Tc), None);
        assert_eq!(msb_for_range(0.0, f64::NAN, Tc), None);
    }

    #[test]
    fn msb_covers_range_invariant() {
        // The decided MSB must produce a dtype whose range covers [min,max].
        let cases = [
            (-1.5, 1.5),
            (-0.001, 0.002),
            (-1024.0, 3.0),
            (0.25, 0.26),
            (-0.5, 0.0),
        ];
        for (lo, hi) in cases {
            let m = msb_for_range(lo, hi, Signedness::TwosComplement).unwrap();
            let pow = (m as f64).exp2();
            assert!(-pow <= lo && hi < pow, "msb {m} fails for [{lo},{hi}]");
            // And m-1 must NOT cover (minimality).
            let pow1 = ((m - 1) as f64).exp2();
            assert!(
                !(-pow1 <= lo && hi < pow1),
                "msb {m} not minimal for [{lo},{hi}]"
            );
        }
    }
}
