//! Running statistics for range and error monitoring.
//!
//! [`RangeStats`] backs the paper's *statistic-based* MSB estimation
//! ("keeping track of the signal range during simulation", Section 4.1).
//! [`ErrorStats`] backs the LSB-side *error monitoring* (Section 4.2): the
//! mean error `m̄`, standard deviation `σ` and maximum absolute error
//! `|e|max` of the float-vs-fixed difference, accumulated with Welford's
//! numerically stable online algorithm.

use std::fmt;

/// Minimum/maximum/count of observed signal values.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RangeStats {
    min: f64,
    max: f64,
    count: u64,
}

impl RangeStats {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        RangeStats {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            count: 0,
        }
    }

    /// Records one observation. NaN observations are counted but do not
    /// move the extremes.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x.is_nan() {
            return;
        }
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations (assignments / accesses).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether any non-NaN value was recorded.
    pub fn is_empty(&self) -> bool {
        self.min > self.max
    }

    /// Smallest observed value.
    ///
    /// # Panics
    ///
    /// Panics when no value was recorded; use [`RangeStats::try_min`] for a
    /// non-panicking variant.
    pub fn min(&self) -> f64 {
        self.try_min().expect("no values recorded")
    }

    /// Largest observed value.
    ///
    /// # Panics
    ///
    /// Panics when no value was recorded; use [`RangeStats::try_max`] for a
    /// non-panicking variant.
    pub fn max(&self) -> f64 {
        self.try_max().expect("no values recorded")
    }

    /// Smallest observed value, or `None` if nothing was recorded.
    pub fn try_min(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest observed value, or `None` if nothing was recorded.
    pub fn try_max(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.max)
        }
    }

    /// The observed range as an interval, or `None` if nothing was recorded.
    pub fn interval(&self) -> Option<crate::Interval> {
        if self.is_empty() {
            None
        } else {
            Some(crate::Interval::new(self.min, self.max))
        }
    }

    /// Merges another recorder into this one.
    pub fn merge(&mut self, other: &RangeStats) {
        self.count += other.count;
        if !other.is_empty() {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Resets to the empty state.
    pub fn reset(&mut self) {
        *self = RangeStats::new();
    }

    /// Raw `(min, max, count)` fields for bit-exact serialization.
    ///
    /// An empty recorder reports `(+inf, -inf, 0)`. Pair with
    /// [`RangeStats::from_raw`]; the round-trip is the identity.
    pub fn to_raw(&self) -> (f64, f64, u64) {
        (self.min, self.max, self.count)
    }

    /// Rebuilds a recorder from raw fields produced by
    /// [`RangeStats::to_raw`]. No validation is performed: this exists so
    /// checkpoint files can restore monitor state bit-identically.
    pub fn from_raw(min: f64, max: f64, count: u64) -> Self {
        RangeStats { min, max, count }
    }
}

impl fmt::Display for RangeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "range: (none, {} samples)", self.count)
        } else {
            write!(
                f,
                "range: [{}, {}] over {} samples",
                self.min, self.max, self.count
            )
        }
    }
}

/// Mean / standard deviation / maximum-absolute statistics of an error
/// sequence, via Welford's online algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorStats {
    count: u64,
    mean: f64,
    m2: f64,
    max_abs: f64,
}

impl ErrorStats {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        ErrorStats::default()
    }

    /// Records one error observation. NaN observations are ignored (they
    /// arise only from NaN quantization inputs, which are flagged
    /// separately as overflows).
    pub fn record(&mut self, e: f64) {
        if e.is_nan() {
            return;
        }
        self.count += 1;
        let delta = e - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (e - self.mean);
        let a = e.abs();
        if a > self.max_abs {
            self.max_abs = a;
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean error `m̄` (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation `σ` (0 when fewer than 2 samples).
    pub fn std(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0).sqrt()
        }
    }

    /// Population variance `σ²`.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0)
        }
    }

    /// Maximum absolute error `|e|max`.
    pub fn max_abs(&self) -> f64 {
        self.max_abs
    }

    /// Root-mean-square of the error, `sqrt(mean² + σ²)` — the quantity
    /// that actually drives SQNR.
    pub fn rms(&self) -> f64 {
        (self.mean * self.mean + self.variance()).sqrt()
    }

    /// Whether every recorded error was exactly zero (an exactly
    /// representable signal — e.g. the ±1 slicer output).
    pub fn is_exact(&self) -> bool {
        self.max_abs == 0.0
    }

    /// Merges another recorder into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &ErrorStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.count += other.count;
        self.max_abs = self.max_abs.max(other.max_abs);
    }

    /// Resets to the empty state.
    pub fn reset(&mut self) {
        *self = ErrorStats::new();
    }

    /// Raw `(count, mean, m2, max_abs)` Welford accumulator fields for
    /// bit-exact serialization. Pair with [`ErrorStats::from_raw`]; the
    /// round-trip is the identity.
    pub fn to_raw(&self) -> (u64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.max_abs)
    }

    /// Rebuilds a recorder from raw fields produced by
    /// [`ErrorStats::to_raw`]. No validation is performed: this exists so
    /// checkpoint files can restore monitor state bit-identically.
    pub fn from_raw(count: u64, mean: f64, m2: f64, max_abs: f64) -> Self {
        ErrorStats {
            count,
            mean,
            m2,
            max_abs,
        }
    }
}

impl fmt::Display for ErrorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "err: max|e|={:.3e} mean={:.3e} std={:.3e} ({} samples)",
            self.max_abs,
            self.mean,
            self.std(),
            self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_records_extremes() {
        let mut r = RangeStats::new();
        assert!(r.is_empty());
        assert_eq!(r.try_min(), None);
        for x in [0.5, -1.25, 3.0, 2.9] {
            r.record(x);
        }
        assert_eq!(r.count(), 4);
        assert_eq!(r.min(), -1.25);
        assert_eq!(r.max(), 3.0);
        assert_eq!(r.interval().unwrap(), crate::Interval::new(-1.25, 3.0));
    }

    #[test]
    fn range_ignores_nan_for_extremes() {
        let mut r = RangeStats::new();
        r.record(1.0);
        r.record(f64::NAN);
        assert_eq!(r.count(), 2);
        assert_eq!(r.min(), 1.0);
        assert_eq!(r.max(), 1.0);
    }

    #[test]
    #[should_panic(expected = "no values recorded")]
    fn range_min_panics_when_empty() {
        let _ = RangeStats::new().min();
    }

    #[test]
    fn range_merge_and_reset() {
        let mut a = RangeStats::new();
        a.record(1.0);
        let mut b = RangeStats::new();
        b.record(-5.0);
        b.record(2.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), -5.0);
        assert_eq!(a.max(), 2.0);
        a.merge(&RangeStats::new());
        assert_eq!(a.count(), 3);
        a.reset();
        assert!(a.is_empty());
        assert_eq!(a.count(), 0);
    }

    #[test]
    fn error_stats_known_sequence() {
        let mut e = ErrorStats::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            e.record(x);
        }
        assert_eq!(e.count(), 4);
        assert!((e.mean() - 2.5).abs() < 1e-12);
        // population variance of 1,2,3,4 is 1.25
        assert!((e.variance() - 1.25).abs() < 1e-12);
        assert!((e.std() - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(e.max_abs(), 4.0);
        assert!((e.rms() - (2.5f64 * 2.5 + 1.25).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn error_stats_zero_and_single() {
        let mut e = ErrorStats::new();
        assert_eq!(e.std(), 0.0);
        assert_eq!(e.mean(), 0.0);
        assert!(e.is_exact());
        e.record(0.5);
        assert_eq!(e.std(), 0.0); // < 2 samples
        assert_eq!(e.mean(), 0.5);
        assert!(!e.is_exact());
    }

    #[test]
    fn error_stats_exactness_tracks_zero_errors() {
        let mut e = ErrorStats::new();
        for _ in 0..100 {
            e.record(0.0);
        }
        assert!(e.is_exact());
        assert_eq!(e.std(), 0.0);
    }

    #[test]
    fn error_stats_nan_ignored() {
        let mut e = ErrorStats::new();
        e.record(1.0);
        e.record(f64::NAN);
        assert_eq!(e.count(), 1);
        assert_eq!(e.mean(), 1.0);
    }

    #[test]
    fn welford_matches_two_pass_reference() {
        // Deterministic pseudo-random-ish sequence.
        let xs: Vec<f64> = (0..1000)
            .map(|i| ((i * 2654435761u64 % 1000) as f64 / 500.0 - 1.0) * 0.01)
            .collect();
        let mut e = ErrorStats::new();
        for &x in &xs {
            e.record(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((e.mean() - mean).abs() < 1e-12);
        assert!((e.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin()).collect();
        let mut whole = ErrorStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = ErrorStats::new();
        let mut b = ErrorStats::new();
        for &x in &xs[..200] {
            a.record(x);
        }
        for &x in &xs[200..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.std() - whole.std()).abs() < 1e-10);
        assert_eq!(a.max_abs(), whole.max_abs());

        // Merging into empty copies; merging empty is a no-op.
        let mut empty = ErrorStats::new();
        empty.merge(&whole);
        assert_eq!(empty.count(), whole.count());
        whole.merge(&ErrorStats::new());
        assert_eq!(whole.count(), 500);
    }

    #[test]
    fn display_formats() {
        let mut r = RangeStats::new();
        assert!(r.to_string().contains("none"));
        r.record(1.0);
        assert!(r.to_string().contains("[1, 1]"));
        let mut e = ErrorStats::new();
        e.record(0.25);
        assert!(e.to_string().contains("samples"));
    }

    #[test]
    fn raw_round_trip_is_identity() {
        let mut r = RangeStats::new();
        for x in [0.1, -3.5, f64::NAN, 7.25] {
            r.record(x);
        }
        let (min, max, count) = r.to_raw();
        assert_eq!(RangeStats::from_raw(min, max, count), r);
        // Empty recorder keeps its inverted-infinity sentinel through the trip.
        let (min, max, count) = RangeStats::new().to_raw();
        assert_eq!(min, f64::INFINITY);
        assert_eq!(max, f64::NEG_INFINITY);
        assert!(RangeStats::from_raw(min, max, count).is_empty());

        let mut e = ErrorStats::new();
        for x in [0.125, -0.5, 0.33] {
            e.record(x);
        }
        let (count, mean, m2, max_abs) = e.to_raw();
        assert_eq!(ErrorStats::from_raw(count, mean, m2, max_abs), e);
    }

    #[test]
    fn uniform_error_std_matches_theory() {
        // U(-q/2, q/2) has std q/sqrt(12); check the recorder converges.
        let q = 0.03125; // 2^-5
        let n = 20000;
        let mut e = ErrorStats::new();
        for i in 0..n {
            // low-discrepancy fill of the interval
            let u = (i as f64 + 0.5) / n as f64;
            e.record((u - 0.5) * q);
        }
        let expected = q / 12f64.sqrt();
        assert!((e.std() - expected).abs() / expected < 1e-3);
        assert!(e.mean().abs() < 1e-12);
    }
}
