//! Fixed-point type algebra for DSP ASIC fixed-point refinement.
//!
//! This crate is the numeric substrate of the `fixref` workspace, a
//! reproduction of *"A Methodology and Design Environment for DSP ASIC
//! Fixed Point Refinement"* (Cmar, Rijnders, Schaumont, Vernalde, Bolsens —
//! IMEC, DATE 1999). It provides:
//!
//! * [`DType`] — the paper's `dtype(name, n, f, vtype, msbspec, lsbspec)`
//!   fixed-point type descriptor: total wordlength, fractional bits,
//!   two's-complement/unsigned representation, overflow mode
//!   (wrap-around / saturation / error) and rounding mode (round-off /
//!   floor);
//! * [`quantize`](quantize::quantize) — the assignment-time quantization
//!   kernel used by the simulation engine;
//! * [`Fixed`] — a bit-true integer-mantissa value type used
//!   to cross-check the floating-point quantization model and by the VHDL
//!   back-end;
//! * [`Interval`] — the interval ("range") arithmetic
//!   behind the paper's quasi-analytical and analytical MSB estimation;
//! * [`RangeStats`] / [`ErrorStats`] —
//!   the running statistics gathered by range and error monitoring;
//! * [`sqnr`] — signal-to-quantization-noise-ratio meters used by the
//!   evaluation.
//!
//! # Position conventions
//!
//! Bit positions are absolute with respect to the binary point
//! (paper, Section 2.1): the LSB position is `-f` and the MSB position is
//! `n - f - 1`. For a two's-complement type the MSB carries the (negative)
//! sign weight `-2^msb` and the representable range is
//! `[-2^msb, 2^msb - 2^lsb]`; for an unsigned type it is
//! `[0, 2^(msb+1) - 2^lsb]`.
//!
//! # Example
//!
//! ```
//! use fixref_fixed::{DType, Signedness, OverflowMode, RoundingMode};
//!
//! # fn main() -> Result<(), fixref_fixed::DTypeError> {
//! // The paper's input type <7,5,tc>: 7 bits total, 5 fractional.
//! let t = DType::new("T_input", 7, 5, Signedness::TwosComplement,
//!                    OverflowMode::Saturate, RoundingMode::Round)?;
//! assert_eq!(t.msb(), 1);
//! assert_eq!(t.lsb(), -5);
//! let q = t.quantize(0.71);
//! assert!((q.value - 0.71875).abs() < 1e-12); // 23/32
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affine;
pub mod dtype;
pub mod error;
pub mod fixed;
pub mod interval;
pub mod quantize;
pub mod rng;
pub mod sqnr;
pub mod stats;

pub use affine::{AffineForm, NoiseSymbols};
pub use dtype::{DType, DTypeBuilder, OverflowMode, RoundingMode, Signedness};
pub use error::{DTypeError, FixError, OverflowError, ParseDTypeError};
pub use fixed::Fixed;
pub use interval::Interval;
pub use quantize::{msb_for_range, quantize, Quantized};
pub use rng::Rng64;
pub use sqnr::{db10, db20, SqnrMeter};
pub use stats::{ErrorStats, RangeStats};
