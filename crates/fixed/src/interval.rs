//! Interval (range) arithmetic.
//!
//! This is the machinery behind the paper's *quasi-analytical* MSB
//! estimation (Section 4.1): every overloaded arithmetic operator also
//! propagates a worst-case value range, and the propagation table of the
//! paper —
//!
//! ```text
//! a + b   min = a.min + b.min
//! a - b   min = a.min - b.max
//! a * b   min = MIN(a.min*b.min, a.min*b.max, a.max*b.min, a.max*b.max)
//! c = a   c.min = MIN(c.min, a.min)
//! ```
//!
//! — is exactly [`Interval`]'s `Add`/`Sub`/`Mul` impls plus
//! [`Interval::union`]. The same arithmetic also drives the *analytical*
//! fixpoint propagation over the extracted signal-flow graph.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::dtype::DType;
use crate::error::FixError;

/// A closed interval `[lo, hi]` over `f64`.
///
/// The empty interval is represented by [`Interval::EMPTY`]
/// (`lo = +inf, hi = -inf`), which is the identity for [`Interval::union`].
/// Unbounded intervals (infinite endpoints) arise naturally from range
/// explosion on feedback paths and are detected with
/// [`Interval::is_exploded`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// The empty interval: union identity, contains nothing.
    pub const EMPTY: Interval = Interval {
        lo: f64::INFINITY,
        hi: f64::NEG_INFINITY,
    };

    /// The full real line (used as "unknown range").
    pub const UNBOUNDED: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` (use [`Interval::EMPTY`] for the empty interval)
    /// or either bound is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(!lo.is_nan() && !hi.is_nan(), "interval bound is NaN");
        assert!(
            lo <= hi,
            "interval lower bound {lo} exceeds upper bound {hi}"
        );
        Interval { lo, hi }
    }

    /// Fallible counterpart of [`Interval::new`] for bounds that arrive
    /// from user input (annotation files, CLI arguments): returns
    /// [`FixError::InvalidRange`] instead of panicking on inverted or NaN
    /// bounds.
    ///
    /// # Errors
    ///
    /// [`FixError::InvalidRange`] when `lo > hi` or either bound is NaN.
    pub fn try_new(lo: f64, hi: f64) -> Result<Self, FixError> {
        if lo.is_nan() || hi.is_nan() || lo > hi {
            Err(FixError::InvalidRange { lo, hi })
        } else {
            Ok(Interval { lo, hi })
        }
    }

    /// The degenerate interval `[x, x]`.
    pub fn point(x: f64) -> Self {
        Interval::new(x, x)
    }

    /// The symmetric interval `[-a, a]`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is negative or NaN.
    pub fn symmetric(a: f64) -> Self {
        Interval::new(-a, a)
    }

    /// The representable range of a fixed-point type.
    pub fn from_dtype(dtype: &DType) -> Self {
        Interval::new(dtype.min_value(), dtype.max_value())
    }

    /// Whether the interval contains no points.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Whether either bound is infinite — the "explosion of the MSB" the
    /// paper warns about for feedback signals, in its limit form.
    pub fn is_exploded(&self) -> bool {
        !self.is_empty() && (self.lo.is_infinite() || self.hi.is_infinite())
    }

    /// Whether both bounds are finite and the interval is non-empty.
    pub fn is_bounded(&self) -> bool {
        !self.is_empty() && self.lo.is_finite() && self.hi.is_finite()
    }

    /// `hi - lo`, or 0 for the empty interval.
    pub fn width(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.hi - self.lo
        }
    }

    /// The largest absolute value in the interval (0 for empty).
    pub fn max_abs(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.lo.abs().max(self.hi.abs())
        }
    }

    /// Whether `x` lies in the interval.
    pub fn contains(&self, x: f64) -> bool {
        !self.is_empty() && self.lo <= x && x <= self.hi
    }

    /// Whether `other` lies entirely within `self`.
    pub fn contains_interval(&self, other: &Interval) -> bool {
        other.is_empty() || (!self.is_empty() && self.lo <= other.lo && other.hi <= self.hi)
    }

    /// Smallest interval covering both operands (the paper's
    /// `c.min = MIN(c.min, a.min)` assignment rule, on both ends).
    pub fn union(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Largest interval covered by both operands (possibly empty).
    pub fn intersect(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo > hi {
            Interval::EMPTY
        } else {
            Interval { lo, hi }
        }
    }

    /// Extends the interval to include `x`.
    pub fn include(&self, x: f64) -> Interval {
        self.union(&Interval::point(x))
    }

    /// Interval absolute value.
    pub fn abs(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        if self.lo >= 0.0 {
            *self
        } else if self.hi <= 0.0 {
            Interval::new(-self.hi, -self.lo)
        } else {
            Interval::new(0.0, self.max_abs())
        }
    }

    /// Elementwise minimum: `[min(a.lo,b.lo), min(a.hi,b.hi)]`.
    pub fn min(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new(self.lo.min(other.lo), self.hi.min(other.hi))
    }

    /// Elementwise maximum: `[max(a.lo,b.lo), max(a.hi,b.hi)]`.
    pub fn max(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new(self.lo.max(other.lo), self.hi.max(other.hi))
    }

    /// Multiplication by the exact power of two `2^k` (hardware shift).
    pub fn shift(&self, k: i32) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        let s = (k as f64).exp2();
        Interval::new(self.lo * s, self.hi * s)
    }

    /// Clamps the interval into `[lo, hi]` — the effect of a saturating
    /// assignment on the propagated range. Unlike [`Interval::intersect`],
    /// a range lying entirely outside `bounds` collapses onto the nearer
    /// boundary (saturation maps every out-of-range value to the rail),
    /// never to the empty interval.
    pub fn clamp_to(&self, bounds: &Interval) -> Interval {
        if self.is_empty() || bounds.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new(
            self.lo.clamp(bounds.lo, bounds.hi),
            self.hi.clamp(bounds.lo, bounds.hi),
        )
    }
}

impl Default for Interval {
    fn default() -> Self {
        Interval::EMPTY
    }
}

impl From<f64> for Interval {
    fn from(x: f64) -> Self {
        Interval::point(x)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            f.write_str("[]")
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

/// `∞ − ∞` (opposing infinite bounds, which arise when exploded feedback
/// ranges meet in `Add`/`Sub`) yields NaN under IEEE-754. A NaN bound is
/// poison: it later panics in `Interval::new` via `abs`/`min`/`max`. Map
/// each NaN bound to the conservative infinity of its side instead — the
/// result stays "exploded", which is what range propagation reports anyway.
fn denan(lo: f64, hi: f64) -> Interval {
    Interval {
        lo: if lo.is_nan() { f64::NEG_INFINITY } else { lo },
        hi: if hi.is_nan() { f64::INFINITY } else { hi },
    }
}

impl Add for Interval {
    type Output = Interval;
    fn add(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::EMPTY;
        }
        denan(self.lo + rhs.lo, self.hi + rhs.hi)
    }
}

impl Sub for Interval {
    type Output = Interval;
    fn sub(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::EMPTY;
        }
        denan(self.lo - rhs.hi, self.hi - rhs.lo)
    }
}

impl Mul for Interval {
    type Output = Interval;
    fn mul(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::EMPTY;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for a in [self.lo, self.hi] {
            for b in [rhs.lo, rhs.hi] {
                // 0 * inf produces NaN; treat as 0 (the finite factor wins).
                let p = a * b;
                let p = if p.is_nan() { 0.0 } else { p };
                lo = lo.min(p);
                hi = hi.max(p);
            }
        }
        Interval { lo, hi }
    }
}

impl Div for Interval {
    type Output = Interval;
    /// Interval division. A divisor interval containing zero yields
    /// [`Interval::UNBOUNDED`] — range propagation then reports explosion
    /// rather than silently producing a wrong bound.
    fn div(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::EMPTY;
        }
        if rhs.contains(0.0) {
            return Interval::UNBOUNDED;
        }
        let inv = Interval::new(
            (1.0 / rhs.hi).min(1.0 / rhs.lo),
            (1.0 / rhs.hi).max(1.0 / rhs.lo),
        );
        self * inv
    }
}

impl Neg for Interval {
    type Output = Interval;
    fn neg(self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        Interval {
            lo: -self.hi,
            hi: -self.lo,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let i = Interval::new(-1.5, 2.0);
        assert_eq!(i.lo, -1.5);
        assert_eq!(i.hi, 2.0);
        assert_eq!(i.width(), 3.5);
        assert_eq!(i.max_abs(), 2.0);
        assert!(i.contains(0.0));
        assert!(!i.contains(2.1));
        assert!(i.is_bounded());
        assert!(!i.is_exploded());
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn reversed_bounds_panic() {
        let _ = Interval::new(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_bound_panics() {
        let _ = Interval::new(f64::NAN, 0.0);
    }

    #[test]
    fn empty_interval_behaviour() {
        let e = Interval::EMPTY;
        assert!(e.is_empty());
        assert!(!e.contains(0.0));
        assert_eq!(e.width(), 0.0);
        assert_eq!(e.max_abs(), 0.0);
        assert_eq!(e.union(&Interval::point(3.0)), Interval::point(3.0));
        assert!((e + Interval::point(1.0)).is_empty());
        assert!((e * Interval::point(1.0)).is_empty());
        assert!((-e).is_empty());
        assert_eq!(Interval::default(), Interval::EMPTY);
    }

    #[test]
    fn union_and_intersect() {
        let a = Interval::new(-1.0, 1.0);
        let b = Interval::new(0.5, 3.0);
        assert_eq!(a.union(&b), Interval::new(-1.0, 3.0));
        assert_eq!(a.intersect(&b), Interval::new(0.5, 1.0));
        let c = Interval::new(5.0, 6.0);
        assert!(a.intersect(&c).is_empty());
        assert!(a.contains_interval(&Interval::new(-0.5, 0.5)));
        assert!(!a.contains_interval(&b));
        assert!(a.contains_interval(&Interval::EMPTY));
    }

    #[test]
    fn include_grows_monotonically() {
        let mut i = Interval::EMPTY;
        for x in [0.3, -1.2, 0.9, -1.2] {
            i = i.include(x);
            assert!(i.contains(x));
        }
        assert_eq!(i, Interval::new(-1.2, 0.9));
    }

    #[test]
    fn paper_propagation_table_add_sub() {
        let a = Interval::new(-1.0, 2.0);
        let b = Interval::new(-3.0, 0.5);
        assert_eq!(a + b, Interval::new(-4.0, 2.5));
        assert_eq!(a - b, Interval::new(-1.5, 5.0));
    }

    #[test]
    fn paper_propagation_table_mul() {
        let a = Interval::new(-1.0, 2.0);
        let b = Interval::new(-3.0, 0.5);
        // candidates: 3, -0.5, -6, 1 -> [-6, 3]
        assert_eq!(a * b, Interval::new(-6.0, 3.0));
        // sign-definite operands
        assert_eq!(
            Interval::new(2.0, 3.0) * Interval::new(4.0, 5.0),
            Interval::new(8.0, 15.0)
        );
        assert_eq!(
            Interval::new(-3.0, -2.0) * Interval::new(4.0, 5.0),
            Interval::new(-15.0, -8.0)
        );
    }

    #[test]
    fn mul_with_infinite_and_zero() {
        let z = Interval::point(0.0);
        let u = Interval::UNBOUNDED;
        // 0 * [-inf, inf] must not poison with NaN.
        let p = z * u;
        assert!(!p.lo.is_nan() && !p.hi.is_nan());
        assert!(p.contains(0.0));
    }

    #[test]
    fn division() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(2.0, 4.0);
        assert_eq!(a / b, Interval::new(0.25, 1.0));
        assert_eq!(a / Interval::new(-4.0, -2.0), Interval::new(-1.0, -0.25));
        assert_eq!(a / Interval::new(-1.0, 1.0), Interval::UNBOUNDED);
        assert!((a / Interval::new(-1.0, 1.0)).is_exploded());
    }

    #[test]
    fn neg_abs_min_max() {
        let a = Interval::new(-1.0, 3.0);
        assert_eq!(-a, Interval::new(-3.0, 1.0));
        assert_eq!(a.abs(), Interval::new(0.0, 3.0));
        assert_eq!(Interval::new(-4.0, -1.0).abs(), Interval::new(1.0, 4.0));
        assert_eq!(Interval::new(1.0, 4.0).abs(), Interval::new(1.0, 4.0));
        let b = Interval::new(0.0, 2.0);
        assert_eq!(a.min(&b), Interval::new(-1.0, 2.0));
        assert_eq!(a.max(&b), Interval::new(0.0, 3.0));
    }

    #[test]
    fn shift_scales_by_power_of_two() {
        let a = Interval::new(-1.0, 3.0);
        assert_eq!(a.shift(2), Interval::new(-4.0, 12.0));
        assert_eq!(a.shift(-1), Interval::new(-0.5, 1.5));
        assert_eq!(a.shift(0), a);
    }

    #[test]
    fn from_dtype_matches_type_range() {
        let t = DType::tc("t", 7, 5).unwrap();
        let i = Interval::from_dtype(&t);
        assert_eq!(i.lo, t.min_value());
        assert_eq!(i.hi, t.max_value());
    }

    #[test]
    fn clamp_to_models_saturation() {
        let grown = Interval::new(-10.0, 40.0);
        let sat = grown.clamp_to(&Interval::new(-0.2, 0.2));
        assert_eq!(sat, Interval::new(-0.2, 0.2));
        // Clamping an already-tight range is a no-op.
        let tight = Interval::new(-0.1, 0.05);
        assert_eq!(tight.clamp_to(&Interval::new(-0.2, 0.2)), tight);
        // A range entirely outside the bounds saturates onto the rail —
        // it must NOT vanish into the empty interval like intersect.
        let outside = Interval::new(5.0, 8.0);
        let railed = outside.clamp_to(&Interval::new(-0.2, 0.2));
        assert_eq!(railed, Interval::point(0.2));
        assert!(outside.intersect(&Interval::new(-0.2, 0.2)).is_empty());
        // Empty operands stay empty.
        assert!(Interval::EMPTY
            .clamp_to(&Interval::new(-1.0, 1.0))
            .is_empty());
        assert!(outside.clamp_to(&Interval::EMPTY).is_empty());
    }

    #[test]
    fn try_new_rejects_bad_bounds_without_panicking() {
        assert_eq!(Interval::try_new(-1.0, 2.0), Ok(Interval::new(-1.0, 2.0)));
        assert_eq!(
            Interval::try_new(1.0, 0.0),
            Err(FixError::InvalidRange { lo: 1.0, hi: 0.0 })
        );
        assert!(Interval::try_new(f64::NAN, 0.0).is_err());
        assert!(Interval::try_new(0.0, f64::NAN).is_err());
        // Infinite (exploded) bounds are legal — explosion is a state the
        // flow handles, not an input error.
        assert!(Interval::try_new(f64::NEG_INFINITY, f64::INFINITY).is_ok());
    }

    #[test]
    fn opposing_infinities_explode_instead_of_poisoning() {
        // Regression: UNBOUNDED - UNBOUNDED used to produce [NaN, NaN],
        // which then panicked inside abs()/min()/max() via Interval::new.
        let u = Interval::UNBOUNDED;
        let d = u - u;
        assert!(!d.lo.is_nan() && !d.hi.is_nan());
        assert!(d.is_exploded());
        let s = u + u;
        assert!(!s.lo.is_nan() && !s.hi.is_nan());
        // The previously-panicking downstream operations now stay total.
        assert!(d.abs().hi.is_infinite());
        assert!(!d.min(&Interval::point(1.0)).lo.is_nan());
        assert!(!d.max(&Interval::point(1.0)).hi.is_nan());
        // Half-exploded operands too: [0, inf] - [0, inf] hits inf - inf
        // on both ends.
        let h = Interval::new(0.0, f64::INFINITY);
        let hd = h - h;
        assert!(!hd.lo.is_nan() && !hd.hi.is_nan());
        assert!(hd.contains(0.0));
    }

    #[test]
    fn explosion_detection() {
        assert!(Interval::UNBOUNDED.is_exploded());
        assert!(Interval::new(0.0, f64::INFINITY).is_exploded());
        assert!(!Interval::new(-1e300, 1e300).is_exploded());
        assert!(!Interval::EMPTY.is_exploded());
    }

    #[test]
    fn display() {
        assert_eq!(Interval::new(-1.0, 2.5).to_string(), "[-1, 2.5]");
        assert_eq!(Interval::EMPTY.to_string(), "[]");
    }

    #[test]
    fn feedback_accumulation_explodes_monotonically() {
        // Model of the paper's accumulator explosion: v = v + d*c iterated.
        let d = Interval::new(-2.0, 2.0);
        let c = Interval::new(-0.11, 1.2);
        let mut v = Interval::point(0.0);
        let mut prev_width = 0.0;
        for _ in 0..10 {
            v = v.union(&(v + d * c));
            assert!(v.width() >= prev_width);
            prev_width = v.width();
        }
        assert!(v.width() > 20.0, "accumulator range must keep growing");
    }
}
