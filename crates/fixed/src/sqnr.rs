//! Signal-to-quantization-noise-ratio measurement.
//!
//! The paper validates the LSB refinement by observing the SQNR of the
//! equalizer output "before the LSB refinement (with quantizing the input
//! signal only) … 39.8 dB, and after the LSB refinement (all signals
//! quantized) 39.1 dB" (Section 6). [`SqnrMeter`] accumulates signal and
//! noise power from paired (reference, quantized) samples and reports that
//! ratio in dB.

use std::fmt;

/// `10·log10(x)` — power ratio to decibels.
///
/// Returns `-inf` for `x <= 0`.
pub fn db10(x: f64) -> f64 {
    if x > 0.0 {
        10.0 * x.log10()
    } else {
        f64::NEG_INFINITY
    }
}

/// `20·log10(x)` — amplitude ratio to decibels.
///
/// Returns `-inf` for `x <= 0`.
pub fn db20(x: f64) -> f64 {
    if x > 0.0 {
        20.0 * x.log10()
    } else {
        f64::NEG_INFINITY
    }
}

/// Accumulates SQNR from paired reference/test samples.
///
/// SQNR = `10·log10( Σ ref² / Σ (ref − test)² )`.
///
/// # Example
///
/// ```
/// use fixref_fixed::{DType, SqnrMeter};
///
/// # fn main() -> Result<(), fixref_fixed::DTypeError> {
/// let t = DType::tc("t", 12, 10)?;
/// let mut m = SqnrMeter::new();
/// for i in 0..1000 {
///     let x = (i as f64 * 0.1).sin();
///     m.record(x, t.quantize(x).value);
/// }
/// // 10 fractional bits gives roughly 6.02*10 + 10.8 - 3 dB for a sine.
/// assert!(m.sqnr_db() > 55.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SqnrMeter {
    signal_power: f64,
    noise_power: f64,
    count: u64,
}

impl SqnrMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        SqnrMeter::default()
    }

    /// Records one paired sample: `reference` is the floating-point (golden)
    /// value, `test` the quantized value.
    pub fn record(&mut self, reference: f64, test: f64) {
        self.count += 1;
        self.signal_power += reference * reference;
        let e = reference - test;
        self.noise_power += e * e;
    }

    /// Number of recorded pairs.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean signal power.
    pub fn signal_power(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.signal_power / self.count as f64
        }
    }

    /// Mean noise power.
    pub fn noise_power(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.noise_power / self.count as f64
        }
    }

    /// The SQNR in dB. Returns `+inf` when no noise was observed and
    /// `-inf` when no signal was observed.
    pub fn sqnr_db(&self) -> f64 {
        if self.noise_power == 0.0 {
            if self.signal_power == 0.0 {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            }
        } else {
            db10(self.signal_power / self.noise_power)
        }
    }

    /// Merges another meter into this one.
    pub fn merge(&mut self, other: &SqnrMeter) {
        self.signal_power += other.signal_power;
        self.noise_power += other.noise_power;
        self.count += other.count;
    }

    /// Resets to the empty state.
    pub fn reset(&mut self) {
        *self = SqnrMeter::new();
    }
}

impl fmt::Display for SqnrMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SQNR = {:.1} dB ({} samples)",
            self.sqnr_db(),
            self.count
        )
    }
}

/// Theoretical SQNR in dB of rounding a full-scale uniform signal to `f`
/// fractional bits with signal standard deviation `sigma_signal`:
/// `10·log10(σ_s² / (q²/12))` with `q = 2^-f`.
///
/// Useful as a sanity anchor for the measured values.
pub fn uniform_quantization_sqnr_db(sigma_signal: f64, f: i32) -> f64 {
    let q = (-(f as f64)).exp2();
    db10(sigma_signal * sigma_signal / (q * q / 12.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DType;

    #[test]
    fn db_helpers() {
        assert!((db10(100.0) - 20.0).abs() < 1e-12);
        assert!((db20(10.0) - 20.0).abs() < 1e-12);
        assert_eq!(db10(0.0), f64::NEG_INFINITY);
        assert_eq!(db20(-1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn empty_and_degenerate_meters() {
        let m = SqnrMeter::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.sqnr_db(), f64::NEG_INFINITY);
        assert_eq!(m.signal_power(), 0.0);

        let mut m = SqnrMeter::new();
        m.record(1.0, 1.0);
        assert_eq!(m.sqnr_db(), f64::INFINITY); // no noise
    }

    #[test]
    fn known_ratio() {
        let mut m = SqnrMeter::new();
        // signal power 1, noise power 0.01 -> 20 dB
        for _ in 0..100 {
            m.record(1.0, 0.9);
        }
        assert!((m.sqnr_db() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn quantization_to_f_bits_tracks_6db_per_bit() {
        // Quantizing a ramp to f and f+1 fractional bits should differ by
        // about 6 dB.
        let measure = |f: i32| {
            let t = DType::tc("t", 16, f).unwrap();
            let mut m = SqnrMeter::new();
            for i in 0..4096 {
                let x = (i as f64 / 4096.0) * 1.9 - 0.95;
                m.record(x, t.quantize(x).value);
            }
            m.sqnr_db()
        };
        let a = measure(6);
        let b = measure(7);
        assert!(
            (b - a - 6.02).abs() < 1.0,
            "expected ~6 dB/bit, got {a} -> {b}"
        );
    }

    #[test]
    fn theory_anchor_close_to_measurement() {
        let f = 8;
        let t = DType::tc("t", 16, f).unwrap();
        let mut m = SqnrMeter::new();
        let mut acc = 0.0;
        let n = 8192;
        for i in 0..n {
            let x = (i as f64 / n as f64) * 1.8 - 0.9;
            acc += x * x;
            m.record(x, t.quantize(x).value);
        }
        let sigma = (acc / n as f64).sqrt();
        let theory = uniform_quantization_sqnr_db(sigma, f);
        assert!(
            (m.sqnr_db() - theory).abs() < 1.5,
            "measured {} vs theory {}",
            m.sqnr_db(),
            theory
        );
    }

    #[test]
    fn merge_equals_combined() {
        let mut a = SqnrMeter::new();
        let mut b = SqnrMeter::new();
        let mut whole = SqnrMeter::new();
        for i in 0..200 {
            let x = (i as f64 * 0.3).cos();
            let y = x + 0.001 * ((i % 7) as f64 - 3.0);
            whole.record(x, y);
            if i < 100 {
                a.record(x, y);
            } else {
                b.record(x, y);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.sqnr_db() - whole.sqnr_db()).abs() < 1e-12);
        a.reset();
        assert_eq!(a.count(), 0);
    }

    #[test]
    fn display_contains_db() {
        let mut m = SqnrMeter::new();
        m.record(1.0, 0.99);
        assert!(m.to_string().contains("dB"));
    }
}
