//! Fixed-point type descriptors.
//!
//! [`DType`] mirrors the paper's `dtype(name, n, f, vtype, msbspec,
//! lsbspec)` constructor: a name, total wordlength `n`, fractional bit count
//! `f`, signedness, overflow behaviour and rounding behaviour.

use std::fmt;
use std::str::FromStr;

use crate::error::{DTypeError, ParseDTypeError};
use crate::quantize::{quantize, Quantized};

/// Signal representation: two's complement or unsigned
/// (the paper's `vtype`, tokens `tc` / `ns`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Signedness {
    /// Two's complement (`tc`).
    #[default]
    TwosComplement,
    /// Unsigned ("not signed", `ns`).
    Unsigned,
}

impl Signedness {
    /// Canonical two-letter token used in the textual dtype form.
    pub fn token(self) -> &'static str {
        match self {
            Signedness::TwosComplement => "tc",
            Signedness::Unsigned => "ns",
        }
    }
}

impl fmt::Display for Signedness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// MSB-side overflow behaviour (the paper's `msbspec`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OverflowMode {
    /// Wrap-around (`wp`): keep the low-order bits, two's-complement style.
    Wrap,
    /// Saturation (`st`): clamp to the representable extremes.
    Saturate,
    /// Error (`er`): flag an overflow during simulation — "an indication for
    /// the designer to increase the wordlength or to select another MSB
    /// mode" (paper, Section 2.1). The quantized value itself saturates so
    /// the simulation can proceed after recording the event.
    #[default]
    Error,
}

impl OverflowMode {
    /// Canonical two-letter token used in the textual dtype form.
    pub fn token(self) -> &'static str {
        match self {
            OverflowMode::Wrap => "wp",
            OverflowMode::Saturate => "st",
            OverflowMode::Error => "er",
        }
    }
}

impl fmt::Display for OverflowMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// LSB-side rounding behaviour (the paper's `lsbspec`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoundingMode {
    /// Round-off (`rd`): round half away from zero upward, i.e.
    /// `floor(x + 0.5)` on the scaled mantissa — the classic DSP rounder.
    #[default]
    Round,
    /// Floor (`fl`): truncate toward negative infinity — cheaper hardware,
    /// but shifts the error mean by half an LSB (paper, Section 5.2).
    Floor,
}

impl RoundingMode {
    /// Canonical two-letter token used in the textual dtype form.
    pub fn token(self) -> &'static str {
        match self {
            RoundingMode::Round => "rd",
            RoundingMode::Floor => "fl",
        }
    }
}

impl fmt::Display for RoundingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// A fixed-point type descriptor.
///
/// `n` is the total wordlength (including the sign bit for two's
/// complement), `f` the number of fractional bits. `f` may be negative or
/// exceed `n`, which simply shifts the represented window relative to the
/// binary point.
///
/// # Example
///
/// ```
/// use fixref_fixed::DType;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let t: DType = "<8,5,tc,st,rd>".parse()?;
/// assert_eq!(t.n(), 8);
/// assert_eq!(t.f(), 5);
/// assert_eq!(t.min_value(), -4.0);
/// assert!((t.max_value() - (4.0 - 0.03125)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DType {
    name: String,
    n: i32,
    f: i32,
    signedness: Signedness,
    overflow: OverflowMode,
    rounding: RoundingMode,
}

impl DType {
    /// Creates a new type descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`DTypeError::InvalidWordlength`] unless `1 <= n <= 63`
    /// (the bit-true mantissa must fit an `i64`), and
    /// [`DTypeError::InvalidFraction`] unless `-256 <= f <= 256`.
    pub fn new(
        name: impl Into<String>,
        n: i32,
        f: i32,
        signedness: Signedness,
        overflow: OverflowMode,
        rounding: RoundingMode,
    ) -> Result<Self, DTypeError> {
        if !(1..=63).contains(&n) {
            return Err(DTypeError::InvalidWordlength { n });
        }
        if !(-256..=256).contains(&f) {
            return Err(DTypeError::InvalidFraction { f });
        }
        Ok(DType {
            name: name.into(),
            n,
            f,
            signedness,
            overflow,
            rounding,
        })
    }

    /// Creates a two's-complement, saturating, rounding type — the most
    /// common configuration in the paper's examples.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DType::new`].
    pub fn tc(name: impl Into<String>, n: i32, f: i32) -> Result<Self, DTypeError> {
        DType::new(
            name,
            n,
            f,
            Signedness::TwosComplement,
            OverflowMode::Saturate,
            RoundingMode::Round,
        )
    }

    /// Creates a type from absolute MSB/LSB positions instead of `(n, f)`.
    ///
    /// For two's complement the MSB position is the sign-weight position:
    /// `n = msb - lsb + 1`. For unsigned the MSB is the highest magnitude
    /// weight, giving the same wordlength relation.
    ///
    /// # Errors
    ///
    /// Returns an error when the implied `(n, f)` pair is invalid, e.g.
    /// `msb < lsb`.
    pub fn from_positions(
        name: impl Into<String>,
        msb: i32,
        lsb: i32,
        signedness: Signedness,
        overflow: OverflowMode,
        rounding: RoundingMode,
    ) -> Result<Self, DTypeError> {
        let n = msb - lsb + 1;
        let f = -lsb;
        DType::new(name, n, f, signedness, overflow, rounding)
    }

    /// Starts a builder pre-populated with two's complement / saturate /
    /// round defaults.
    pub fn builder(name: impl Into<String>) -> DTypeBuilder {
        DTypeBuilder::new(name)
    }

    /// The type's name (used in reports and generated VHDL).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total wordlength in bits, including the sign bit for two's complement.
    pub fn n(&self) -> i32 {
        self.n
    }

    /// Number of fractional bits.
    pub fn f(&self) -> i32 {
        self.f
    }

    /// Signal representation.
    pub fn signedness(&self) -> Signedness {
        self.signedness
    }

    /// Overflow behaviour on the MSB side.
    pub fn overflow(&self) -> OverflowMode {
        self.overflow
    }

    /// Rounding behaviour on the LSB side.
    pub fn rounding(&self) -> RoundingMode {
        self.rounding
    }

    /// Returns a copy with a different overflow mode.
    pub fn with_overflow(&self, overflow: OverflowMode) -> Self {
        DType {
            overflow,
            ..self.clone()
        }
    }

    /// Returns a copy with a different rounding mode.
    pub fn with_rounding(&self, rounding: RoundingMode) -> Self {
        DType {
            rounding,
            ..self.clone()
        }
    }

    /// Returns a copy with a different name.
    pub fn with_name(&self, name: impl Into<String>) -> Self {
        DType {
            name: name.into(),
            ..self.clone()
        }
    }

    /// Absolute MSB position with respect to the binary point:
    /// `msb = n - f - 1`.
    pub fn msb(&self) -> i32 {
        self.n - self.f - 1
    }

    /// Absolute LSB position with respect to the binary point: `lsb = -f`.
    pub fn lsb(&self) -> i32 {
        -self.f
    }

    /// The quantization step `2^lsb = 2^-f`.
    pub fn resolution(&self) -> f64 {
        (self.lsb() as f64).exp2()
    }

    /// Smallest representable value:
    /// `-2^msb` for two's complement, `0` for unsigned.
    pub fn min_value(&self) -> f64 {
        match self.signedness {
            Signedness::TwosComplement => -((self.msb() as f64).exp2()),
            Signedness::Unsigned => 0.0,
        }
    }

    /// Largest representable value:
    /// `2^msb - 2^lsb` (tc) or `2^(msb+1) - 2^lsb` (unsigned).
    pub fn max_value(&self) -> f64 {
        let lsb = self.resolution();
        match self.signedness {
            Signedness::TwosComplement => (self.msb() as f64).exp2() - lsb,
            Signedness::Unsigned => ((self.msb() + 1) as f64).exp2() - lsb,
        }
    }

    /// Smallest mantissa (scaled integer) value.
    pub fn min_mantissa(&self) -> i64 {
        match self.signedness {
            Signedness::TwosComplement => -(1i64 << (self.n - 1)),
            Signedness::Unsigned => 0,
        }
    }

    /// Largest mantissa (scaled integer) value.
    pub fn max_mantissa(&self) -> i64 {
        match self.signedness {
            Signedness::TwosComplement => (1i64 << (self.n - 1)) - 1,
            Signedness::Unsigned => {
                if self.n == 63 {
                    i64::MAX
                } else {
                    (1i64 << self.n) - 1
                }
            }
        }
    }

    /// Quantizes a value through this type
    /// (convenience for [`quantize`]).
    pub fn quantize(&self, x: f64) -> Quantized {
        quantize(x, self)
    }

    /// Whether `x` is exactly representable in this type.
    pub fn is_representable(&self, x: f64) -> bool {
        if !(self.min_value()..=self.max_value()).contains(&x) {
            return false;
        }
        let scaled = x / self.resolution();
        scaled == scaled.round()
    }

    /// The number of values representable by this type (`2^n`).
    pub fn cardinality(&self) -> u64 {
        1u64 << self.n
    }
}

impl fmt::Display for DType {
    /// Formats as the paper's constructor notation, e.g. `<7,5,tc,st,rd>`.
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            fm,
            "<{},{},{},{},{}>",
            self.n, self.f, self.signedness, self.overflow, self.rounding
        )
    }
}

impl FromStr for DType {
    type Err = ParseDTypeError;

    /// Parses the paper's notation `<n,f,vtype[,msbspec[,lsbspec]]>`.
    ///
    /// Omitted `msbspec` defaults to error mode, omitted `lsbspec` to
    /// round-off, matching the environment's conservative defaults.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let body = s
            .trim()
            .strip_prefix('<')
            .and_then(|t| t.strip_suffix('>'))
            .ok_or_else(|| ParseDTypeError::Malformed(s.to_string()))?;
        let fields: Vec<&str> = body.split(',').map(str::trim).collect();
        if !(3..=5).contains(&fields.len()) {
            return Err(ParseDTypeError::Malformed(s.to_string()));
        }
        let n: i32 = fields[0]
            .parse()
            .map_err(|_| ParseDTypeError::BadNumber(fields[0].to_string()))?;
        let f: i32 = fields[1]
            .parse()
            .map_err(|_| ParseDTypeError::BadNumber(fields[1].to_string()))?;
        let signedness = match fields[2] {
            "tc" => Signedness::TwosComplement,
            "ns" => Signedness::Unsigned,
            other => return Err(ParseDTypeError::BadSignedness(other.to_string())),
        };
        let overflow = match fields.get(3) {
            None => OverflowMode::Error,
            Some(&"wp") => OverflowMode::Wrap,
            Some(&"st") => OverflowMode::Saturate,
            Some(&"er") => OverflowMode::Error,
            Some(other) => return Err(ParseDTypeError::BadOverflow(other.to_string())),
        };
        let rounding = match fields.get(4) {
            None => RoundingMode::Round,
            Some(&"rd") => RoundingMode::Round,
            Some(&"fl") => RoundingMode::Floor,
            Some(other) => return Err(ParseDTypeError::BadRounding(other.to_string())),
        };
        Ok(DType::new(
            s.to_string(),
            n,
            f,
            signedness,
            overflow,
            rounding,
        )?)
    }
}

/// Builder for [`DType`] (C-BUILDER): starts from two's complement,
/// saturating, rounding defaults.
///
/// # Example
///
/// ```
/// use fixref_fixed::{DType, OverflowMode};
///
/// # fn main() -> Result<(), fixref_fixed::DTypeError> {
/// let t = DType::builder("acc")
///     .wordlength(16)
///     .fractional(12)
///     .overflow(OverflowMode::Wrap)
///     .build()?;
/// assert_eq!(t.msb(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DTypeBuilder {
    name: String,
    n: i32,
    f: i32,
    signedness: Signedness,
    overflow: OverflowMode,
    rounding: RoundingMode,
}

impl DTypeBuilder {
    /// Starts a builder with 16 total bits, 8 fractional, two's complement,
    /// saturation and round-off.
    pub fn new(name: impl Into<String>) -> Self {
        DTypeBuilder {
            name: name.into(),
            n: 16,
            f: 8,
            signedness: Signedness::TwosComplement,
            overflow: OverflowMode::Saturate,
            rounding: RoundingMode::Round,
        }
    }

    /// Sets the total wordlength.
    pub fn wordlength(mut self, n: i32) -> Self {
        self.n = n;
        self
    }

    /// Sets the fractional bit count.
    pub fn fractional(mut self, f: i32) -> Self {
        self.f = f;
        self
    }

    /// Sets the signedness.
    pub fn signedness(mut self, s: Signedness) -> Self {
        self.signedness = s;
        self
    }

    /// Sets the overflow mode.
    pub fn overflow(mut self, o: OverflowMode) -> Self {
        self.overflow = o;
        self
    }

    /// Sets the rounding mode.
    pub fn rounding(mut self, r: RoundingMode) -> Self {
        self.rounding = r;
        self
    }

    /// Builds the descriptor.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DType::new`].
    pub fn build(self) -> Result<DType, DTypeError> {
        DType::new(
            self.name,
            self.n,
            self.f,
            self.signedness,
            self.overflow,
            self.rounding,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_and_ranges_tc() {
        let t = DType::tc("t", 7, 5).unwrap();
        assert_eq!(t.msb(), 1);
        assert_eq!(t.lsb(), -5);
        assert_eq!(t.min_value(), -2.0);
        assert!((t.max_value() - (2.0 - 0.03125)).abs() < 1e-15);
        assert_eq!(t.min_mantissa(), -64);
        assert_eq!(t.max_mantissa(), 63);
        assert_eq!(t.cardinality(), 128);
    }

    #[test]
    fn positions_and_ranges_unsigned() {
        let t = DType::new(
            "u",
            4,
            2,
            Signedness::Unsigned,
            OverflowMode::Wrap,
            RoundingMode::Floor,
        )
        .unwrap();
        assert_eq!(t.msb(), 1);
        assert_eq!(t.lsb(), -2);
        assert_eq!(t.min_value(), 0.0);
        assert!((t.max_value() - 3.75).abs() < 1e-15);
        assert_eq!(t.min_mantissa(), 0);
        assert_eq!(t.max_mantissa(), 15);
    }

    #[test]
    fn negative_fractional_bits_shift_window() {
        // n=4, f=-2: values are multiples of 4 in [-32, 28].
        let t = DType::tc("t", 4, -2).unwrap();
        assert_eq!(t.resolution(), 4.0);
        assert_eq!(t.min_value(), -32.0);
        assert_eq!(t.max_value(), 28.0);
    }

    #[test]
    fn fraction_larger_than_wordlength() {
        // n=4, f=6: pure sub-LSB window around zero.
        let t = DType::tc("t", 4, 6).unwrap();
        assert_eq!(t.msb(), -3);
        assert_eq!(t.min_value(), -0.125);
        assert!(t.max_value() < 0.125);
    }

    #[test]
    fn from_positions_roundtrip() {
        let t = DType::from_positions(
            "p",
            3,
            -8,
            Signedness::TwosComplement,
            OverflowMode::Saturate,
            RoundingMode::Round,
        )
        .unwrap();
        assert_eq!(t.n(), 12);
        assert_eq!(t.f(), 8);
        assert_eq!(t.msb(), 3);
        assert_eq!(t.lsb(), -8);
    }

    #[test]
    fn invalid_construction_rejected() {
        assert_eq!(
            DType::tc("t", 0, 0).unwrap_err(),
            DTypeError::InvalidWordlength { n: 0 }
        );
        assert_eq!(
            DType::tc("t", 64, 0).unwrap_err(),
            DTypeError::InvalidWordlength { n: 64 }
        );
        assert_eq!(
            DType::tc("t", 8, 300).unwrap_err(),
            DTypeError::InvalidFraction { f: 300 }
        );
        // msb < lsb gives non-positive wordlength.
        assert!(DType::from_positions(
            "t",
            -3,
            0,
            Signedness::TwosComplement,
            OverflowMode::Wrap,
            RoundingMode::Floor
        )
        .is_err());
    }

    #[test]
    fn display_matches_paper_notation() {
        let t = DType::new(
            "T1",
            8,
            5,
            Signedness::Unsigned,
            OverflowMode::Saturate,
            RoundingMode::Round,
        )
        .unwrap();
        assert_eq!(t.to_string(), "<8,5,ns,st,rd>");
    }

    #[test]
    fn parse_full_and_defaults() {
        let t: DType = "<7,5,tc,st,rd>".parse().unwrap();
        assert_eq!(t.n(), 7);
        assert_eq!(t.overflow(), OverflowMode::Saturate);

        let t: DType = "<7,5,tc>".parse().unwrap();
        assert_eq!(t.overflow(), OverflowMode::Error);
        assert_eq!(t.rounding(), RoundingMode::Round);

        let t: DType = " <16, 8, ns, wp> ".parse().unwrap();
        assert_eq!(t.signedness(), Signedness::Unsigned);
        assert_eq!(t.overflow(), OverflowMode::Wrap);
        assert_eq!(t.rounding(), RoundingMode::Round);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            "7,5,tc".parse::<DType>(),
            Err(ParseDTypeError::Malformed(_))
        ));
        assert!(matches!(
            "<7,5>".parse::<DType>(),
            Err(ParseDTypeError::Malformed(_))
        ));
        assert!(matches!(
            "<x,5,tc>".parse::<DType>(),
            Err(ParseDTypeError::BadNumber(_))
        ));
        assert!(matches!(
            "<7,5,zz>".parse::<DType>(),
            Err(ParseDTypeError::BadSignedness(_))
        ));
        assert!(matches!(
            "<7,5,tc,xx>".parse::<DType>(),
            Err(ParseDTypeError::BadOverflow(_))
        ));
        assert!(matches!(
            "<7,5,tc,st,xx>".parse::<DType>(),
            Err(ParseDTypeError::BadRounding(_))
        ));
        assert!(matches!(
            "<64,5,tc>".parse::<DType>(),
            Err(ParseDTypeError::Invalid(_))
        ));
    }

    #[test]
    fn display_parse_roundtrip() {
        for s in ["<7,5,tc,st,rd>", "<16,0,ns,wp,fl>", "<12,-3,tc,er,rd>"] {
            let t: DType = s.parse().unwrap();
            assert_eq!(t.to_string(), s);
        }
    }

    #[test]
    fn is_representable() {
        let t = DType::tc("t", 7, 5).unwrap();
        assert!(t.is_representable(0.71875));
        assert!(t.is_representable(-2.0));
        assert!(!t.is_representable(2.0)); // max is 2 - 2^-5
        assert!(!t.is_representable(0.7));
        assert!(!t.is_representable(0.015)); // not a multiple of 2^-5
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let t = DType::builder("b").build().unwrap();
        assert_eq!(t.n(), 16);
        assert_eq!(t.f(), 8);
        assert_eq!(t.signedness(), Signedness::TwosComplement);

        let t = DType::builder("b")
            .wordlength(10)
            .fractional(-1)
            .signedness(Signedness::Unsigned)
            .overflow(OverflowMode::Error)
            .rounding(RoundingMode::Floor)
            .build()
            .unwrap();
        assert_eq!((t.n(), t.f()), (10, -1));
        assert_eq!(t.overflow(), OverflowMode::Error);
        assert_eq!(t.rounding(), RoundingMode::Floor);
    }

    #[test]
    fn with_modifiers_preserve_rest() {
        let t = DType::tc("t", 8, 4).unwrap();
        let w = t.with_overflow(OverflowMode::Wrap);
        assert_eq!(w.overflow(), OverflowMode::Wrap);
        assert_eq!(w.n(), 8);
        let r = t.with_rounding(RoundingMode::Floor);
        assert_eq!(r.rounding(), RoundingMode::Floor);
        let n = t.with_name("other");
        assert_eq!(n.name(), "other");
        assert_eq!(n.f(), 4);
    }

    #[test]
    fn max_mantissa_unsigned_63_bits() {
        let t = DType::new(
            "big",
            63,
            0,
            Signedness::Unsigned,
            OverflowMode::Saturate,
            RoundingMode::Floor,
        )
        .unwrap();
        assert_eq!(t.max_mantissa(), i64::MAX);
    }
}
