//! Error types for fixed-point type construction, parsing and quantization.

use std::error::Error;
use std::fmt;

/// Error constructing a [`DType`](crate::DType).
///
/// Returned by [`DType::new`](crate::DType::new) and
/// [`DTypeBuilder::build`](crate::DTypeBuilder::build) when the requested
/// wordlength or fractional-bit count is outside the supported envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DTypeError {
    /// Total wordlength `n` must satisfy `1 <= n <= 63` so that the
    /// bit-true mantissa fits an `i64`.
    InvalidWordlength {
        /// The rejected wordlength.
        n: i32,
    },
    /// Fractional bit count `f` must satisfy `-256 <= f <= 256` so that
    /// `2^-f` stays comfortably inside `f64` range.
    InvalidFraction {
        /// The rejected fractional bit count.
        f: i32,
    },
}

impl fmt::Display for DTypeError {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DTypeError::InvalidWordlength { n } => {
                write!(fm, "total wordlength {n} outside supported range 1..=63")
            }
            DTypeError::InvalidFraction { f } => {
                write!(
                    fm,
                    "fractional bit count {f} outside supported range -256..=256"
                )
            }
        }
    }
}

impl Error for DTypeError {}

/// Overflow detected while quantizing a value under
/// [`OverflowMode::Error`](crate::OverflowMode::Error).
///
/// Carries the offending value and the representable range so that the
/// designer can decide whether to widen the type or switch to saturation —
/// exactly the "indication for the designer" the paper attaches to the
/// error MSB mode.
#[derive(Debug, Clone, PartialEq)]
pub struct OverflowError {
    /// The value that did not fit.
    pub value: f64,
    /// Smallest representable value of the target type.
    pub min: f64,
    /// Largest representable value of the target type.
    pub max: f64,
    /// Name of the target type, if any.
    pub dtype: String,
}

impl fmt::Display for OverflowError {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            fm,
            "value {} overflows type {} with range [{}, {}]",
            self.value, self.dtype, self.min, self.max
        )
    }
}

impl Error for OverflowError {}

/// Unified error for fallible refinement-facing operations.
///
/// The original API surface asserted on bad designer input (inverted
/// ranges, NaN bounds, negative sigmas, unrepresentable bit positions).
/// Those panics are fine for programming errors but not for values that
/// arrive from stimuli or annotation files, so the fallible entry points
/// (`Interval::try_new`, `Design::try_set_range`, …) return this type
/// instead.
#[derive(Debug, Clone, PartialEq)]
pub enum FixError {
    /// A range annotation with `lo > hi` or a NaN bound.
    InvalidRange {
        /// The rejected lower bound.
        lo: f64,
        /// The rejected upper bound.
        hi: f64,
    },
    /// An `error()` annotation with a negative, NaN or infinite sigma.
    InvalidSigma {
        /// The rejected standard deviation.
        sigma: f64,
    },
    /// Bit positions that do not form a representable type.
    Unrepresentable(DTypeError),
    /// Overflow under [`OverflowMode::Error`](crate::OverflowMode::Error).
    Overflow(OverflowError),
    /// A signal name that is already declared in the design.
    DuplicateSignal {
        /// The rejected name.
        name: String,
    },
}

impl fmt::Display for FixError {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixError::InvalidRange { lo, hi } => {
                write!(
                    fm,
                    "invalid range [{lo}, {hi}]: bounds must be ordered and not NaN"
                )
            }
            FixError::InvalidSigma { sigma } => {
                write!(
                    fm,
                    "invalid error sigma {sigma}: must be finite and non-negative"
                )
            }
            FixError::Unrepresentable(e) => write!(fm, "unrepresentable type: {e}"),
            FixError::Overflow(e) => write!(fm, "{e}"),
            FixError::DuplicateSignal { name } => {
                write!(fm, "duplicate signal name {name:?}")
            }
        }
    }
}

impl Error for FixError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FixError::Unrepresentable(e) => Some(e),
            FixError::Overflow(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DTypeError> for FixError {
    fn from(e: DTypeError) -> Self {
        FixError::Unrepresentable(e)
    }
}

impl From<OverflowError> for FixError {
    fn from(e: OverflowError) -> Self {
        FixError::Overflow(e)
    }
}

/// Error parsing a [`DType`](crate::DType) from its textual form.
///
/// The textual form is the paper's constructor notation
/// `<n,f,vtype[,msbspec[,lsbspec]]>`, e.g. `<7,5,tc,st,rd>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseDTypeError {
    /// The string is not of the form `<...>` with 3 to 5 comma fields.
    Malformed(String),
    /// A numeric field failed to parse.
    BadNumber(String),
    /// Unknown signedness token (expected `tc` or `ns`).
    BadSignedness(String),
    /// Unknown overflow token (expected `wp`, `st` or `er`).
    BadOverflow(String),
    /// Unknown rounding token (expected `rd` or `fl`).
    BadRounding(String),
    /// The numeric fields were valid syntax but an invalid type.
    Invalid(DTypeError),
}

impl fmt::Display for ParseDTypeError {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDTypeError::Malformed(s) => write!(fm, "malformed dtype literal {s:?}"),
            ParseDTypeError::BadNumber(s) => write!(fm, "invalid number {s:?} in dtype literal"),
            ParseDTypeError::BadSignedness(s) => {
                write!(fm, "invalid signedness {s:?} (expected tc or ns)")
            }
            ParseDTypeError::BadOverflow(s) => {
                write!(fm, "invalid overflow mode {s:?} (expected wp, st or er)")
            }
            ParseDTypeError::BadRounding(s) => {
                write!(fm, "invalid rounding mode {s:?} (expected rd or fl)")
            }
            ParseDTypeError::Invalid(e) => write!(fm, "invalid dtype: {e}"),
        }
    }
}

impl Error for ParseDTypeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseDTypeError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DTypeError> for ParseDTypeError {
    fn from(e: DTypeError) -> Self {
        ParseDTypeError::Invalid(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dtype_error() {
        let e = DTypeError::InvalidWordlength { n: 0 };
        assert!(e.to_string().contains("wordlength 0"));
        let e = DTypeError::InvalidFraction { f: 1000 };
        assert!(e.to_string().contains("fractional bit count 1000"));
    }

    #[test]
    fn display_overflow_error() {
        let e = OverflowError {
            value: 3.0,
            min: -2.0,
            max: 1.96875,
            dtype: "T1".into(),
        };
        let s = e.to_string();
        assert!(s.contains("3"));
        assert!(s.contains("T1"));
    }

    #[test]
    fn parse_error_source_chain() {
        let inner = DTypeError::InvalidWordlength { n: 99 };
        let e = ParseDTypeError::from(inner.clone());
        assert_eq!(e, ParseDTypeError::Invalid(inner));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&ParseDTypeError::Malformed("x".into())).is_none());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DTypeError>();
        assert_send_sync::<OverflowError>();
        assert_send_sync::<ParseDTypeError>();
        assert_send_sync::<FixError>();
    }

    #[test]
    fn fix_error_display_and_sources() {
        let e = FixError::InvalidRange { lo: 1.0, hi: 0.0 };
        assert!(e.to_string().contains("[1, 0]"));
        assert!(Error::source(&e).is_none());
        let e = FixError::InvalidSigma { sigma: -0.5 };
        assert!(e.to_string().contains("-0.5"));
        let e = FixError::from(DTypeError::InvalidWordlength { n: 99 });
        assert!(e.to_string().contains("99"));
        assert!(Error::source(&e).is_some());
        let e = FixError::from(OverflowError {
            value: 3.0,
            min: -2.0,
            max: 1.96875,
            dtype: "T1".into(),
        });
        assert!(e.to_string().contains("overflows"));
        assert!(Error::source(&e).is_some());
        let e = FixError::DuplicateSignal { name: "x".into() };
        assert!(e.to_string().contains("duplicate signal name \"x\""));
        assert!(Error::source(&e).is_none());
    }
}
