//! A small, deterministic PRNG for reproducible stimuli and error
//! injection.
//!
//! The design environment needs randomness in exactly three places: the
//! `error()` injection of [`fixref_sim`]'s dual simulation (paper §4.2),
//! the AWGN channel models of the evaluation workloads, and randomized
//! tests. All of them require *reproducibility per seed* — the refinement
//! flow re-runs the same stimulus across iterations and must see the same
//! noise — and none requires cryptographic quality. This module provides a
//! dependency-free xoshiro256++ generator (Blackman & Vigna) seeded
//! through SplitMix64, the conventional pairing.
//!
//! # Example
//!
//! ```
//! use fixref_fixed::Rng64;
//!
//! let mut a = Rng64::seed_from_u64(42);
//! let mut b = Rng64::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let u = a.next_f64();
//! assert!((0.0..1.0).contains(&u));
//! ```

/// A deterministic xoshiro256++ pseudo-random generator.
///
/// Not cryptographically secure; intended for simulation noise and
/// randomized tests. Identical seeds produce identical streams on every
/// platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed, expanding it through
    /// SplitMix64 so that similar seeds yield uncorrelated states.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        // SplitMix64 never emits four zeros in a row, so the state is
        // always valid for xoshiro.
        Rng64 {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "invalid uniform range [{lo}, {hi})"
        );
        lo + self.next_f64() * (hi - lo)
    }

    /// A uniform `f64` in the closed interval `[-half, half]` — the shape
    /// the `error()` injection draws from (`U(-σ√3, σ√3)`).
    ///
    /// # Panics
    ///
    /// Panics if `half` is negative or non-finite.
    pub fn symmetric(&mut self, half: f64) -> f64 {
        assert!(
            half >= 0.0 && half.is_finite(),
            "invalid symmetric half-width {half}"
        );
        if half == 0.0 {
            return 0.0;
        }
        // next_f64 is half-open; mapping [0,1) onto [-half, half) loses
        // only the single endpoint, irrelevant for a continuous draw.
        -half + self.next_f64() * 2.0 * half
    }

    /// A uniform integer in `[0, bound)` by rejection-free multiply-shift.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift; the tiny modulo bias is irrelevant for
        // simulation workloads.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::seed_from_u64(7);
        let mut b = Rng64::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng64::seed_from_u64(0);
        assert_ne!(r.next_u64(), 0u64.wrapping_add(r.next_u64()));
    }

    #[test]
    fn f64_in_unit_interval_with_reasonable_moments() {
        let mut r = Rng64::seed_from_u64(0xDEAD);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let u = r.next_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
            sumsq += u * u;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.01, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = Rng64::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.uniform(-2.5, 0.75);
            assert!((-2.5..0.75).contains(&v));
        }
    }

    #[test]
    fn symmetric_respects_half_width() {
        let mut r = Rng64::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = r.symmetric(0.125);
            assert!(v.abs() <= 0.125);
        }
        assert_eq!(r.symmetric(0.0), 0.0);
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut r = Rng64::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "invalid uniform range")]
    fn uniform_rejects_inverted_bounds() {
        let mut r = Rng64::seed_from_u64(6);
        let _ = r.uniform(1.0, -1.0);
    }
}
