//! Case study: refine a complex-baseband QAM adaptive equalizer — the
//! signal class of the paper's production cable modems. Ten adaptive
//! complex coefficients mean ten multiplicative feedback loops; watch the
//! flow pin every one of them after range explosion and still converge in
//! two MSB iterations.
//!
//! ```text
//! cargo run --release --example qam_ffe
//! ```

use fixref::codegen::estimate_cost;
use fixref::dsp::qam::{qam_stimulus, FfeConfig, QamFfe};
use fixref::fixed::SqnrMeter;
use fixref::refine::{RefinePolicy, RefinementFlow};
use fixref::sim::Design;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = Design::with_seed(0x0A11_CAFE);
    let config = FfeConfig {
        input_dtype: Some("<9,7,tc,st,rd>".parse()?),
        input_range: None,
        ..FfeConfig::default()
    };
    let ffe = QamFfe::new(&design, &config);
    println!("complex FFE: {} monitored signals", ffe.signal_ids().len());

    let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
    let ffe_for_flow = ffe.clone();
    let outcome = flow.run(move |d, _| {
        d.reset_state();
        ffe_for_flow.init();
        for &x in &qam_stimulus(3, 26.0, 5000) {
            ffe_for_flow.step(x);
        }
    })?;

    println!(
        "refined in {} MSB + {} LSB iterations",
        outcome.msb_iterations, outcome.lsb_iterations
    );
    let (forced, other) = outcome.saturation_counts();
    println!("coefficients pinned after range explosion: {forced}");
    println!("other saturations: {other}");
    println!("interventions: {}", outcome.interventions.len());
    for iv in outcome.interventions.iter().take(4) {
        println!("  {iv}");
    }
    if outcome.interventions.len() > 4 {
        println!("  ... and {} more", outcome.interventions.len() - 4);
    }

    // Measure quality and cost with the decided types.
    design.reset_stats();
    design.reset_state();
    design.clear_graph();
    design.record_graph(true);
    ffe.init();
    let mut meter = SqnrMeter::new();
    for &x in &qam_stimulus(3, 26.0, 5000) {
        ffe.step(x);
        let (or_, oi) = ffe.outputs();
        let (vr, vi) = (or_.get(), oi.get());
        meter.record(vr.flt(), vr.fix());
        meter.record(vi.flt(), vi.fix());
    }
    design.record_graph(false);
    let cost = estimate_cost(&design, &design.graph());
    println!("equalized-output {meter}");
    println!(
        "datapath estimate: {:.0} gate equivalents ({} mult bits, {} add bits, {} reg bits)",
        cost.gate_score(),
        cost.multiplier_bits,
        cost.adder_bits,
        cost.register_bits
    );
    println!(
        "verification: {} overflows, {} saturation events",
        outcome.verify.total_overflows, outcome.verify.saturation_events
    );
    Ok(())
}
