//! The paper's motivational example end to end: refine the Fig. 1
//! adaptive LMS equalizer, print the Table 1 / Table 2 analyses, measure
//! the SQNR cost, and emit VHDL for the refined design.
//!
//! ```text
//! cargo run --example lms_equalizer
//! ```

use fixref::codegen::{generate_testbench, generate_vhdl, VhdlOptions};
use fixref::dsp::lms::equalizer_stimulus;
use fixref::dsp::{LmsConfig, LmsEqualizer};
use fixref::fixed::SqnrMeter;
use fixref::refine::{render_lsb_table, render_msb_table, RefinePolicy, RefinementFlow};
use fixref::sim::{Design, SignalRef};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = Design::with_seed(0xDA7E_1999);
    let config = LmsConfig {
        input_dtype: Some("<7,5,tc,st,rd>".parse()?), // the paper's T_input
        ..LmsConfig::default()
    };
    let eq = LmsEqualizer::new(&design, &config);

    // The refinement flow drives the equalizer with PRBS 2-PAM through a
    // mild ISI channel plus noise — the synthetic stand-in for the
    // paper's cable-modem stimuli.
    let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
    let eq_for_flow = eq.clone();
    let outcome = flow.run(move |_, _| {
        eq_for_flow.init();
        for &x in &equalizer_stimulus(7, 28.0, 4000) {
            eq_for_flow.step(x);
        }
    })?;

    println!("=== MSB analysis (paper Table 1, final iteration) ===");
    print!("{}", render_msb_table(outcome.msb()));
    println!();
    println!("=== LSB analysis (paper Table 2) ===");
    print!("{}", render_lsb_table(outcome.lsb()));
    println!();
    println!("interventions:");
    for iv in &outcome.interventions {
        println!("  {iv}");
    }

    // SQNR of the slicer input with every decided type in place.
    design.reset_stats();
    design.reset_state();
    eq.init();
    let mut meter = SqnrMeter::new();
    for &x in &equalizer_stimulus(7, 28.0, 4000) {
        eq.step(x);
        let w = eq.w().get();
        meter.record(w.flt(), w.fix());
    }
    println!();
    println!("refined equalizer: {meter}");

    // Emit VHDL from the signal-flow graph recorded during refinement.
    let vhdl = generate_vhdl(
        &design,
        &[eq.y().id(), eq.w().id()],
        &VhdlOptions::named("lms_equalizer").with_input(eq.x().id()),
    )?;
    println!();
    println!("=== generated VHDL (first 40 lines) ===");
    for line in vhdl.lines().take(40) {
        println!("{line}");
    }
    println!("... ({} lines total)", vhdl.lines().count());

    // And a self-checking testbench with interpreter-derived vectors.
    let tb_inputs = vec![(eq.x().id(), equalizer_stimulus(7, 28.0, 16))];
    let tb = generate_testbench(
        &design,
        &[eq.y().id(), eq.w().id()],
        &VhdlOptions::named("lms_equalizer").with_input(eq.x().id()),
        &tb_inputs,
    )?;
    println!();
    println!(
        "self-checking testbench: {} lines, {} assertions",
        tb.lines().count(),
        tb.matches("assert ").count()
    );
    Ok(())
}
