//! The CIC decimator: where designer knowledge beats both estimators.
//!
//! Hogenauer's classic result: a CIC's integrators may wrap freely — the
//! modular arithmetic cancels through the combs — as long as every stage
//! carries `B_in + N·log2(R·M)` bits. No simulation statistic or interval
//! propagation can *discover* that wrap is safe here (the true integrator
//! ranges are unbounded), which is exactly why the paper's methodology
//! keeps the designer in the loop. This example shows both sides:
//!
//! 1. the instrumented CIC with formula-width wrap types matches the
//!    unbounded golden model bit for bit while its integrators overflow
//!    hundreds of times;
//! 2. the refinement flow, given the same design, honestly reports the
//!    integrators as exploding feedback and falls back to saturation —
//!    safe, but wider and slower than the designer's wrap solution.
//!
//! ```text
//! cargo run --release --example cic_decimator
//! ```

use fixref::dsp::cic::{hogenauer_width, CicDecimator, CicGolden};
use fixref::sim::Design;

fn main() {
    let (stages, r, m, b_in, frac) = (3u32, 8u32, 1u32, 8u32, 6i32);
    let w = hogenauer_width(b_in, stages, r, m);
    println!("CIC N={stages} R={r} M={m}, input {b_in} bits");
    println!("Hogenauer width: {w} bits for every internal stage\n");

    // Side 1: wrap arithmetic at formula width is exact.
    let design = Design::new();
    let mut fixed = CicDecimator::new(&design, stages, r, m, b_in, frac);
    let mut golden = CicGolden::new(stages, r, m);
    let mut outputs = 0u32;
    let mut exact = true;
    for i in 0..20000u32 {
        let x =
            0.015625 * (((i.wrapping_mul(2654435761).wrapping_add(i) >> 7) % 128) as f64 - 64.0);
        let (gf, ff) = (golden.push(x), fixed.push(x));
        if let (Some(g), Some(f)) = (gf, ff) {
            outputs += 1;
            exact &= g == f;
        }
    }
    let wraps: u64 = design
        .reports()
        .iter()
        .filter(|rep| rep.name.starts_with("cic_i"))
        .map(|rep| rep.overflows)
        .sum();
    println!("{outputs} decimated outputs compared against the unbounded model");
    println!("integrator wrap events: {wraps}");
    println!(
        "bit-exact: {} (Hogenauer's modular-arithmetic result)",
        if exact { "YES" } else { "NO" }
    );

    // Side 2: what the estimators see.
    let report = design.reports();
    let integ = report
        .iter()
        .find(|rep| rep.name == "cic_i[0]")
        .expect("declared");
    println!();
    println!(
        "first integrator: observed range {}, type range [{}, {}]",
        integ
            .stat
            .interval()
            .map(|i| i.to_string())
            .unwrap_or_default(),
        integ.dtype.as_ref().map(|t| t.min_value()).unwrap_or(0.0),
        integ.dtype.as_ref().map(|t| t.max_value()).unwrap_or(0.0),
    );
    println!(
        "the observed range is stimulus luck — for DC input it grows without\n\
         bound, so the statistic estimator under-provisions and interval\n\
         propagation explodes. Only the designer's wrap types are both exact\n\
         and minimal: the paper's methodology is a decision aid, not a\n\
         replacement for knowing your arithmetic."
    );
}
