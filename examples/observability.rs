//! The instrumented refinement flow: refine the Fig. 1 LMS equalizer
//! while a recorder captures counters, spans and the structured event
//! journal, then query the journal for the paper's §6 claims — 2 MSB
//! iterations (the range explosion on `b` costs one extra iteration,
//! resolved by an automatic `range()` pin) and a single LSB iteration —
//! as machine-checkable events rather than log prose.
//!
//! ```text
//! cargo run --example observability
//! ```

use fixref::dsp::lms::equalizer_stimulus;
use fixref::dsp::{LmsConfig, LmsEqualizer};
use fixref::obs::{to_jsonl, Event, MetricsReport, Phase};
use fixref::refine::{RefinePolicy, RefinementFlow};
use fixref::sim::Design;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = Design::with_seed(0xDA7E_1999);
    let config = LmsConfig {
        input_dtype: Some("<7,5,tc,st,rd>".parse()?), // the paper's T_input
        ..LmsConfig::default()
    };
    let eq = LmsEqualizer::new(&design, &config);

    // `RefinementFlow::new` creates a DefaultRecorder and attaches it to
    // the design, so simulation-level counters (ticks, assignments,
    // quantization error histograms) land next to the flow's own events.
    let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
    let eq_for_flow = eq.clone();
    flow.run(move |_, _| {
        eq_for_flow.init();
        for &x in &equalizer_stimulus(7, 28.0, 4000) {
            eq_for_flow.step(x);
        }
    })?;

    // --- 1. The journal, as humans and as machines see it. ---
    let journal = flow.journal();
    println!("=== event journal ({} events) ===", journal.len());
    for e in &journal {
        println!("  [{:<18}] {e}", e.kind());
    }
    println!();
    println!("=== the same journal as JSON Lines ===");
    print!("{}", to_jsonl(&journal));
    println!();

    // --- 2. The paper's §6 claims as journal queries. ---
    let rec = flow.recorder();
    let msb =
        rec.query(|e| matches!(e, Event::PhaseConverged { phase, .. } if *phase == Phase::Msb));
    let lsb =
        rec.query(|e| matches!(e, Event::PhaseConverged { phase, .. } if *phase == Phase::Lsb));
    let pins = rec.query(|e| matches!(e, Event::AutoRange { .. }));
    println!("=== paper §6 claims, queried from the journal ===");
    for e in msb.iter().chain(&lsb) {
        if let Event::PhaseConverged { phase, iterations } = e {
            let paper = match phase {
                Phase::Msb => "paper: 2 — the explosion on b costs one extra iteration",
                Phase::Lsb => "paper: 1 — a single pass resolves every LSB",
            };
            println!("  {phase} converged in {iterations} iteration(s) ({paper})");
        }
    }
    for e in &pins {
        if let Event::AutoRange {
            signal,
            lo,
            hi,
            iteration,
        } = e
        {
            println!(
                "  automatic pin (the paper's manual b.range(-0.2, 0.2)): \
                 {signal}.range({lo:.3}, {hi:.3}) at iteration {iteration}"
            );
        }
    }
    assert_eq!(pins.len(), 1, "exactly one range pin expected on the LMS");
    println!();

    // --- 3. Per-iteration span timings: wall clock and cycles. ---
    println!("=== per-iteration spans ===");
    for s in rec.spans() {
        if s.name.starts_with("flow.") {
            println!(
                "  {:<18} {:>9.3} ms  {:>8} cycles",
                s.name,
                s.wall_ns as f64 / 1e6,
                s.cycles
            );
        }
    }
    println!();

    // --- 4. The full metrics report. ---
    let report = MetricsReport::from_recorder("lms_refinement", rec);
    print!("{}", report.render_text());
    Ok(())
}
