//! Quickstart: refine a tiny multiply-accumulate datapath from floating
//! point to fixed point in one call, then look at what was decided.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fixref::fixed::DType;
use fixref::refine::{RefinePolicy, RefinementFlow};
use fixref::sim::Design;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the datapath through the design environment. The input
    //    already has its fixed-point type (it comes from an 8-bit ADC);
    //    everything else starts floating point.
    let design = Design::new();
    let adc: DType = "<8,6,tc,st,rd>".parse()?;
    let x = design.sig_typed("x", adc);
    let scaled = design.sig("scaled");
    let acc = design.reg("acc");
    let y = design.sig("y");

    // 2. Hand the design and a stimulus to the refinement flow. The
    //    stimulus is any closure that exercises the design; here a swept
    //    tone through a leaky accumulator.
    let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
    let (xc, sc, ac, yc) = (x.clone(), scaled.clone(), acc.clone(), y.clone());
    let outcome = flow.run(move |d, _iteration| {
        for i in 0..2000 {
            xc.set((i as f64 * 0.05).sin() * 0.9);
            sc.set(xc.get() * 0.75);
            ac.set(ac.get() * 0.9 + sc.get());
            yc.set(ac.get() + sc.get());
            d.tick();
        }
    })?;

    // 3. Every signal now carries a decided fixed-point type.
    println!(
        "refined in {} MSB + {} LSB iterations",
        outcome.msb_iterations, outcome.lsb_iterations
    );
    for (id, dtype) in &outcome.types {
        println!("  {:<8} -> {}", design.name_of(*id), dtype);
    }
    println!(
        "verification: {} overflows, {} saturation events",
        outcome.verify.total_overflows, outcome.verify.saturation_events
    );

    // 4. The decided types live on the design, so further simulation runs
    //    bit-true fixed point with the float reference alongside.
    x.set(0.5);
    scaled.set(x.get() * 0.75);
    let v = scaled.get();
    println!("scaled: float path {} vs fixed path {}", v.flt(), v.fix());
    Ok(())
}
