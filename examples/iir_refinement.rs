//! Refining a recursive filter: a biquad lowpass through the flow, with a
//! waveform (VCD) dump showing the float and fixed paths side by side.
//! Recursive structures are where fixed-point refinement earns its keep —
//! pole feedback amplifies quantization noise and the error monitor
//! measures by how much.
//!
//! ```text
//! cargo run --example iir_refinement
//! ```

use std::fs;

use fixref::dsp::Biquad;
use fixref::refine::{render_lsb_table, RefinePolicy, RefinementFlow};
use fixref::sim::{Design, SignalRef, Trace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Coefficients from the golden designer.
    let proto = Biquad::lowpass(0.05, 0.707);
    let [b0, b1, b2] = proto.b;
    let [a1, a2] = proto.a;

    // Describe the direct-form-I biquad through the environment.
    let design = Design::new();
    let adc: fixref::fixed::DType = "<10,8,tc,st,rd>".parse()?;
    let x = design.sig_typed("x", adc);
    let x1 = design.reg("x1");
    let x2 = design.reg("x2");
    let y1 = design.reg("y1");
    let y2 = design.reg("y2");
    let y = design.sig("y");

    let handles = (
        x.clone(),
        x1.clone(),
        x2.clone(),
        y1.clone(),
        y2.clone(),
        y.clone(),
    );
    let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
    let outcome = flow.run(move |d, _| {
        let (x, x1, x2, y1, y2, y) = &handles;
        for i in 0..4000 {
            // Two tones, one in the passband and one to be attenuated.
            let t = i as f64;
            x.set(0.45 * (0.05 * t).sin() + 0.45 * (2.4 * t).sin());
            y.set(b0 * x.get() + b1 * x1.get() + b2 * x2.get() - a1 * y1.get() - a2 * y2.get());
            x2.set(x1.get());
            x1.set(x.get());
            y2.set(y1.get());
            y1.set(y.get());
            d.tick();
        }
    })?;

    println!("=== biquad LSB analysis ===");
    print!("{}", render_lsb_table(outcome.lsb()));
    println!();
    println!("decided types:");
    for (id, t) in &outcome.types {
        println!("  {:<4} -> {}", design.name_of(*id), t);
    }
    println!("verification: {} overflows", outcome.verify.total_overflows);

    // Record a short waveform with the decided types in place and dump a
    // VCD for inspection in GTKWave: <name>_flt vs <name>_fix per signal.
    design.reset_stats();
    design.reset_state();
    let mut trace = Trace::of(&design, &[x.id(), y.id()]);
    for i in 0..256 {
        let t = i as f64;
        x.set(0.45 * (0.05 * t).sin() + 0.45 * (2.4 * t).sin());
        y.set(b0 * x.get() + b1 * x1.get() + b2 * x2.get() - a1 * y1.get() - a2 * y2.get());
        x2.set(x1.get());
        x1.set(x.get());
        y2.set(y1.get());
        y1.set(y.get());
        design.tick();
        trace.sample(&design);
    }
    let mut vcd = Vec::new();
    trace.write_vcd(&mut vcd)?;
    let path = std::env::temp_dir().join("fixref_biquad.vcd");
    fs::write(&path, vcd)?;
    println!("waveform dumped to {}", path.display());
    Ok(())
}
