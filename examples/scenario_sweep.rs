//! Scenario sweep: refine one design against a *grid* of operating
//! conditions instead of a single stimulus, with the scenarios simulated
//! on a worker pool and their monitor statistics merged deterministically.
//!
//! The refinement then decides types that hold across every scenario —
//! the merged min/max drives the MSB side, the merged error statistics
//! the LSB side — and the result is bit-identical no matter how many
//! workers simulate the grid.
//!
//! ```text
//! cargo run --example scenario_sweep
//! ```

use fixref::refine::{RefinePolicy, RefinementFlow, ShardSim, SweepDriver};
use fixref::sim::{Design, Scenario, ScenarioSet};

/// The example datapath: a leaky integrator smoothing a noisy tone.
struct Smoother {
    x: fixref::sim::Sig,
    acc: fixref::sim::Reg,
    y: fixref::sim::Sig,
}

impl Smoother {
    fn new(design: &Design) -> Self {
        Smoother {
            x: design.sig("x"),
            acc: design.reg("acc"),
            y: design.sig("y"),
        }
    }

    /// Drives the datapath for one scenario: a tone plus noise whose
    /// amplitude follows the scenario SNR and whose stream follows the
    /// scenario seed.
    fn drive(&self, design: &Design, scenario: &Scenario) {
        let noise_amp = 10f64.powf(-scenario.snr_db / 20.0);
        let mut state = scenario.seed | 1;
        for i in 0..scenario.samples {
            // A small xorshift keeps the example dependency-free.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let noise = (state as f64 / u64::MAX as f64 - 0.5) * 2.0 * noise_amp;
            self.x.set((i as f64 * 0.05).sin() * 0.9 + noise);
            self.acc.set(self.acc.get() * 0.9 + self.x.get() * 0.25);
            self.y.set(self.acc.get() + self.x.get());
            design.tick();
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The master design: the flow analyzes and annotates this one.
    let design = Design::with_seed(42);
    let _master = Smoother::new(&design);

    // 2. The operating grid: 4 noise seeds x 2 SNRs x one sample count.
    let scenarios = ScenarioSet::grid(&[1, 2, 3, 4], &[10.0, 30.0], &[], &[2000]);
    println!("sweeping {} scenarios:", scenarios.len());
    for s in &scenarios {
        println!("  {}", s.label());
    }

    // 3. The shard builder: a fresh, independent copy of the design per
    //    scenario. Worker threads never share simulation state — each
    //    shard's monitors are merged back in scenario order.
    let builder = Box::new(|scenario: &Scenario| {
        let design = Design::with_seed(42); // must match the master seed
        let smoother = Smoother::new(&design);
        let scenario = scenario.clone();
        ShardSim {
            design,
            stimulus: Box::new(move |d: &Design, _iter: usize| smoother.drive(d, &scenario)),
        }
    });

    // 4. Refine over the whole grid. `workers` only changes wall time,
    //    never the outcome.
    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut sweep = SweepDriver::new(scenarios, workers, builder);
    let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
    let outcome = flow.run_swept(&mut sweep)?;

    println!();
    println!(
        "refined in {} MSB + {} LSB iterations over {} worker(s)",
        outcome.msb_iterations, outcome.lsb_iterations, workers
    );
    for (id, dtype) in &outcome.types {
        println!("  {:<6} -> {}", design.name_of(*id), dtype);
    }

    // 5. Per-shard statistics from the last simulated iteration.
    println!();
    println!("last iteration, per shard:");
    for shard in sweep.shard_summaries() {
        println!(
            "  {:<28} {:>8} cycles  {:>9.3} ms",
            shard.scenario.label(),
            shard.cycles,
            shard.wall_ns as f64 / 1e6
        );
    }
    Ok(())
}
