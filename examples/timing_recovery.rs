//! The paper's complex example (§6.1): refine the Fig. 5 PAM
//! timing-recovery loop — 61 monitored signals, MSB explosion on the two
//! feedback accumulators, knowledge-based saturation on the control path,
//! and `error()` stabilization of the NCO phase.
//!
//! ```text
//! cargo run --release --example timing_recovery
//! ```

use fixref::dsp::source::ShapedPamSource;
use fixref::dsp::{Awgn, TimingConfig, TimingRecovery};
use fixref::refine::{RefinePolicy, RefinementFlow};
use fixref::sim::Design;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = Design::with_seed(0x0DEC_7BA5);
    let config = TimingConfig {
        input_dtype: Some("<7,5,tc,st,rd>".parse()?),
        input_range: None,
        ..TimingConfig::default()
    };
    let rx = TimingRecovery::new(&design, &config);
    println!(
        "timing-recovery loop: {} monitored signals",
        rx.signal_ids().len()
    );

    let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
    // Knowledge-based saturation: the designer knows the control path is
    // bounded by construction.
    for name in ["terr", "lp", "lferr", "step", "mu"] {
        flow.force_saturate(design.find(name).expect("declared"));
    }

    let rx_for_flow = rx.clone();
    let outcome = flow.run(move |_, _| {
        rx_for_flow.init();
        let mut src = ShapedPamSource::new(31, 0.35, 2, 0.3, 100.0);
        let mut noise = Awgn::from_snr_db(9, 20.0, 1.0);
        for _ in 0..60000 {
            rx_for_flow.step(noise.add(src.next_sample()).clamp(-1.9, 1.9));
        }
    })?;

    let (forced, knowledge) = outcome.saturation_counts();
    println!("MSB iterations:        {}", outcome.msb_iterations);
    println!("LSB iterations:        {}", outcome.lsb_iterations);
    println!("forced saturations:    {forced} (range explosion on the accumulators)");
    println!("other saturations:     {knowledge} (knowledge-based control path)");
    println!(
        "mean MSB overhead:     {:.2} bits vs the statistic estimate",
        outcome.mean_msb_overhead().unwrap_or(0.0)
    );
    println!("interventions:");
    for iv in &outcome.interventions {
        println!("  {iv}");
    }
    println!(
        "verification:          {} overflows, {} saturation events",
        outcome.verify.total_overflows, outcome.verify.saturation_events
    );

    // Show a few decided types of interest.
    for name in ["phase", "li", "out", "mu", "y"] {
        let id = design.find(name).expect("declared");
        match design.dtype_of(id) {
            Some(t) => println!("  {name:<6} -> {t}"),
            None => println!("  {name:<6} -> (floating)"),
        }
    }
    Ok(())
}
