//! `fixref` — a methodology and design environment for DSP ASIC fixed-point
//! refinement.
//!
//! This is the umbrella crate of the workspace, re-exporting the public API
//! of every subsystem:
//!
//! * [`fixed`] — fixed-point type algebra ([`fixed::DType`], quantization,
//!   interval arithmetic, statistics, SQNR meters);
//! * [`sim`] — the design environment: a dual fixed/float simulation engine
//!   with range and error monitoring;
//! * [`refine`] — the paper's contribution: the hybrid MSB/LSB refinement
//!   engine, flow driver and baseline strategies;
//! * [`dsp`] — the evaluation workloads: LMS equalizer, PAM timing-recovery
//!   loop and the DSP blocks they are built from;
//! * [`lint`] — static diagnostics over the signal-flow graph: the
//!   `FXL###` pass registry and the static-schedule checker;
//! * [`verify`] — formal verification of lint findings: bounded model
//!   checking of overflow, wrap and limit-cycle hazards, with proofs
//!   that discharge warnings and counterexamples that replay;
//! * [`serve`] — refinement-as-a-service: a crash-safe multi-tenant job
//!   server with admission control, write-ahead logging and restart
//!   recovery over the refinement flow;
//! * [`codegen`] — the VHDL back-end;
//! * [`obs`] — observability: recorders, the structured event journal and
//!   metrics reports every layer above feeds.
//!
//! See the repository `README.md` for a tour, `DESIGN.md` for the system
//! inventory, and `examples/` for runnable end-to-end flows.
//!
//! # Quickstart
//!
//! ```
//! use fixref::fixed::DType;
//!
//! # fn main() -> Result<(), fixref::fixed::DTypeError> {
//! let t = DType::tc("x", 7, 5)?; // the paper's <7,5,tc> input type
//! assert_eq!(t.msb(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use fixref_codegen as codegen;
pub use fixref_core as refine;
pub use fixref_dsp as dsp;
pub use fixref_fixed as fixed;
pub use fixref_lint as lint;
pub use fixref_obs as obs;
pub use fixref_serve as serve;
pub use fixref_sim as sim;
pub use fixref_verify as verify;

/// The common imports for describing and refining a design:
///
/// ```
/// use fixref::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let design = Design::new();
/// let adc: DType = "<8,6,tc,st,rd>".parse()?;
/// let x = design.sig_typed("x", adc);
/// x.range(-1.0, 1.0);
/// let mut flow = RefinementFlow::new(design.clone(), RefinePolicy::default());
/// # let _ = (x, flow.policy());
/// # Ok(())
/// # }
/// ```
pub mod prelude {
    pub use fixref_core::{RefinePolicy, RefinementFlow};
    pub use fixref_fixed::{DType, Interval, OverflowMode, RoundingMode, Signedness};
    pub use fixref_sim::{Design, Reg, Sig, SignalRef, Value};
}
